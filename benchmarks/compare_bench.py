"""Diff a fresh ``repro bench --json`` trajectory point against the baseline.

Usage::

    python benchmarks/compare_bench.py NEW.json [--baseline FILE]
        [--threshold 0.2]

The baseline defaults to the most recently *committed* trajectory point:
the first revision in ``git rev-list HEAD`` whose short hash matches a
``BENCH_<rev>.json`` in the repository root.  Every seconds-valued metric
the two payloads share is compared; any metric slower by more than the
threshold (default 20%) fails the run with exit code 1.

Scale guard: trajectory points taken over different datasets are not
comparable, so a ``rows`` (or scenario) mismatch exits 0 with a notice
instead of fabricating a verdict.  Same for a brand-new repository with
no committed baseline — the first point cannot regress against anything.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: (path into the payload, human label).  Seconds-valued: higher is worse.
SECONDS_METRICS = [
    (("backends", "python", "full_report_seconds"), "python full_report"),
    (("backends", "numpy", "full_report_seconds"), "numpy full_report"),
    (("parallel", "seconds"), "parallel engine"),
    (("out_of_core", "seconds"), "out-of-core engine"),
    (("report_cache", "cold_seconds"), "report cache cold"),
    (("report_cache", "warm_seconds"), "report cache warm"),
    (("checkpoint", "snapshot_seconds"), "checkpoint snapshot"),
    (("checkpoint", "restore_seconds"), "checkpoint restore"),
    (("update", "incremental_seconds"), "incremental update"),
    (("sketch", "tx_stats", "python"), "sketch tx_stats python"),
    (("sketch", "tx_stats", "numpy"), "sketch tx_stats numpy"),
    (("io", "formats", "v1", "decode_seconds"), "chunk io v1 decode"),
    (("io", "formats", "v2", "decode_seconds"), "chunk io v2 decode"),
    (("io", "formats", "v2", "encode_seconds"), "chunk io v2 encode"),
    (("soak", "seconds"), "faulted soak"),
]


def _dig(payload, path):
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def find_committed_baseline(exclude_rev: str = "") -> str:
    """The trajectory point of the newest commit that shipped one.

    ``exclude_rev`` skips the point recorded at the same revision as the
    fresh payload — comparing a measurement against itself (or against a
    same-revision rerun) would always pass and verify nothing.
    """
    revisions = subprocess.run(
        ["git", "rev-list", "--abbrev-commit", "HEAD"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True,
    ).stdout.split()
    candidates = {
        os.path.basename(path)[len("BENCH_"):-len(".json")]: path
        for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
    }
    for revision in revisions:
        for rev, path in candidates.items():
            if rev == exclude_rev:
                continue
            if revision.startswith(rev) or rev.startswith(revision):
                return path
    return ""


def compare(new_path: str, baseline_path: str, threshold: float) -> int:
    with open(new_path) as handle:
        new = json.load(handle)
    with open(baseline_path) as handle:
        old = json.load(handle)
    if new.get("scenario") != old.get("scenario") or new.get("rows") != old.get("rows"):
        print(
            f"baseline {os.path.basename(baseline_path)} covers "
            f"{old.get('rows')} rows of '{old.get('scenario')}', new point "
            f"covers {new.get('rows')} rows of '{new.get('scenario')}' — "
            "not comparable, skipping the regression check"
        )
        return 0
    failures = []
    for path, label in SECONDS_METRICS:
        new_value, old_value = _dig(new, path), _dig(old, path)
        if (old_value is None or old_value <= 0) and new_value is not None:
            # The stanza shipped after the baseline was recorded (e.g. the
            # ``sketch`` stanza vs a pre-sketch trajectory point): a new
            # measurement cannot regress against nothing, so say so and
            # move on rather than failing the whole comparison.
            print(f"  {label:<22} absent from baseline — skipped")
            continue
        if new_value is None or old_value is None or old_value <= 0:
            continue  # stanza absent from the fresh payload (older schema)
        if path[0] in ("parallel", "out_of_core"):
            # Pool stanzas are only comparable when both points ran the
            # same fan-out: an older point recorded with the in-process
            # fallback (the pre-fix stanzas said ``workers: 1``) measures
            # a different execution mode, not a slower one.
            old_stanza, new_stanza = old.get(path[0], {}), new.get(path[0], {})
            if old_stanza.get("workers") != new_stanza.get("workers") or (
                old_stanza.get("mode") != new_stanza.get("mode")
            ):
                print(f"  {label:<22} execution modes differ — skipped")
                continue
        ratio = new_value / old_value
        verdict = "ok"
        if ratio > 1 + threshold:
            verdict = f"REGRESSION (> {threshold:.0%})"
            failures.append(label)
        print(
            f"  {label:<22} {old_value:>9.4f}s -> {new_value:>9.4f}s "
            f"({ratio:>6.2f}x)  {verdict}"
        )
    if failures:
        print(
            f"\n{len(failures)} metric(s) regressed by more than "
            f"{threshold:.0%} vs {os.path.basename(baseline_path)}: "
            + ", ".join(failures)
        )
        return 1
    print(f"\nno regressions vs {os.path.basename(baseline_path)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new", help="fresh BENCH_<rev>.json to check")
    parser.add_argument(
        "--baseline",
        help="explicit baseline file (default: newest committed BENCH_<rev>.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="allowed slowdown per metric (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)
    with open(args.new) as handle:
        new_rev = json.load(handle).get("revision", "")
    baseline = args.baseline or find_committed_baseline(exclude_rev=new_rev)
    if not baseline:
        print("no committed BENCH_<rev>.json baseline found — nothing to compare")
        return 0
    print(f"comparing {os.path.basename(args.new)} against {os.path.basename(baseline)}")
    return compare(args.new, baseline, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
