"""Shared benchmark fixtures.

The benchmark scenario covers the paper's full 2019-10-01 → 2019-12-31
observation window at a reduced per-day volume (``medium_scenario``).  The
three workloads are generated once per benchmark session; every benchmark
then measures an *analysis* stage over the shared record streams and checks
that the reproduced table/figure has the shape the paper reports.
"""

from __future__ import annotations

import pytest

from repro.analysis.clustering import AccountClusterer
from repro.analysis.value import ExchangeRateOracle
from repro.common.columns import TxFrame
from repro.common.records import iter_transactions
from repro.eos.workload import EosWorkloadGenerator
from repro.scenarios import medium_scenario
from repro.tezos.workload import TezosWorkloadGenerator
from repro.xrp.workload import XrpWorkloadGenerator


@pytest.fixture(scope="session")
def bench_scenario():
    return medium_scenario(seed=7)


@pytest.fixture(scope="session")
def eos_generator(bench_scenario):
    generator = EosWorkloadGenerator(bench_scenario.eos)
    generator.blocks = generator.generate()
    return generator


@pytest.fixture(scope="session")
def eos_blocks(eos_generator):
    return eos_generator.blocks


@pytest.fixture(scope="session")
def eos_records(eos_blocks):
    return list(iter_transactions(eos_blocks))


@pytest.fixture(scope="session")
def tezos_generator(bench_scenario):
    generator = TezosWorkloadGenerator(bench_scenario.tezos)
    generator.blocks = generator.generate()
    return generator


@pytest.fixture(scope="session")
def tezos_blocks(tezos_generator):
    return tezos_generator.blocks


@pytest.fixture(scope="session")
def tezos_records(tezos_blocks):
    return list(iter_transactions(tezos_blocks))


@pytest.fixture(scope="session")
def xrp_generator(bench_scenario):
    generator = XrpWorkloadGenerator(bench_scenario.xrp)
    generator.blocks = generator.generate()
    return generator


@pytest.fixture(scope="session")
def xrp_blocks(xrp_generator):
    return xrp_generator.blocks


@pytest.fixture(scope="session")
def xrp_records(xrp_blocks):
    return list(iter_transactions(xrp_blocks))


@pytest.fixture(scope="session")
def eos_frame(eos_records):
    """The EOS stream as a columnar frame — the canonical analysis substrate."""
    return TxFrame.from_records(eos_records)


@pytest.fixture(scope="session")
def tezos_frame(tezos_records):
    return TxFrame.from_records(tezos_records)


@pytest.fixture(scope="session")
def xrp_frame(xrp_records):
    return TxFrame.from_records(xrp_records)


@pytest.fixture(scope="session")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="session")
def xrp_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)
