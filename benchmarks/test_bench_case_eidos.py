"""§4.1 case study — EIDOS boomerang transactions and network congestion.

Regenerates the airdrop statistics over the full benchmark window: the
launch multiplies traffic by more than an order of magnitude, boomerang
claims dominate post-launch actions (paper: 95 % of all transactions), the
network enters congestion mode and the CPU price spikes by orders of
magnitude (paper: +10,000 %), squeezing out low-stake users.  Benchmarks the
boomerang detector and the congestion summary.
"""

from repro.analysis.airdrop import analyze_airdrop, analyze_congestion, detect_boomerang_claims


def test_case_eidos_boomerang_detection(benchmark, eos_frame, bench_scenario):
    claims = benchmark(detect_boomerang_claims, eos_frame)
    report = analyze_airdrop(eos_frame, launch_date=bench_scenario.eos.eidos_launch_date)
    print("\n§4.1 — EIDOS airdrop:")
    print(f"  boomerang claims detected:        {len(claims)}")
    print(f"  unique claimer accounts:          {report.unique_claimers}")
    print(f"  share of post-launch actions:     {report.boomerang_action_share_post_launch:.1%}")
    print(f"  post/pre traffic multiplier:      {report.traffic_multiplier:.1f}x")
    assert len(claims) > 1_000
    # Paper: 95% of transactions were triggered by the airdrop after launch.
    assert report.boomerang_action_share_post_launch > 0.8
    # Paper: total transactions increased by more than 10x.
    assert report.traffic_multiplier > 10.0
    # Every claim returns exactly the EOS that was sent (the boomerang).
    assert all(claim.eos_amount > 0 for claim in claims[:100])


def test_case_eidos_congestion(benchmark, eos_generator, bench_scenario):
    history = eos_generator.chain.resources.history()
    launch = bench_scenario.eos.eidos_launch_timestamp
    report = benchmark(analyze_congestion, history, launch)
    print("\n§4.1 — congestion mode:")
    print(f"  blocks sampled:                     {report.samples}")
    print(f"  post-launch blocks congested:       {report.congested_share:.1%}")
    print(f"  CPU price increase vs pre-launch:   {report.cpu_price_increase:,.0f}x")
    print(f"  transactions rejected (no CPU):     {eos_generator.chain.rejected_transactions}")
    # The network spends a substantial share of post-launch blocks congested
    # and the CPU price rises by orders of magnitude (paper: 10,000%).
    assert report.congested_share > 0.3
    assert report.cpu_price_increase > 100.0
    # No congestion before the launch.
    pre = [sample for sample in history if sample.timestamp < launch]
    assert not any(sample.congested for sample in pre)
    # Low-stake users get squeezed: some transactions are rejected for CPU.
    assert eos_generator.chain.rejected_transactions > 0
