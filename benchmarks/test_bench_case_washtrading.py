"""§4.1 case study — exchange wash trading on WhaleEx.

Regenerates the wash-trading statistics: the top five trading accounts are
involved in the bulk of ``verifytrade2`` settlements (paper: >70 %), each of
them is both buyer and seller in most of its trades (paper: >85 %), and the
net balance change of the traded currencies is negligible relative to the
gross volume (paper: <0.7 % for almost every currency).  Benchmarks the
detector over the full benchmark-scale EOS stream.
"""

from repro.analysis.washtrading import analyze_wash_trading, extract_trades, relative_balance_change


def test_case_washtrading_report(benchmark, eos_frame, bench_scenario):
    report = benchmark(analyze_wash_trading, eos_frame)
    print("\n§4.1 — WhaleEx wash trading:")
    print(f"  settled trades:                     {report.trade_count}")
    print(f"  trades involving the top 5 accounts: {report.top_accounts_trade_share:.1%}")
    print(f"  overall self-trade share:            {report.self_trade_share_overall:.1%}")
    for account, share in report.self_trade_share_by_account.items():
        print(f"    {account:14s} self-trades: {share:.1%}")
    assert report.trade_count > 100
    # Paper: top-5 accounts associated with over 70% of the trades.
    assert report.top_accounts_trade_share > 0.6
    # Paper: each top account self-trades in more than 85% of its trades.
    assert min(report.self_trade_share_by_account.values()) > 0.6
    assert report.is_wash_trading_suspected()


def test_case_washtrading_balance_changes(benchmark, eos_frame):
    report = analyze_wash_trading(eos_frame)
    trades = benchmark(extract_trades, eos_frame)
    print("\n§4.1 — net balance change of the top wash-trading accounts:")
    small_net_accounts = 0
    for account in report.top_accounts:
        gross = sum(
            trade.amount for trade in trades if account in (trade.buyer, trade.seller)
        )
        net = sum(abs(value) for value in report.net_balance_change_by_account[account].values())
        rel = relative_balance_change(net, gross)
        print(f"  {account:14s} |net| {net:10.2f} of gross {gross:12.2f}  ({rel:.2%})")
        if rel < 0.5:
            small_net_accounts += 1
    # The paper finds near-zero balance changes (<0.7% of gross) over millions
    # of trades; at the simulation's few hundred trades the random-walk net is
    # proportionally larger, so the check is that the net stays well below the
    # gross volume (directional flow would put it near 100%) for every account.
    assert small_net_accounts == len(report.top_accounts)
