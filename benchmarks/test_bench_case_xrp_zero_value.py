"""§4.3 case study — zero-value transactions on the XRP ledger.

Regenerates the spam-wave statistics: a single parent account activates a
swarm of accounts that shuffle a worthless BTC IOU among themselves, the
Payment series spikes during the waves while carrying no value, and only a
tiny fraction of payments move tokens with a positive XRP exchange rate.
Benchmarks the per-payment value attribution over the full stream.
"""

from repro.analysis.throughput import DEFAULT_BIN_SECONDS, bin_throughput
from repro.analysis.value import XrpValueAnalyzer
from repro.common.clock import timestamp_from_iso
from repro.xrp.workload import SPAM_PARENT


def test_case_spam_wave_payments_carry_no_value(benchmark, xrp_records, xrp_generator, xrp_oracle):
    analyzer = XrpValueAnalyzer(xrp_oracle)
    spam_accounts = set(xrp_generator.spam_accounts)
    spam_payments = [
        record
        for record in xrp_records
        if record.type == "Payment" and record.success and record.sender in spam_accounts
    ]

    def count_valued(payments):
        return sum(1 for record in payments if analyzer.payment_has_value(record))

    valued = benchmark(count_valued, spam_payments)
    print("\n§4.3 — XRP payment spam:")
    print(f"  spam swarm size:                   {len(spam_accounts)} accounts")
    print(f"  spam payments recorded:            {len(spam_payments)}")
    print(f"  spam payments carrying value:      {valued}")
    assert len(spam_payments) > 500
    assert valued == 0
    # Every swarm account was activated by the same parent (§4.3).
    registry = xrp_generator.ledger.accounts
    assert all(registry.get(address).parent == SPAM_PARENT for address in spam_accounts)


def test_case_spam_waves_visible_in_payment_series(xrp_records, bench_scenario):
    series = bin_throughput(
        [record for record in xrp_records if record.type == "Payment"],
        lambda record: "Payment",
        DEFAULT_BIN_SECONDS,
    )
    payments = series.series_for("Payment")
    wave_bins = []
    calm_bins = []
    for index, count in enumerate(payments):
        start = series.bin_start(index)
        in_wave = any(
            timestamp_from_iso(wave_start) <= start < timestamp_from_iso(wave_end)
            for wave_start, wave_end, _ in bench_scenario.xrp.spam_waves
        )
        (wave_bins if in_wave else calm_bins).append(count)
    wave_avg = sum(wave_bins) / len(wave_bins)
    calm_avg = sum(calm_bins) / len(calm_bins)
    print(f"\n§4.3 — Payment rate inside vs outside spam waves: {wave_avg:.1f} vs {calm_avg:.1f} per bin")
    # Payments per bin at least double during the waves (Figure 3c's spikes).
    assert wave_avg > 1.8 * calm_avg


def test_case_one_in_n_payments_with_value(benchmark, xrp_records, xrp_oracle):
    analyzer = XrpValueAnalyzer(xrp_oracle)
    decomposition = benchmark(analyzer.decompose, xrp_records)
    one_in_n = (
        1.0 / decomposition.value_bearing_payment_fraction
        if decomposition.value_bearing_payment_fraction
        else float("inf")
    )
    print(f"\n§4.3 — 1 in {one_in_n:.0f} successful payments involves valued tokens (paper: 1 in 19)")
    assert 8.0 <= one_in_n <= 60.0
