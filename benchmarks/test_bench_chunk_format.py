"""Chunk-format gates: v2 decode speedup + cross-format result identity.

The v2 binary columnar format exists to make the hottest path in the
system — decoding committed chunks on every scan — cheap.  Three layers:

* **decode gate** — at ``medium_scenario`` scale, decoding every committed
  chunk of a v2 store must beat the same rows stored as v1 gzip-JSON by
  ≥ 4× under the numpy backend and ≥ 2× under pure python.  (The decoded
  payload is fully scan-ready; per-row metadata parses lazily on first
  access, which is exactly what the figure kernels see.)
* **result identity** — ``full_report`` over rehydrated frames, the pooled
  out-of-core report, and an incremental pipeline update are
  figure-for-figure identical whichever format the store was written in.
* **assembly determinism** — window-sharded generation assembles
  byte-identical v2 stores for any worker count (chunk files move into the
  canonical store unchanged, so this holds by construction; the test pins
  it).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.parallel import parallel_report_from_store
from repro.analysis.report import full_report
from repro.collection.generate import generate_sharded
from repro.collection.store import CHUNK_FORMATS, FrameStore
from repro.common import kernels
from repro.common.columns import TxFrame
from repro.pipeline.core import Pipeline

from tests.collection.test_generate import _directory_bytes, _windowed_scenario

ROUNDS = 3

#: Decode gates: v2 binary decode vs v1 gzip-JSON decode, same rows.
REQUIRED_NUMPY_SPEEDUP = 4.0
REQUIRED_PYTHON_SPEEDUP = 2.0

#: Matches the out-of-core benchmark's partitioning headroom.
CHUNK_ROWS = 25_000


@pytest.fixture(scope="module")
def combined_frame(eos_frame, tezos_frame, xrp_frame):
    return TxFrame.concat([eos_frame, tezos_frame, xrp_frame])


@pytest.fixture(scope="module")
def format_stores(tmp_path_factory, combined_frame):
    """The same medium-scale rows written once per chunk format."""
    stores = {}
    for chunk_format in CHUNK_FORMATS:
        directory = tmp_path_factory.mktemp(f"chunk-format-{chunk_format}")
        store = FrameStore(
            chunk_rows=CHUNK_ROWS,
            directory=str(directory),
            chunk_format=chunk_format,
        )
        store.add_frame(combined_frame)
        stores[chunk_format] = str(directory)
    return stores


def _time(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _decode_seconds(directory: str) -> float:
    store = FrameStore.open(directory)

    def decode_all():
        for index in range(store.chunk_count):
            store.chunk_payload(index)

    return _time(decode_all)


def _speedup(format_stores) -> float:
    v1_seconds = _decode_seconds(format_stores["v1"])
    v2_seconds = _decode_seconds(format_stores["v2"])
    return v1_seconds / v2_seconds if v2_seconds else float("inf")


def test_v2_decode_speedup_numpy(format_stores, combined_frame):
    if not kernels.numpy_available():  # pragma: no cover - numpy is baked in
        pytest.skip("numpy backend unavailable")
    with kernels.use_backend(kernels.NUMPY):
        speedup = _speedup(format_stores)
    print(
        f"\nChunk decode over {len(combined_frame):,} rows (numpy): "
        f"v2 is {speedup:.2f}x v1"
    )
    assert speedup >= REQUIRED_NUMPY_SPEEDUP, (
        f"v2 decode must be >= {REQUIRED_NUMPY_SPEEDUP}x v1 under numpy, "
        f"got {speedup:.2f}x"
    )


def test_v2_decode_speedup_python(format_stores, combined_frame):
    with kernels.use_backend(kernels.PYTHON):
        speedup = _speedup(format_stores)
    print(
        f"\nChunk decode over {len(combined_frame):,} rows (python): "
        f"v2 is {speedup:.2f}x v1"
    )
    assert speedup >= REQUIRED_PYTHON_SPEEDUP, (
        f"v2 decode must be >= {REQUIRED_PYTHON_SPEEDUP}x v1 under python, "
        f"got {speedup:.2f}x"
    )


def _assert_reports_identical(expected, actual):
    assert set(actual.chains) == set(expected.chains)
    for chain, chain_expected in expected.chains.items():
        chain_actual = actual.chains[chain]
        assert chain_actual.type_rows == chain_expected.type_rows
        assert chain_actual.stats == chain_expected.stats
        assert chain_actual.throughput == chain_expected.throughput
        assert chain_actual.top_senders == chain_expected.top_senders
        assert chain_actual.top_receivers == chain_expected.top_receivers
        assert chain_actual.categories == chain_expected.categories
        assert chain_actual.wash_trading == chain_expected.wash_trading
        assert chain_actual.decomposition == chain_expected.decomposition
        if chain_expected.value_flows is not None:
            assert chain_actual.value_flows.total_xrp_value == pytest.approx(
                chain_expected.value_flows.total_xrp_value, rel=1e-9
            )
    assert actual.summary().to_rows() == expected.summary().to_rows()


def test_full_report_identical_across_formats(
    format_stores, xrp_oracle, xrp_clusterer
):
    reports = {
        chunk_format: full_report(
            FrameStore.open(directory).to_frame(),
            oracle=xrp_oracle,
            clusterer=xrp_clusterer,
        )
        for chunk_format, directory in format_stores.items()
    }
    _assert_reports_identical(reports["v1"], reports["v2"])


def test_out_of_core_report_identical_across_formats(
    format_stores, xrp_oracle, xrp_clusterer
):
    reports = {
        chunk_format: parallel_report_from_store(
            directory, oracle=xrp_oracle, clusterer=xrp_clusterer, workers=2
        )
        for chunk_format, directory in format_stores.items()
    }
    _assert_reports_identical(reports["v1"], reports["v2"])


def test_incremental_pipeline_update_identical_across_formats(
    tmp_path_factory, eos_records, xrp_oracle, monkeypatch
):
    """Ingest → update → ingest → update matches figure-for-figure.

    Each pipeline is pinned to one chunk format via ``REPRO_CHUNK_FORMAT``
    (the knob a deployment would use); the second update is genuinely
    incremental — it scans only the rows past the checkpoint watermark —
    so this also covers the resident-frame catch-up path over both
    formats.
    """
    from repro.analysis.clustering import StaticAccountClusterer

    records = eos_records[:60_000]
    split = len(records) // 2
    reports = {}
    for chunk_format in CHUNK_FORMATS:
        monkeypatch.setenv("REPRO_CHUNK_FORMAT", chunk_format)
        root = tmp_path_factory.mktemp(f"pipeline-{chunk_format}")
        pipeline = Pipeline(str(root), chunk_rows=10_000)
        pipeline.set_analysis_config(xrp_oracle, StaticAccountClusterer({}))
        pipeline.ingest_records(iter(records[:split]))
        pipeline.update()
        pipeline.ingest_records(iter(records[split:]))
        report, stats = pipeline.update()
        assert stats.incremental
        reports[chunk_format] = report
    monkeypatch.delenv("REPRO_CHUNK_FORMAT")
    _assert_reports_identical(reports["v1"], reports["v2"])


def test_assemble_byte_identical_for_any_worker_count(tmp_path_factory):
    """Window-sharded generation of a v2 store is worker-count invariant."""
    scenario = _windowed_scenario(windows=2)
    solo_dir = str(tmp_path_factory.mktemp("assemble-solo") / "store")
    pool_dir = str(tmp_path_factory.mktemp("assemble-pool") / "store")
    generate_sharded(scenario, solo_dir, workers=1)
    generate_sharded(scenario, pool_dir, workers=3)
    assert _directory_bytes(solo_dir) == _directory_bytes(pool_dir)
    store = FrameStore.open(solo_dir)
    assert store.chunk_count > 0
    # The assembled chunks really are v2 binary chunks.
    from repro.collection.chunkformat import is_v2_chunk

    for index in range(store.chunk_count):
        with open(store._chunks[index].path, "rb") as handle:
            assert is_v2_chunk(handle.read(4))
