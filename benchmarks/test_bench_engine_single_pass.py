"""The engine's headline claim: every figure in one pass per chain.

The seed computed each figure with its own full iteration over the record
list.  This benchmark measures, at ``medium_scenario`` scale, the seed's
**sum of individual analysis passes** (the frozen implementations in
:mod:`repro.analysis.legacy`) against the streaming engine's combined
report (:func:`repro.analysis.report.full_report`, one iteration per chain
over the columnar frame) producing the same figure set — Figure 1 types,
Figure 2 counts/window/TPS, Figure 3 throughput series, top accounts and
the per-chain case studies.  The acceptance bar is a ≥ 2× speed-up.
"""

from __future__ import annotations

import time

from repro.analysis import legacy
from repro.analysis.classify import classify_eos_category
from repro.analysis.report import full_report
from repro.common.records import ChainId

#: Number of timed rounds; the minimum is reported (steady-state cost).
ROUNDS = 3


def _seed_stats_scans(records):
    """The seed report's dedicated scans: window bounds + distinct tx ids."""
    timestamps = [record.timestamp for record in records]
    duration = (max(timestamps) - min(timestamps)) if timestamps else 0.0
    transactions = len({record.transaction_id for record in records})
    return duration, transactions


def _legacy_eos_passes(records):
    return (
        legacy.type_distribution(records),
        legacy.category_distribution(records),
        legacy.bin_throughput(records, classify_eos_category),
        legacy.top_senders(records, 10),
        legacy.top_receivers(records, 10),
        legacy.analyze_wash_trading(records),
        _seed_stats_scans(records),
    )


def _legacy_tezos_passes(records):
    return (
        legacy.type_distribution(records),
        legacy.tezos_category_distribution(records),
        legacy.bin_throughput(records, lambda record: record.type),
        legacy.top_senders(records, 10),
        _seed_stats_scans(records),
    )


def _xrp_categorizer(record):
    if not record.success:
        return "Unsuccessful"
    if record.type in ("Payment", "OfferCreate"):
        return record.type
    return "Others"


def _legacy_xrp_passes(records, oracle, clusterer):
    return (
        legacy.type_distribution(records),
        legacy.bin_throughput(records, _xrp_categorizer),
        legacy.top_senders(records, 10),
        legacy.decompose(records, oracle),
        legacy.aggregate_value_flows(records, clusterer, oracle),
        _seed_stats_scans(records),
    )


def _time(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_engine_single_pass_beats_seed_passes_2x(
    eos_records,
    tezos_records,
    xrp_records,
    eos_frame,
    tezos_frame,
    xrp_frame,
    xrp_oracle,
    xrp_clusterer,
):
    def legacy_combined():
        _legacy_eos_passes(eos_records)
        _legacy_tezos_passes(tezos_records)
        _legacy_xrp_passes(xrp_records, xrp_oracle, xrp_clusterer)

    def engine_combined():
        return (
            full_report(eos_frame),
            full_report(tezos_frame),
            full_report(xrp_frame, oracle=xrp_oracle, clusterer=xrp_clusterer),
        )

    legacy_seconds = _time(legacy_combined)
    engine_seconds = _time(engine_combined)
    rows = len(eos_frame) + len(tezos_frame) + len(xrp_frame)
    speedup = legacy_seconds / engine_seconds
    print(
        f"\nCombined report over {rows:,} rows: "
        f"seed sum-of-passes {legacy_seconds:.3f}s, "
        f"single-pass engine {engine_seconds:.3f}s, speed-up {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"single-pass engine must be >= 2x faster than the seed's sum of "
        f"individual passes, got {speedup:.2f}x"
    )


def test_engine_report_matches_legacy_figures(
    eos_records, eos_frame, xrp_records, xrp_frame, xrp_oracle
):
    """The one-pass report reproduces the seed's per-figure results."""
    eos = full_report(eos_frame).chains[ChainId.EOS]
    assert eos.type_rows == legacy.type_distribution(eos_records)
    assert eos.categories == legacy.category_distribution(eos_records)
    assert eos.top_senders == legacy.top_senders(eos_records, 10)
    assert eos.top_receivers == legacy.top_receivers(eos_records, 10)
    assert eos.wash_trading == legacy.analyze_wash_trading(eos_records)
    assert eos.throughput == legacy.bin_throughput(eos_records, classify_eos_category)
    duration, transactions = _seed_stats_scans(eos_records)
    assert eos.stats.duration_seconds == duration
    assert eos.stats.transaction_count == transactions

    xrp = full_report(xrp_frame, oracle=xrp_oracle).chains[ChainId.XRP]
    assert xrp.decomposition == legacy.decompose(xrp_records, xrp_oracle)
    assert xrp.throughput == legacy.bin_throughput(xrp_records, _xrp_categorizer)


def test_engine_combined_report_benchmark(
    benchmark, eos_frame, tezos_frame, xrp_frame, xrp_oracle, xrp_clusterer
):
    """Tracked wall time of the full single-pass report across all chains."""

    def combined():
        return (
            full_report(eos_frame),
            full_report(tezos_frame),
            full_report(xrp_frame, oracle=xrp_oracle, clusterer=xrp_clusterer),
        )

    reports = benchmark(combined)
    assert set(reports[0].chains) == {ChainId.EOS}
    summary = reports[2].summary().chains[ChainId.XRP]
    assert summary.value_share is not None and 0.0 < summary.value_share < 0.2
