"""Figure 11 — XRP BTC IOU exchange rates by issuer and the self-dealt trade.

Regenerates (a) the rate table contrasting gateway-issued BTC IOUs
(tens of thousands of XRP per token) with unexchanged IOUs (valueless), and
(b) the history of the Liquid-activated issuer's BTC IOU, whose "price" was
set by trades between accounts under common control.  Benchmarks the rate
table and the self-dealing detector.
"""

from repro.analysis.value import detect_self_dealing, iou_rate_table, rate_history
from repro.xrp.workload import (
    BITSTAMP_ISSUER,
    GATEHUB_ISSUER,
    LIQUID_LINKED_ISSUER,
    MYRONE_ACCOUNT,
    SPAM_PARENT,
)


def _issuer_table(xrp_generator):
    return [
        ("BTC", BITSTAMP_ISSUER, "Bitstamp"),
        ("BTC", GATEHUB_ISSUER, "Gatehub Fifth"),
        ("BTC", LIQUID_LINKED_ISSUER, "rKRN... (Liquid-activated)"),
        ("BTC", SPAM_PARENT, "spam parent (not registered)"),
    ]


def test_fig11a_btc_iou_rate_table(benchmark, xrp_generator):
    rows = benchmark(iou_rate_table, xrp_generator.ledger.orderbook, _issuer_table(xrp_generator))
    print("\nFigure 11a — BTC IOU average rates by issuer:")
    for row in rows:
        label = "0 (valueless)" if row.is_valueless else f"{row.average_rate:,.0f} XRP"
        print(f"  {row.issuer_name:32s} {label}")
    rates = {row.issuer_name: row.average_rate for row in rows}
    # Gateway IOUs trade around the real BTC price (paper: 36,050 / 35,817 XRP);
    # the spam swarm's IOU never trades and is worth nothing.  The contrast
    # between gateway-issued and unregistered issuers is the Figure 11a point.
    assert 20_000.0 < rates["Bitstamp"] < 60_000.0
    assert 20_000.0 < rates["Gatehub Fifth"] < 60_000.0
    assert rates["spam parent (not registered)"] == 0.0
    assert min(rates["Bitstamp"], rates["Gatehub Fifth"]) > 1_000 * max(
        rates["spam parent (not registered)"], 1.0
    )


def test_fig11b_self_dealt_rate_history(benchmark, xrp_generator):
    history = benchmark(rate_history, xrp_generator.ledger.orderbook, "BTC", LIQUID_LINKED_ISSUER)
    print(f"\nFigure 11b — rKRN... BTC IOU executed rates: {[round(rate, 1) for _, rate in history]}")
    # The December self-dealt exchange pegs the IOU at ~30,500 XRP.
    assert history
    assert any(abs(rate - 30_500.0) < 1_000.0 for _, rate in history)


def test_fig11b_self_dealing_detected(benchmark, xrp_records, xrp_generator):
    findings = benchmark(detect_self_dealing, xrp_records, xrp_generator.ledger.orderbook)
    myrone = [
        finding
        for finding in findings
        if finding["issuer"] == LIQUID_LINKED_ISSUER and finding["buyer"] == MYRONE_ACCOUNT
    ]
    print(f"\n§4.3 — self-dealing findings involving the Myrone accounts: {len(myrone)}")
    assert myrone, "the offer taker received the IOU directly from its issuer"
