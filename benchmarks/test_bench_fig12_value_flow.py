"""Figure 12 — value flow on the XRP ledger between account clusters.

Regenerates the Figure 12 aggregation: successful Payment transactions are
grouped by sender cluster, currency and receiver cluster, valued through the
DEX exchange-rate oracle, and summed in XRP terms.  Shape targets: XRP is by
far the most-moved currency, Ripple (escrow releases/returns) and the
exchange clusters dominate both ends, and the top clusters cover about half
of the volume.  Benchmarks the aggregation pass and the clustering ablation.
"""

from repro.analysis.flows import aggregate_value_flows


def test_fig12_value_flow(benchmark, xrp_frame, xrp_clusterer, xrp_oracle):
    report = benchmark(aggregate_value_flows, xrp_frame, xrp_clusterer, xrp_oracle)
    print("\nFigure 12 — XRP value flow (XRP-denominated):")
    print(f"  total: {report.total_xrp_value:,.0f} XRP")
    print("  top senders:   " + ", ".join(f"{name} ({value:,.0f})" for name, value in report.top_senders(5)))
    print("  top receivers: " + ", ".join(f"{name} ({value:,.0f})" for name, value in report.top_receivers(5)))
    print("  currencies:    " + ", ".join(f"{name} ({value:,.0f})" for name, value in report.top_currencies(5)))
    currencies = dict(report.top_currencies(10))
    # XRP dominates the value moved; fiat IOUs are an order of magnitude behind.
    assert max(currencies, key=currencies.get) == "XRP"
    assert currencies["XRP"] > 0.5 * report.total_xrp_value
    # Ripple and the named exchange clusters appear among the top senders.
    top_sender_names = [name for name, _ in report.top_senders(10)]
    assert "Ripple" in top_sender_names
    assert any("descendant" in name or name in (
        "Binance", "Bithumb", "Coinbase", "Bitstamp", "UPbit", "Bittrex", "Huobi Global",
    ) for name in top_sender_names)
    # The top-10 sender clusters account for roughly half of the volume (51%).
    assert report.top_sender_concentration(10) > 0.4


def test_fig12_clustering_ablation(benchmark, xrp_records, xrp_clusterer, xrp_oracle):
    """Ablation: address-level flows are strictly more fragmented than clustered ones."""

    class IdentityClusterer:
        def cluster_of(self, address):
            return address

    clustered = aggregate_value_flows(xrp_records, xrp_clusterer, xrp_oracle)
    unclustered = benchmark(aggregate_value_flows, xrp_records, IdentityClusterer(), xrp_oracle)
    print(
        f"\nFigure 12 ablation — sender entities: clustered {len(clustered.by_sender)}, "
        f"address-level {len(unclustered.by_sender)}"
    )
    assert len(unclustered.by_sender) >= len(clustered.by_sender)
    assert abs(unclustered.total_xrp_value - clustered.total_xrp_value) < 1e-6


def test_fig12_value_attribution_ablation(xrp_records, xrp_clusterer, xrp_oracle):
    """Ablation: the face-value rule wildly overstates flows vs the paper's rule."""
    paper_rule = aggregate_value_flows(xrp_records, xrp_clusterer, xrp_oracle)
    face_value = aggregate_value_flows(
        xrp_records, xrp_clusterer, xrp_oracle, include_valueless=True
    )
    paper_payments = sum(flow.payment_count for flow in paper_rule.flows)
    face_payments = sum(flow.payment_count for flow in face_value.flows)
    print(
        f"\nFigure 12 ablation — payments counted: paper rule {paper_payments}, "
        f"face-value rule {face_payments}"
    )
    assert face_payments > 2 * paper_payments
