"""Figure 1 — distribution of transaction types per blockchain.

Regenerates the three columns of the paper's Figure 1 (EOS action types,
Tezos operation kinds, XRP transaction types) from the benchmark-scale
workloads and benchmarks the classification pass.  Shape targets: EOS
``transfer`` > 90 % with user-defined "Others" in single digits, Tezos
endorsements ~82 % with transactions ~16 %, XRP OfferCreate and Payment
around 50 % and 46 %.
"""

from repro.analysis.classify import distribution_as_mapping, type_distribution
from repro.common.records import ChainId


def _print_column(rows, chain):
    print(f"\nFigure 1 [{chain.value}] — type distribution:")
    for row in rows:
        if row.chain is chain:
            print(f"  {row.group:18s} {row.type_name:22s} {row.count:>9d}  {row.share:6.1%}")


def test_fig1_eos_action_distribution(benchmark, eos_frame):
    rows = benchmark(type_distribution, eos_frame)
    shares = distribution_as_mapping(rows, ChainId.EOS)
    _print_column(rows, ChainId.EOS)
    # Paper: transfer 91.6%, user-defined Others 8.3%, system actions ~0%.
    assert shares["transfer"] > 0.90
    assert shares.get("Others", 0.0) < 0.10
    assert shares["transfer"] == max(shares.values())


def test_fig1_tezos_operation_distribution(benchmark, tezos_frame):
    rows = benchmark(type_distribution, tezos_frame)
    shares = distribution_as_mapping(rows, ChainId.TEZOS)
    _print_column(rows, ChainId.TEZOS)
    # Paper: Endorsement 81.7%, Transaction 16.2%, everything else ~1%.
    assert 0.75 <= shares["Endorsement"] <= 0.88
    assert 0.10 <= shares["Transaction"] <= 0.22
    assert shares.get("Ballot", 0.0) + shares.get("Proposals", 0.0) < 0.01


def test_fig1_xrp_type_distribution(benchmark, xrp_frame):
    rows = benchmark(type_distribution, xrp_frame)
    shares = distribution_as_mapping(rows, ChainId.XRP)
    _print_column(rows, ChainId.XRP)
    # Paper: OfferCreate 50.4%, Payment 46.2%, TrustSet 1.9%, OfferCancel 1.5%.
    assert 0.40 <= shares["OfferCreate"] <= 0.60
    assert 0.35 <= shares["Payment"] <= 0.55
    assert shares["OfferCreate"] + shares["Payment"] > 0.90
    assert shares.get("TrustSet", 0.0) < 0.05
