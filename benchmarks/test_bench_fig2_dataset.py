"""Figure 2 — characterising the datasets for each blockchain.

Crawls each simulated chain into the gzip block store and regenerates the
Figure 2 columns (sample period, block range, block count, transaction
count, compressed storage), benchmarking the store + characterisation pass.
Absolute sizes differ from the paper's 121 / 0.56 / 76.4 GB because the
workloads run at a reduced per-day volume; the per-chain ordering
(EOS >> XRP >> Tezos in transactions and bytes) must hold.
"""

import pytest

from repro.collection.dataset import characterize_dataset
from repro.collection.store import BlockStore


def _characterize(blocks):
    store = BlockStore(chunk_size=256)
    store.add_many(blocks)
    store.flush()
    return characterize_dataset(store)


@pytest.fixture(scope="module")
def figure2_rows(eos_blocks, tezos_blocks, xrp_blocks):
    rows = {
        "eos": _characterize(eos_blocks),
        "tezos": _characterize(tezos_blocks),
        "xrp": _characterize(xrp_blocks),
    }
    print("\nFigure 2 — dataset characterisation (simulation scale):")
    for name, row in rows.items():
        data = row.to_row()
        print(
            f"  {name:5s} {data['sample_start']} -> {data['sample_end']}  "
            f"blocks {data['first_block']}..{data['last_block']} ({data['block_count']}),  "
            f"{data['transaction_count']:>8d} transactions,  {data['storage_gb']:.6f} GB gzip"
        )
    return rows


def test_fig2_eos_characterisation(benchmark, eos_blocks, figure2_rows):
    row = benchmark(_characterize, eos_blocks)
    assert row.sample_start.startswith("2019-10")
    assert row.sample_end.startswith("2019-12")
    assert row.block_count == len(eos_blocks)
    assert row.first_block == 82_024_737
    assert row.compressed_gigabytes > 0.0


def test_fig2_ordering_matches_paper(figure2_rows):
    eos, tezos, xrp = figure2_rows["eos"], figure2_rows["tezos"], figure2_rows["xrp"]
    # EOS carries the most transactions and bytes, Tezos by far the fewest.
    assert eos.transaction_count > xrp.transaction_count > tezos.transaction_count
    assert eos.compressed_gigabytes > tezos.compressed_gigabytes
    assert xrp.compressed_gigabytes > tezos.compressed_gigabytes


def test_fig2_storage_accounting(benchmark, tezos_blocks):
    def build_store():
        store = BlockStore(chunk_size=256)
        store.add_many(tezos_blocks)
        store.flush()
        return store.compression_stats()

    stats = benchmark(build_store)
    assert stats.compressed_bytes < stats.raw_bytes
    assert stats.chunk_count >= 1
