"""Figure 3 — throughput across time (6-hour bins) for the three chains.

Regenerates the three time-series panels: (a) EOS by application category
with the EIDOS explosion on 2019-11-01, (b) Tezos dominated by a flat
endorsement floor, (c) XRP Payment/OfferCreate with the two payment-spam
waves.  Benchmarks the binning pass over the full benchmark-scale streams.
"""

from repro.analysis.classify import classify_eos_category
from repro.analysis.throughput import DEFAULT_BIN_SECONDS, bin_throughput, spike_ratio
from repro.common.clock import date_from_timestamp, timestamp_from_iso


def test_fig3a_eos_throughput_series(benchmark, eos_records, bench_scenario):
    series = benchmark(
        bin_throughput, eos_records, classify_eos_category, DEFAULT_BIN_SECONDS
    )
    launch = bench_scenario.eos.eidos_launch_timestamp
    ratio = spike_ratio(series, launch)
    peak_index, peak_count = series.peak_bin()
    print(
        f"\nFigure 3a — EOS: {series.bin_count} bins, categories {series.categories};"
        f" post/pre-launch ratio {ratio:.1f}x; peak bin {peak_count} actions on"
        f" {date_from_timestamp(series.bin_start(peak_index))}"
    )
    # Paper: the launch increased traffic by more than an order of magnitude
    # and the peak lies after the launch.
    assert ratio > 8.0
    assert series.bin_start(peak_index) >= launch
    totals = series.totals()
    assert totals["Tokens"] == max(totals.values())
    # Before the launch, betting is the largest category (Figure 3a).
    pre_launch = bin_throughput(
        [record for record in eos_records if record.timestamp < launch],
        classify_eos_category,
        DEFAULT_BIN_SECONDS,
    )
    pre_totals = pre_launch.totals()
    assert pre_totals["Betting"] == max(pre_totals.values())


def test_fig3b_tezos_throughput_series(benchmark, tezos_records):
    series = benchmark(
        bin_throughput,
        tezos_records,
        lambda record: "Endorsement" if record.type == "Endorsement" else (
            "Transaction" if record.type == "Transaction" else "Others"
        ),
        DEFAULT_BIN_SECONDS,
    )
    totals = series.totals()
    print(f"\nFigure 3b — Tezos totals per category: {totals}")
    assert totals["Endorsement"] > totals["Transaction"] > totals["Others"]
    # The endorsement floor is stable: interior bins never deviate wildly.
    endorsements = series.series_for("Endorsement")[1:-1]
    positive = [count for count in endorsements if count > 0]
    assert positive and max(positive) <= 2 * min(positive)


def test_fig3c_xrp_throughput_series(benchmark, xrp_records, bench_scenario):
    series = benchmark(
        bin_throughput,
        xrp_records,
        lambda record: (
            "Unsuccessful" if not record.success else (
                record.type if record.type in ("Payment", "OfferCreate") else "Others"
            )
        ),
        DEFAULT_BIN_SECONDS,
    )
    totals = series.totals()
    print(f"\nFigure 3c — XRP totals per category: {totals}")
    assert totals["OfferCreate"] > 0 and totals["Payment"] > 0
    assert totals["Unsuccessful"] > 0
    # The Payment series peaks inside a spam wave; OfferCreate stays flatter.
    payments = series.series_for("Payment")
    peak_index = max(range(len(payments)), key=payments.__getitem__)
    peak_time = series.bin_start(peak_index)
    in_wave = any(
        timestamp_from_iso(start) <= peak_time < timestamp_from_iso(end)
        for start, end, _ in bench_scenario.xrp.spam_waves
    )
    assert in_wave
    offers = series.series_for("OfferCreate")
    interior_offers = [count for count in offers[1:-1] if count > 0]
    assert max(interior_offers) < 6 * (sum(interior_offers) / len(interior_offers))
