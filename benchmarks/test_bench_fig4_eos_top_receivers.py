"""Figure 4 — EOS top applications by received transactions.

Regenerates the Figure 4 table: the applications receiving the most actions
together with their per-action breakdown (``transfer`` ~100 % for
``eosio.token``, bookkeeping-dominated mixes for the betting and DEX
contracts), and benchmarks the ranking pass.
"""

from repro.analysis.accounts import top_receivers
from repro.analysis.classify import action_breakdown_by_contract


def test_fig4_top_receivers(benchmark, eos_frame):
    receivers = benchmark(top_receivers, eos_frame, 10)
    print("\nFigure 4 — EOS top applications by received actions:")
    for activity in receivers:
        top_name, _, top_share = activity.top_type()
        print(
            f"  {activity.account:14s} {activity.total:>9d} actions "
            f"({activity.share_of_chain:5.1%})  top action: {top_name} {top_share:.1%}"
        )
    names = [activity.account for activity in receivers]
    # The paper's top applications all appear, with eosio.token first.
    assert names[0] == "eosio.token"
    for application in ("eidosonecoin", "betdicetasks", "whaleextrust", "pornhashbaby", "eossanguoone"):
        assert application in names


def test_fig4_token_contract_breakdown(benchmark, eos_frame):
    breakdown = benchmark(action_breakdown_by_contract, eos_frame, "eosio.token")
    name, _, share = breakdown[0]
    assert name == "transfer"
    assert share > 0.999  # paper: 99.999%


def test_fig4_betting_contract_breakdown(eos_frame):
    breakdown = {name: share for name, _, share in action_breakdown_by_contract(eos_frame, "betdicetasks")}
    print(f"\nFigure 4 — betdicetasks action mix: { {k: round(v, 3) for k, v in breakdown.items()} }")
    # Paper: removetask 68%, log ~12%; bets are a small minority.
    assert breakdown["removetask"] == max(breakdown.values())
    assert breakdown["removetask"] > 0.5
    assert breakdown.get("betrecord", 0.0) < 0.15


def test_fig4_dex_contract_breakdown(eos_frame):
    breakdown = {name: share for name, _, share in action_breakdown_by_contract(eos_frame, "whaleextrust")}
    # Paper: verifytrade2 is the most used WhaleEx action (29.8%).
    assert breakdown["verifytrade2"] == max(breakdown.values())
