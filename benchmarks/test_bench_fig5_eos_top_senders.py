"""Figure 5 — EOS account pairs with the highest number of sent transactions.

Regenerates the Figure 5 view over the organic (pre-EIDOS) traffic, where
the application operator accounts dominate: ``betdicegroup`` sends the bulk
of its actions to ``betdicetasks``, ``mykeypostman`` relays transfers to
``eosio.token``.  Benchmarks the sender/receiver-pair aggregation.
"""

from repro.analysis.accounts import top_sender_receiver_pairs


def _organic_records(eos_records, bench_scenario):
    launch = bench_scenario.eos.eidos_launch_timestamp
    return [record for record in eos_records if record.timestamp < launch]


def test_fig5_top_sender_pairs(benchmark, eos_records, bench_scenario):
    organic = _organic_records(eos_records, bench_scenario)
    profiles = benchmark(top_sender_receiver_pairs, organic, 8, 5)
    print("\nFigure 5 — EOS top senders (pre-launch organic traffic):")
    for profile in profiles:
        top_receiver, count, share = profile.top_receivers[0]
        print(
            f"  {profile.sender:14s} sent {profile.sent_count:>7d} to {profile.unique_receivers:>4d} receivers; "
            f"top: {top_receiver} ({share:.1%})"
        )
    senders = {profile.sender: profile for profile in profiles}
    assert "betdicegroup" in senders
    betdice = senders["betdicegroup"]
    # Paper: 68.9% of betdicegroup's transactions go to betdicetasks.
    assert betdice.top_receivers[0][0] == "betdicetasks"
    assert betdice.top_receivers[0][2] > 0.5
    # mykeypostman relays the vast majority of its actions to eosio.token.
    if "mykeypostman" in senders:
        assert senders["mykeypostman"].top_receivers[0][0] == "eosio.token"


def test_fig5_operator_accounts_concentrate_on_few_receivers(eos_records, bench_scenario):
    organic = _organic_records(eos_records, bench_scenario)
    profiles = top_sender_receiver_pairs(organic, limit_senders=8)
    operators = [profile for profile in profiles if profile.sender in ("betdicegroup", "mykeypostman")]
    assert operators
    for profile in operators:
        # Unlike the Tezos airdrop distributors, these senders talk to a
        # handful of counterparties (Figure 5: 34 and 7 unique receivers).
        assert profile.unique_receivers <= 40
