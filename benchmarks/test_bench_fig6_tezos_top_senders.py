"""Figure 6 — Tezos accounts with the highest number of sent transactions.

Regenerates the Figure 6 fan-out statistics over Tezos Transaction
operations: baker-payout-style senders pay the same delegators repeatedly
(mean transactions per receiver well above 1), while airdrop-style
distributors send exactly one transaction to each of thousands of distinct
addresses (mean ~1, stdev ~0).  Benchmarks the aggregation pass.
"""

from repro.analysis.accounts import top_sender_receiver_pairs


def _transactions_only(tezos_records):
    return [record for record in tezos_records if record.type == "Transaction"]


def test_fig6_top_senders_fanout(benchmark, tezos_records, tezos_generator):
    transactions = _transactions_only(tezos_records)
    profiles = benchmark(top_sender_receiver_pairs, transactions, 6, 3)
    print("\nFigure 6 — Tezos top senders (Transaction operations only):")
    for profile in profiles:
        print(
            f"  {profile.sender[:24]:26s} sent {profile.sent_count:>6d}  "
            f"unique receivers {profile.unique_receivers:>6d}  "
            f"mean/receiver {profile.mean_per_receiver:6.2f}  stdev {profile.stdev_per_receiver:6.2f}"
        )
    by_sender = {profile.sender: profile for profile in profiles}
    distributors = [address for address in tezos_generator.distributors if address in by_sender]
    payouts = [address for address in tezos_generator.payout_accounts if address in by_sender]
    assert distributors, "an airdrop-style distributor must rank among the top senders"
    assert payouts, "a payout-style sender must rank among the top senders"
    for address in distributors:
        profile = by_sender[address]
        # The tz1Mzpyj... pattern: one transaction per unique receiver.
        assert profile.mean_per_receiver < 1.5
    for address in payouts:
        profile = by_sender[address]
        # The baker-payout pattern: tens of transactions per receiver.
        assert profile.mean_per_receiver > 2.0
        assert profile.stdev_per_receiver > 0.0


def test_fig6_top_senders_are_a_small_set(tezos_records):
    transactions = _transactions_only(tezos_records)
    profiles = top_sender_receiver_pairs(transactions, limit_senders=5)
    top_share = sum(profile.sent_count for profile in profiles) / len(transactions)
    # A handful of automated senders account for a large share of manager
    # transactions (the paper's Figure 6 observation).
    assert top_share > 0.3
