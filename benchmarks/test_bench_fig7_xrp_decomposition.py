"""Figure 7 — XRP ledger throughput decomposition.

Regenerates the Figure 7 sunburst numbers: the failed-transaction share
(~10.7 %), the split of successful traffic into payments and offers, the
share of payments moving valued tokens (1 in 19), the share of offers that
lead to an exchange (0.2 %), and the headline economic-value share (~2.3 %).
Benchmarks the decomposition pass.
"""

from repro.analysis.value import XrpValueAnalyzer


def test_fig7_decomposition(benchmark, xrp_frame, xrp_oracle):
    analyzer = XrpValueAnalyzer(xrp_oracle)
    decomposition = benchmark(analyzer.decompose, xrp_frame)
    print("\nFigure 7 — XRP throughput decomposition:")
    print(f"  total transactions:        {decomposition.total}")
    print(f"  failed:                    {decomposition.failed} ({decomposition.failed_share:.1%})")
    print(f"  successful payments:       {decomposition.payments}")
    print(f"    with value:              {decomposition.payments_with_value}")
    print(f"    without value:           {decomposition.payments_without_value}")
    print(f"  successful offers:         {decomposition.offers}")
    print(f"    leading to an exchange:  {decomposition.offers_exchanged} ({decomposition.offer_fill_fraction:.2%})")
    print(f"  economic-value share:      {decomposition.economic_value_share:.2%}")
    # Paper targets (shape): ~10% failures, ~2% value, 1-in-19 valued payments,
    # ~0.2% of offers exchanged.
    assert 0.06 <= decomposition.failed_share <= 0.18
    assert 0.005 <= decomposition.economic_value_share <= 0.06
    assert decomposition.payments_without_value > 10 * decomposition.payments_with_value
    assert decomposition.offer_fill_fraction < 0.02
    assert decomposition.offers > 0 and decomposition.payments > 0


def test_fig7_failure_codes(benchmark, xrp_frame, xrp_oracle):
    analyzer = XrpValueAnalyzer(xrp_oracle)
    table = benchmark(analyzer.failure_code_distribution, xrp_frame)
    print(f"\nFigure 7 — most frequent failure codes: "
          f"{ {tx: max(codes, key=codes.get) for tx, codes in table.items()} }")
    # Paper: PATH_DRY dominates Payment failures, tecUNFUNDED_OFFER dominates
    # OfferCreate failures.
    assert max(table["Payment"], key=table["Payment"].get) == "tecPATH_DRY"
    assert max(table["OfferCreate"], key=table["OfferCreate"].get) == "tecUNFUNDED_OFFER"
