"""Figure 8 — most active accounts on the XRP ledger.

Regenerates the Figure 8 table: the most active accounts are offer bots
(>98 % OfferCreate), they descend from a Huobi-named parent (or transact
with its descendants), they share the destination tag 104398 on their rare
payments, and together they carry a large share of total traffic.
Benchmarks the top-sender ranking and the common-control evidence pass.
"""

from repro.analysis.accounts import top_senders, traffic_concentration
from repro.analysis.clustering import common_control_evidence, shared_destination_tags
from repro.xrp.workload import HUOBI_DESTINATION_TAG


def test_fig8_top_accounts(benchmark, xrp_frame, xrp_generator, xrp_clusterer):
    senders = benchmark(top_senders, xrp_frame, 10)
    bots = set(xrp_generator.offer_bots)
    print("\nFigure 8 — most active XRP accounts:")
    for activity in senders:
        top_name, _, top_share = activity.top_type()
        cluster = xrp_clusterer.cluster_of(activity.account)
        print(
            f"  {activity.account[:24]:26s} {activity.total:>7d} tx "
            f"({activity.share_of_chain:5.1%})  {top_name} {top_share:5.1%}  cluster: {cluster}"
        )
    top_bot_entries = [activity for activity in senders if activity.account in bots]
    # The Huobi-linked bots dominate the ranking, almost exclusively OfferCreate.
    assert len(top_bot_entries) >= 3
    for activity in top_bot_entries:
        name, _, share = activity.top_type()
        assert name == "OfferCreate"
        assert share > 0.95


def test_fig8_common_control_evidence(benchmark, xrp_records, xrp_generator, xrp_clusterer):
    evidence = benchmark(
        common_control_evidence,
        xrp_records,
        xrp_clusterer,
        xrp_generator.offer_bots,
        "Huobi Global",
    )
    assert all(entry["descends_from_parent"] for entry in evidence.values())
    assert all("CNY" in entry["currencies"] for entry in evidence.values())
    tagged = [entry for entry in evidence.values() if HUOBI_DESTINATION_TAG in entry["destination_tags"]]
    assert tagged, "at least one bot payment must carry the shared destination tag"
    shared = shared_destination_tags(xrp_records)
    assert HUOBI_DESTINATION_TAG in shared


def test_fig8_traffic_concentration(benchmark, xrp_frame):
    concentration = benchmark(traffic_concentration, xrp_frame, 18)
    print(f"\nFigure 8 — share of traffic from the 18 most active accounts: {concentration:.1%}")
    # Paper (§3.3): the 18 most active accounts produce half of the traffic.
    assert concentration > 0.35
