"""Figure 9 — the Tezos Babylon 2.0 on-chain amendment voting process.

Regenerates the three vote-evolution panels (proposal, exploration,
promotion) and the §4.2 statistics: Babylon 2.0 overtakes Babylon during
the proposal period, the exploration vote is unanimous except for a single
explicit pass, and the promotion vote picks up ~15 % nays.  Benchmarks the
vote-series construction and the governance report.
"""

from repro.analysis.governance import analyze_governance, figure9_series
from repro.tezos.governance import VotingPeriodKind


def test_fig9_vote_series(benchmark, tezos_generator):
    events = tezos_generator.generate_babylon_votes()
    panels = benchmark(figure9_series, events)
    finals = {
        panel: {key: (series[-1][1] if series else 0) for key, series in content.items()}
        for panel, content in panels.items()
    }
    print(f"\nFigure 9 — final cumulative votes per panel: {finals}")
    # Panel (a): Babylon 2.0 ends ahead of Babylon.
    assert finals["proposal"]["Babylon 2.0"] > finals["proposal"]["Babylon"]
    # Panel (b): no nay votes during exploration, exactly one pass.
    assert finals["exploration"]["nay"] == 0
    assert finals["exploration"]["yay"] > 0
    # Panel (c): promotion gains nay votes but yay still dominates.
    assert 0 < finals["promotion"]["nay"] < finals["promotion"]["yay"]
    # Series are cumulative (monotonically non-decreasing).
    for content in panels.values():
        for series in content.values():
            counts = [count for _, count in series]
            assert counts == sorted(counts)


def test_fig9_governance_report(benchmark, tezos_generator, tezos_records):
    events = tezos_generator.generate_babylon_votes()
    report = benchmark(analyze_governance, events, tezos_records)
    print(
        f"\n§4.2 — winning proposal: {report.winning_proposal}; "
        f"proposal participation {report.proposal_participation:.0%}; "
        f"exploration approval {report.exploration.approval_rate:.1%}; "
        f"promotion nay share {report.promotion.nay_share:.1%}; "
        f"governance operations in window: {report.governance_operation_count}"
    )
    assert report.winning_proposal == "Babylon 2.0"
    assert report.exploration_unanimous
    assert report.exploration.approval_rate > 0.99
    assert 0.05 < report.promotion.nay_share < 0.30
    # Exploration participation exceeds proposal participation (81% vs 49%),
    # because an explicit pass counts as participating.
    assert report.exploration.participation > report.proposal_participation
    # Governance operations are a negligible share of the chain's throughput
    # (245 operations in the paper's three-month window).
    assert report.governance_operation_count < 0.005 * len(tezos_records)
    assert report.could_merge_periods


def test_fig9_period_ordering(tezos_generator):
    events = tezos_generator.generate_babylon_votes()
    bounds = {}
    for period in (VotingPeriodKind.PROPOSAL, VotingPeriodKind.EXPLORATION, VotingPeriodKind.PROMOTION):
        timestamps = [event.timestamp for event in events if event.period is period]
        bounds[period] = (min(timestamps), max(timestamps))
    assert bounds[VotingPeriodKind.PROPOSAL][1] <= bounds[VotingPeriodKind.EXPLORATION][0]
    assert bounds[VotingPeriodKind.EXPLORATION][1] <= bounds[VotingPeriodKind.PROMOTION][0]
