"""Headline throughput numbers — 20 TPS (EOS), 0.08 TPS (Tezos), 19 TPS (XRP).

The introduction quotes the average transactions-per-second each chain
actually carried during the observation window.  The workloads run at a
known fraction of the real per-day volume (the scenario's scale factor), so
the measured TPS scaled back up must land near the paper's numbers, and the
ordering EOS ≈ XRP >> Tezos must hold even before scaling.
"""

import pytest

from repro.analysis.throughput import scaled_tps, transactions_per_second
from repro.scenarios.paper import REAL_TRANSACTIONS_PER_DAY


def _window_seconds(records):
    timestamps = [record.timestamp for record in records]
    return max(timestamps) - min(timestamps)


def _transaction_count(records):
    return len({record.transaction_id for record in records})


def test_headline_tps_eos(benchmark, eos_records, bench_scenario):
    count = _transaction_count(eos_records)
    duration = _window_seconds(eos_records)
    scale = bench_scenario.scale_factors["eos"]
    tps = benchmark(transactions_per_second, count, duration)
    extrapolated = scaled_tps(count, duration, scale)
    print(f"\nEOS: measured {tps:.4f} TPS at scale {scale:.2e} -> {extrapolated:.1f} TPS full scale (paper: ~20, congestion-limited)")
    assert tps > 0
    # The paper reports ~20 TPS; congestion-mode rejections in the simulated
    # resource market pull the included-transaction rate somewhat below the
    # submitted rate, so accept a band around the target.
    assert 5.0 <= extrapolated <= 45.0


def test_headline_tps_tezos(benchmark, tezos_records, bench_scenario):
    count = len(tezos_records)
    duration = _window_seconds(tezos_records)
    scale = bench_scenario.scale_factors["tezos"]
    tps = benchmark(transactions_per_second, count, duration)
    extrapolated = scaled_tps(count, duration, scale)
    print(f"\nTezos: measured {tps:.5f} TPS at scale {scale:.2e} -> {extrapolated:.3f} TPS full scale (paper: 0.08... 0.45 incl. endorsements)")
    # Figure 2 implies ~0.42 total operations per second (3.3M over 93 days);
    # the 0.08 TPS headline excludes consensus operations.  Accept the band.
    assert 0.05 <= extrapolated <= 1.0


def test_headline_tps_xrp(benchmark, xrp_records, bench_scenario):
    count = len(xrp_records)
    duration = _window_seconds(xrp_records)
    scale = bench_scenario.scale_factors["xrp"]
    tps = benchmark(transactions_per_second, count, duration)
    extrapolated = scaled_tps(count, duration, scale)
    print(f"\nXRP: measured {tps:.4f} TPS at scale {scale:.2e} -> {extrapolated:.1f} TPS full scale (paper: ~19)")
    assert 8.0 <= extrapolated <= 40.0


def test_headline_ordering(eos_records, tezos_records, xrp_records):
    eos_tps = _transaction_count(eos_records) / _window_seconds(eos_records)
    tezos_tps = len(tezos_records) / _window_seconds(tezos_records)
    xrp_tps = len(xrp_records) / _window_seconds(xrp_records)
    # Within the common simulation scale, EOS and XRP are within an order of
    # magnitude of each other and both far above Tezos — the paper's ordering.
    assert eos_tps > tezos_tps
    assert xrp_tps > tezos_tps
