"""Incremental update vs full re-scan at stress scale.

The incremental pipeline's acceptance bar: after a small batch of fresh
rows lands on a large archive, ``update`` (merge the checkpointed
accumulator states, scan only the delta, re-finalize) must beat a full
serial re-scan of the archive by ≥ 5× at ``medium_scenario`` scale — while
remaining figure-for-figure identical to the from-scratch report.

The timed incremental path includes its real overheads: restoring the
pickled states, merging them, scanning the delta, snapshotting the new
checkpoint and finalising every figure.

The ≥ 5× gate is timed on the pure-python reference kernels — the backend
it was calibrated against, which keeps it a measurement of the *pipeline*
property (update cost ∝ delta, not history).  Under the vectorized numpy
backend the full re-scan itself collapsed ~5×, so the checkpoint pickle
round-trip now bounds update latency; a separate gate asserts the
incremental path still wins there, and the checkpoint serialisation cost
is flagged as the next optimisation target in ``ROADMAP.md``.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import full_report
from repro.common import kernels
from repro.common.columns import TxFrame
from repro.pipeline import incremental_report

#: Number of timed rounds; the minimum is reported (steady-state cost).
ROUNDS = 3

#: Acceptance bar for an update covering a small appended batch, on the
#: reference kernels the bar was calibrated against.
REQUIRED_SPEEDUP = 5.0

#: Acceptance bar under the vectorized backend, where the (backend-agnostic)
#: checkpoint pickle round-trip dominates the much cheaper delta scan.
REQUIRED_SPEEDUP_NUMPY = 1.2

#: Fraction of each chain's rows arriving as the "fresh" batch.
DELTA_FRACTION = 0.02


@pytest.fixture(scope="module")
def staged_workload(eos_records, tezos_records, xrp_records):
    """(frame with all rows, checkpoint covering all but the delta, delta size)."""
    prefix = []
    delta = []
    for records in (eos_records, tezos_records, xrp_records):
        split = int(len(records) * (1.0 - DELTA_FRACTION))
        prefix.extend(records[:split])
        delta.extend(records[split:])
    frame = TxFrame.from_records(prefix)
    _, checkpoint, _ = incremental_report(frame, None)
    frame.extend(delta)
    return frame, checkpoint, len(delta)


def _time(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_incremental_update_identical_to_full_rescan(staged_workload):
    frame, checkpoint, _ = staged_workload
    report, _, stats = incremental_report(frame, checkpoint)
    assert stats.rows_scanned < stats.rows_total
    assert not stats.chains_rescanned
    expected = full_report(frame)
    assert set(report.chains) == set(expected.chains)
    for chain, exp in expected.chains.items():
        act = report.chains[chain]
        assert act.type_rows == exp.type_rows
        assert act.stats == exp.stats
        assert act.throughput == exp.throughput
        assert act.top_senders == exp.top_senders
        assert act.categories == exp.categories
        assert act.top_receivers == exp.top_receivers
        assert act.wash_trading == exp.wash_trading
    assert report.summary().to_rows() == expected.summary().to_rows()


def _measure(frame, checkpoint):
    incremental_seconds = _time(lambda: incremental_report(frame, checkpoint))
    rescan_seconds = _time(lambda: full_report(frame))
    return rescan_seconds, incremental_seconds


def test_incremental_update_speedup_over_full_rescan(staged_workload):
    frame, checkpoint, delta_rows = staged_workload
    with kernels.use_backend(kernels.PYTHON):
        rescan_seconds, incremental_seconds = _measure(frame, checkpoint)
    speedup = rescan_seconds / incremental_seconds
    print(
        f"\nUpdate over {len(frame):,} rows (+{delta_rows:,} fresh): "
        f"full re-scan {rescan_seconds:.3f}s, incremental "
        f"{incremental_seconds:.3f}s, speed-up {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental update must be >= {REQUIRED_SPEEDUP}x faster than a "
        f"full re-scan, got {speedup:.2f}x"
    )


@pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)
def test_incremental_update_still_wins_under_numpy_kernels(staged_workload):
    frame, checkpoint, delta_rows = staged_workload
    with kernels.use_backend(kernels.NUMPY):
        rescan_seconds, incremental_seconds = _measure(frame, checkpoint)
    speedup = rescan_seconds / incremental_seconds
    print(
        f"\nUpdate over {len(frame):,} rows (+{delta_rows:,} fresh, numpy "
        f"kernels): full re-scan {rescan_seconds:.3f}s, incremental "
        f"{incremental_seconds:.3f}s, speed-up {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP_NUMPY, (
        f"incremental update must stay >= {REQUIRED_SPEEDUP_NUMPY}x faster "
        f"than a vectorized full re-scan, got {speedup:.2f}x"
    )
