"""Incremental update vs full re-scan at stress scale.

The incremental pipeline's acceptance bar: after a small batch of fresh
rows lands on a large archive, ``update`` (merge the checkpointed
accumulator states, scan only the delta, re-finalize) must beat a full
serial re-scan of the archive by ≥ 5× at ``medium_scenario`` scale — while
remaining figure-for-figure identical to the from-scratch report.

The timed incremental path includes its real overheads: restoring the
pickled states, merging them, scanning the delta, snapshotting the new
checkpoint and finalising every figure.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import full_report
from repro.common.columns import TxFrame
from repro.pipeline import incremental_report

#: Number of timed rounds; the minimum is reported (steady-state cost).
ROUNDS = 3

#: Acceptance bar for an update covering a small appended batch.
REQUIRED_SPEEDUP = 5.0

#: Fraction of each chain's rows arriving as the "fresh" batch.
DELTA_FRACTION = 0.02


@pytest.fixture(scope="module")
def staged_workload(eos_records, tezos_records, xrp_records):
    """(frame with all rows, checkpoint covering all but the delta, delta size)."""
    prefix = []
    delta = []
    for records in (eos_records, tezos_records, xrp_records):
        split = int(len(records) * (1.0 - DELTA_FRACTION))
        prefix.extend(records[:split])
        delta.extend(records[split:])
    frame = TxFrame.from_records(prefix)
    _, checkpoint, _ = incremental_report(frame, None)
    frame.extend(delta)
    return frame, checkpoint, len(delta)


def _time(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_incremental_update_identical_to_full_rescan(staged_workload):
    frame, checkpoint, _ = staged_workload
    report, _, stats = incremental_report(frame, checkpoint)
    assert stats.rows_scanned < stats.rows_total
    assert not stats.chains_rescanned
    expected = full_report(frame)
    assert set(report.chains) == set(expected.chains)
    for chain, exp in expected.chains.items():
        act = report.chains[chain]
        assert act.type_rows == exp.type_rows
        assert act.stats == exp.stats
        assert act.throughput == exp.throughput
        assert act.top_senders == exp.top_senders
        assert act.categories == exp.categories
        assert act.top_receivers == exp.top_receivers
        assert act.wash_trading == exp.wash_trading
    assert report.summary().to_rows() == expected.summary().to_rows()


def test_incremental_update_speedup_over_full_rescan(staged_workload):
    frame, checkpoint, delta_rows = staged_workload

    def incremental():
        return incremental_report(frame, checkpoint)

    def rescan():
        return full_report(frame)

    incremental_seconds = _time(incremental)
    rescan_seconds = _time(rescan)
    speedup = rescan_seconds / incremental_seconds
    print(
        f"\nUpdate over {len(frame):,} rows (+{delta_rows:,} fresh): "
        f"full re-scan {rescan_seconds:.3f}s, incremental "
        f"{incremental_seconds:.3f}s, speed-up {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental update must be >= {REQUIRED_SPEEDUP}x faster than a "
        f"full re-scan, got {speedup:.2f}x"
    )
