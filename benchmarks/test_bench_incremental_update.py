"""Incremental update vs full re-scan at stress scale, plus the checkpoint
codec gates.

The incremental pipeline's acceptance bars:

* after a small batch of fresh rows lands on a large archive, ``update``
  (restore the checkpointed accumulator states, scan only the delta,
  re-finalize) must beat a full serial re-scan of the archive by ≥ 5× at
  ``medium_scenario`` scale — while remaining figure-for-figure identical
  to the from-scratch report;
* the versioned snapshot codec's checkpoint round-trip (export + encode +
  atomic save, then load + decode + restore) must beat the version-1
  pickle format by ≥ 3× on the same state — the optimisation ROADMAP
  flagged after the NumPy kernels collapsed the scan cost;
* migrating a version-1 pickle checkpoint must leave ``update`` figures
  result-identical — bit-for-bit for the serial Figure 12 float sums —
  under both kernel backends.

The timed incremental path includes its real overheads: restoring the
snapshot payloads, scanning the delta, snapshotting the new checkpoint and
finalising every figure.

The ≥ 5× gate is timed on the pure-python reference kernels — the backend
it was calibrated against, which keeps it a measurement of the *pipeline*
property (update cost ∝ delta, not history).  Under the vectorized numpy
backend the full re-scan itself collapsed ~5×; with the checkpoint
round-trip now collapsed as well, a separate gate asserts the incremental
path still wins there too.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.analysis.report import figure_accumulators, full_report
from repro.cli import bench_checkpoint_roundtrip
from repro.common import kernels
from repro.common.columns import TxFrame
from repro.pipeline import incremental_report
from repro.pipeline.checkpoint import CheckpointStore, PipelineCheckpoint

#: Number of timed rounds; the minimum is reported (steady-state cost).
ROUNDS = 3

#: Acceptance bar for an update covering a small appended batch, on the
#: reference kernels the bar was calibrated against.
REQUIRED_SPEEDUP = 5.0

#: Acceptance bar under the vectorized backend (the checkpoint round-trip
#: used to dominate here; the snapshot codec removed that ceiling).
REQUIRED_SPEEDUP_NUMPY = 1.2

#: Acceptance bar for the snapshot codec round-trip vs the version-1
#: pickle checkpoint format, on identical scanned state.
REQUIRED_CHECKPOINT_SPEEDUP = 3.0

#: Fraction of each chain's rows arriving as the "fresh" batch.
DELTA_FRACTION = 0.02


@pytest.fixture(scope="module")
def staged_workload(eos_records, tezos_records, xrp_records, xrp_oracle, xrp_clusterer):
    """(frame with all rows, checkpoint covering all but the delta, delta
    size, oracle, clusterer) — the full figure slate, Figure 12 included."""
    prefix = []
    delta = []
    for records in (eos_records, tezos_records, xrp_records):
        split = int(len(records) * (1.0 - DELTA_FRACTION))
        prefix.extend(records[:split])
        delta.extend(records[split:])
    frame = TxFrame.from_records(prefix)
    _, checkpoint, _ = incremental_report(
        frame, None, oracle=xrp_oracle, clusterer=xrp_clusterer
    )
    frame.extend(delta)
    return frame, checkpoint, len(delta), xrp_oracle, xrp_clusterer


def _time(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _assert_figures_identical(actual, expected, exact_flows: bool = True) -> None:
    assert set(actual.chains) == set(expected.chains)
    for chain, exp in expected.chains.items():
        act = actual.chains[chain]
        assert act.type_rows == exp.type_rows
        assert act.stats == exp.stats
        assert act.throughput == exp.throughput
        assert act.top_senders == exp.top_senders
        assert act.categories == exp.categories
        assert act.top_receivers == exp.top_receivers
        assert act.wash_trading == exp.wash_trading
        assert act.decomposition == exp.decomposition
        if exact_flows:
            # Bit-for-bit Figure 12: the serial restore path replays the
            # serial float accumulation order exactly.
            assert act.value_flows == exp.value_flows
    assert actual.summary().to_rows() == expected.summary().to_rows()


def test_incremental_update_identical_to_full_rescan(staged_workload):
    frame, checkpoint, _, oracle, clusterer = staged_workload
    report, _, stats = incremental_report(
        frame, checkpoint, oracle=oracle, clusterer=clusterer
    )
    assert stats.rows_scanned < stats.rows_total
    assert not stats.chains_rescanned
    expected = full_report(frame, oracle=oracle, clusterer=clusterer)
    _assert_figures_identical(report, expected)


def _measure(frame, checkpoint, oracle, clusterer):
    incremental_seconds = _time(
        lambda: incremental_report(
            frame, checkpoint, oracle=oracle, clusterer=clusterer
        )
    )
    rescan_seconds = _time(
        lambda: full_report(frame, oracle=oracle, clusterer=clusterer)
    )
    return rescan_seconds, incremental_seconds


def test_incremental_update_speedup_over_full_rescan(staged_workload):
    frame, checkpoint, delta_rows, oracle, clusterer = staged_workload
    with kernels.use_backend(kernels.PYTHON):
        rescan_seconds, incremental_seconds = _measure(
            frame, checkpoint, oracle, clusterer
        )
    speedup = rescan_seconds / incremental_seconds
    print(
        f"\nUpdate over {len(frame):,} rows (+{delta_rows:,} fresh): "
        f"full re-scan {rescan_seconds:.3f}s, incremental "
        f"{incremental_seconds:.3f}s, speed-up {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental update must be >= {REQUIRED_SPEEDUP}x faster than a "
        f"full re-scan, got {speedup:.2f}x"
    )


@pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)
def test_incremental_update_still_wins_under_numpy_kernels(staged_workload):
    frame, checkpoint, delta_rows, oracle, clusterer = staged_workload
    with kernels.use_backend(kernels.NUMPY):
        rescan_seconds, incremental_seconds = _measure(
            frame, checkpoint, oracle, clusterer
        )
    speedup = rescan_seconds / incremental_seconds
    print(
        f"\nUpdate over {len(frame):,} rows (+{delta_rows:,} fresh, numpy "
        f"kernels): full re-scan {rescan_seconds:.3f}s, incremental "
        f"{incremental_seconds:.3f}s, speed-up {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP_NUMPY, (
        f"incremental update must stay >= {REQUIRED_SPEEDUP_NUMPY}x faster "
        f"than a vectorized full re-scan, got {speedup:.2f}x"
    )


# -- checkpoint codec gates -------------------------------------------------------------
def _bound_figure_accumulators(frame, oracle, clusterer):
    """Freshly bound full figure slates per chain value."""
    by_chain = {}
    for chain in frame.chains():
        if not len(frame.chain_view(chain)):
            continue
        accumulators = figure_accumulators(
            chain, frame.chain_bounds(chain), oracle, clusterer
        )
        for accumulator in accumulators:
            accumulator.bind_batch(frame)
        by_chain[chain.value] = accumulators
    return by_chain


def test_checkpoint_roundtrip_speedup_over_pickle(staged_workload, tmp_path):
    """Snapshot + restore must beat the v1 pickle format ≥ 3× on the same
    state — the per-update overhead ROADMAP flagged as the latency floor.

    Uses the exact measurement ``repro bench --json`` records (live-scanned
    state, so the snapshot side pays the full export cost), keeping the CI
    gate and the trajectory points on one definition.
    """
    frame, _, _, oracle, clusterer = staged_workload
    timings = bench_checkpoint_roundtrip(
        frame, oracle, clusterer, ROUNDS, str(tmp_path)
    )
    speedup = timings["speedup_vs_pickle"]
    print(
        f"\nCheckpoint round-trip over {len(frame):,} rows: snapshot "
        f"{timings['snapshot_seconds'] * 1000:.1f}ms + restore "
        f"{timings['restore_seconds'] * 1000:.1f}ms "
        f"({timings['snapshot_bytes']:,} bytes) vs pickle "
        f"{timings['pickle_snapshot_seconds'] * 1000:.1f}ms + "
        f"{timings['pickle_restore_seconds'] * 1000:.1f}ms "
        f"({timings['pickle_bytes']:,} bytes) → {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_CHECKPOINT_SPEEDUP, (
        f"checkpoint snapshot+restore must be >= {REQUIRED_CHECKPOINT_SPEEDUP}x "
        f"faster than the pickle format, got {speedup:.2f}x"
    )


@pytest.mark.parametrize(
    "backend",
    [kernels.PYTHON]
    + ([kernels.NUMPY] if kernels.numpy_available() else []),
)
def test_update_identical_across_legacy_migration(
    staged_workload, tmp_path, backend
):
    """v1 pickle checkpoint → migrate → update == from-scratch figures,
    bit-for-bit (serial Figure 12) under both kernel backends."""
    frame, checkpoint, _, oracle, clusterer = staged_workload
    # Materialise the prefix state and write it exactly as version 1 did.
    scanned = _bound_figure_accumulators(frame, oracle, clusterer)
    legacy = PipelineCheckpoint(watermark_rows=checkpoint.watermark_rows)
    for chain_value, accumulators in scanned.items():
        for accumulator, payload in zip(
            accumulators, checkpoint.restore_payloads(chain_value)
        ):
            accumulator.restore_state(payload)
        legacy.chain_states[chain_value] = pickle.dumps(list(accumulators))
        legacy.signatures[chain_value] = list(checkpoint.signatures[chain_value])
    legacy.version = 1
    store = CheckpointStore(str(tmp_path / backend))
    with open(store.legacy_path, "wb") as handle:
        pickle.dump(legacy, handle)

    migrated = store.load()
    assert migrated is not None
    assert migrated.version == PipelineCheckpoint.capture(0, {}).version
    with kernels.use_backend(backend):
        report, _, stats = incremental_report(
            frame, migrated, oracle=oracle, clusterer=clusterer
        )
        assert not stats.chains_rescanned
        assert stats.rows_scanned < stats.rows_total
        expected = full_report(frame, oracle=oracle, clusterer=clusterer)
    _assert_figures_identical(report, expected, exact_flows=True)
