"""Out-of-core chunk engine: identity at medium scale, speedup gates.

Three layers, matching what a given machine can honestly measure:

* **result identity** (always) — ``parallel_report_from_store`` over a
  chunked on-disk store reproduces the serial in-memory ``full_report``
  at ``medium_scenario`` scale, figure for figure;
* **scan parallelism** (≥ 2 cores) — the pooled chunk scan must beat the
  same chunk-streaming scan run in-process by ≥ 1.4×.  Comparing
  streaming against streaming isolates the fan-out from the
  decompression cost every out-of-core pass pays;
* **the large-tier acceptance gate** (opt-in: ``REPRO_BENCH_LARGE=1``
  and ≥ 4 cores) — on the ``large`` tier the pooled out-of-core report
  must beat the serial numpy engine over the materialised frame by
  ≥ 2.0×.  This is the paper-scale claim: at tens of millions of rows
  the serial engine needs the whole frame resident, the chunk engine
  does not, and the pool still wins on wall-clock.  Generating the tier
  takes minutes, hence the explicit opt-in (CI runs the medium gates).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.parallel import parallel_report_from_store
from repro.analysis.report import full_report
from repro.collection.store import FrameStore
from repro.common.columns import TxFrame
from repro.common.records import ChainId

ROUNDS = 3

#: Pool vs in-process gate for the chunk scan itself (≥ 2 cores).
REQUIRED_SCAN_SPEEDUP = 1.4

#: The large-tier acceptance gate vs the serial numpy engine (opt-in).
REQUIRED_LARGE_SPEEDUP = 2.0

#: Chunk size for the medium-scale store: small enough for real
#: partitioning headroom (~16 tasks), large enough to amortise gzip.
CHUNK_ROWS = 25_000


@pytest.fixture(scope="module")
def combined_frame(eos_frame, tezos_frame, xrp_frame):
    return TxFrame.concat([eos_frame, tezos_frame, xrp_frame])


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, combined_frame):
    directory = tmp_path_factory.mktemp("ooc-bench-store")
    store = FrameStore(chunk_rows=CHUNK_ROWS, directory=str(directory))
    store.add_frame(combined_frame)
    return str(directory)


def _time(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_store_report_result_identical_at_stress_scale(
    store_dir, combined_frame, xrp_oracle, xrp_clusterer
):
    serial = full_report(combined_frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
    out_of_core = parallel_report_from_store(
        store_dir, oracle=xrp_oracle, clusterer=xrp_clusterer, workers=2
    )
    assert set(out_of_core.chains) == {ChainId.EOS, ChainId.TEZOS, ChainId.XRP}
    for chain, expected in serial.chains.items():
        actual = out_of_core.chains[chain]
        assert actual.type_rows == expected.type_rows
        assert actual.stats == expected.stats
        assert actual.throughput == expected.throughput
        assert actual.top_senders == expected.top_senders
        assert actual.categories == expected.categories
        assert actual.top_receivers == expected.top_receivers
        assert actual.wash_trading == expected.wash_trading
        assert actual.decomposition == expected.decomposition
        if expected.value_flows is not None:
            assert actual.value_flows.total_xrp_value == pytest.approx(
                expected.value_flows.total_xrp_value, rel=1e-9
            )
    assert out_of_core.summary().to_rows() == serial.summary().to_rows()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="chunk-scan speedup requires at least two cores",
)
def test_pooled_chunk_scan_beats_in_process_scan(
    store_dir, combined_frame, xrp_oracle, xrp_clusterer
):
    cores = os.cpu_count() or 1
    workers = min(4, cores)

    def in_process():
        return parallel_report_from_store(
            store_dir, oracle=xrp_oracle, clusterer=xrp_clusterer,
            workers=0, tasks=workers,
        )

    def pooled():
        return parallel_report_from_store(
            store_dir, oracle=xrp_oracle, clusterer=xrp_clusterer,
            workers=workers,
        )

    serial_seconds = _time(in_process)
    pooled_seconds = _time(pooled)
    speedup = serial_seconds / pooled_seconds
    print(
        f"\nOut-of-core report over {len(combined_frame):,} rows: "
        f"in-process {serial_seconds:.3f}s, pooled ({workers} workers) "
        f"{pooled_seconds:.3f}s, speed-up {speedup:.2f}x on {cores} cores"
    )
    assert speedup >= REQUIRED_SCAN_SPEEDUP, (
        f"pooled chunk scan must be >= {REQUIRED_SCAN_SPEEDUP}x the "
        f"in-process scan on {cores} cores, got {speedup:.2f}x"
    )


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_LARGE"),
    reason="large-tier gate is opt-in (REPRO_BENCH_LARGE=1): generation takes minutes",
)
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the >= 2x large-tier gate targets hosts with at least four cores",
)
def test_large_tier_out_of_core_beats_serial_numpy(tmp_path_factory):
    from repro.cli import ensure_store
    from repro.common import kernels

    if not kernels.numpy_available():  # pragma: no cover - numpy is baked in
        pytest.skip("the large-tier gate compares against the numpy serial engine")
    cores = os.cpu_count() or 1
    cache = tmp_path_factory.mktemp("large-tier-cache")
    stored = ensure_store("large", 7, str(cache), gen_workers=cores)

    def serial():
        frame = FrameStore.open(stored.directory).to_frame()
        return full_report(
            frame, oracle=stored.oracle, clusterer=stored.clusterer
        )

    def out_of_core():
        return parallel_report_from_store(
            stored.directory,
            oracle=stored.oracle,
            clusterer=stored.clusterer,
            workers=min(8, cores),
        )

    serial_seconds = _time(serial)
    pooled_seconds = _time(out_of_core)
    speedup = serial_seconds / pooled_seconds
    print(
        f"\nLarge tier ({stored.rows:,} rows): serial numpy "
        f"{serial_seconds:.3f}s (frame materialised), out-of-core "
        f"{pooled_seconds:.3f}s, speed-up {speedup:.2f}x on {cores} cores"
    )
    assert speedup >= REQUIRED_LARGE_SPEEDUP, (
        f"out-of-core report must be >= {REQUIRED_LARGE_SPEEDUP}x the serial "
        f"numpy engine at the large tier, got {speedup:.2f}x"
    )
