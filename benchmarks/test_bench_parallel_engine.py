"""Parallel sharded engine vs the serial single-pass engine at stress scale.

The parallel execution layer fans the full-report accumulator set out over
chains × contiguous frame shards; worker processes rehydrate their shards
from columnar payloads and the parent merges the scanned states in shard
order.  Two properties are asserted here, at ``medium_scenario`` scale
(the full 92-day window, ~400k rows):

* **result identity** — the parallel report reproduces the serial report's
  figures on all three chains (counts, rankings and series exactly; the
  Figure 12 value sums to within floating-point rounding), regardless of
  core count;
* **speedup** — with at least two physical cores available, the parallel
  report over ``min(4, cores)`` workers must beat the serial engine by
  ≥ 1.5×.  On single-core machines the timing assertion is skipped (there
  is no parallelism to measure), matching the acceptance bar of "≥ 1.5×
  on ≥ 2 cores".
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.parallel import parallel_full_report
from repro.analysis.report import full_report
from repro.common.columns import TxFrame
from repro.common.records import ChainId

#: Number of timed rounds; the minimum is reported (steady-state cost).
ROUNDS = 3

#: Acceptance bar for the parallel engine on a multi-core machine.
REQUIRED_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def combined_frame(eos_frame, tezos_frame, xrp_frame):
    """All three chains in one columnar frame (the production shape)."""
    return TxFrame.concat([eos_frame, tezos_frame, xrp_frame])


def _time(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_parallel_report_result_identical_at_stress_scale(
    combined_frame, xrp_oracle, xrp_clusterer
):
    serial = full_report(combined_frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
    parallel = parallel_full_report(
        combined_frame,
        oracle=xrp_oracle,
        clusterer=xrp_clusterer,
        workers=2,
        shards=2,
    )
    assert set(parallel.chains) == {ChainId.EOS, ChainId.TEZOS, ChainId.XRP}
    for chain, expected in serial.chains.items():
        actual = parallel.chains[chain]
        assert actual.type_rows == expected.type_rows
        assert actual.stats == expected.stats
        assert actual.throughput == expected.throughput
        assert actual.top_senders == expected.top_senders
        assert actual.categories == expected.categories
        assert actual.top_receivers == expected.top_receivers
        assert actual.wash_trading == expected.wash_trading
        assert actual.decomposition == expected.decomposition
        if expected.value_flows is not None:
            assert actual.value_flows.total_xrp_value == pytest.approx(
                expected.value_flows.total_xrp_value, rel=1e-9
            )
    assert parallel.summary().to_rows() == serial.summary().to_rows()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup requires at least two cores",
)
def test_parallel_report_speedup_over_serial(
    combined_frame, xrp_oracle, xrp_clusterer
):
    cores = os.cpu_count() or 1
    workers = min(4, cores)

    def serial():
        return full_report(
            combined_frame, oracle=xrp_oracle, clusterer=xrp_clusterer
        )

    def parallel():
        return parallel_full_report(
            combined_frame,
            oracle=xrp_oracle,
            clusterer=xrp_clusterer,
            workers=workers,
        )

    serial_seconds = _time(serial)
    parallel_seconds = _time(parallel)
    speedup = serial_seconds / parallel_seconds
    print(
        f"\nFull report over {len(combined_frame):,} rows: "
        f"serial {serial_seconds:.3f}s, parallel ({workers} workers) "
        f"{parallel_seconds:.3f}s, speed-up {speedup:.2f}x on {cores} cores"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"parallel report must be >= {REQUIRED_SPEEDUP}x faster than the "
        f"serial engine on {cores} cores, got {speedup:.2f}x"
    )
