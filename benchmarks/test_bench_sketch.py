"""Sketch statistics mode: kernel speedup, memory and error gates.

Runs the same measurement as the ``sketch`` stanza of ``repro bench``
(:func:`repro.cli.bench_sketch_mode`) at ``medium_scenario`` scale and
turns the ROADMAP acceptance bars into assertions:

* **speedup** — the vectorized ``tx_stats`` kernel must clear ≥ 4× over
  the pure-python reference backend in sketch mode (the reference keeps
  the readable per-id ``hash64`` loop by design, so the headroom is
  wide — ~20× in practice);
* **memory** — one sketch-mode ``tx_stats`` pass stays within a fixed
  budget regardless of row count, and its encoded checkpoint state stays
  a few tens of KiB (an HLL register file plus bookkeeping);
* **error** — at ~400k rows the per-chain distinct counts sit past the
  HLL's sparse limit, so the stanza's measured error must hold the
  documented 3-sigma envelope, and the top-sender overlap must be exact
  (the heavy-hitter capacity covers paper-scale account sets).
"""

from __future__ import annotations

import math

import pytest

from repro.cli import Dataset, bench_sketch_mode
from repro.common import kernels
from repro.common.columns import TxFrame

pytestmark = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)

#: ROADMAP bar: sketch-mode tx_stats, numpy kernel vs python reference.
REQUIRED_SPEEDUP = 4.0

#: 3-sigma relative error of a 2^14-register HyperLogLog.
HLL_ENVELOPE = 3 * 1.04 / math.sqrt(1 << 14)

#: Sketch state is O(1): registers + bookkeeping, never per-key entries.
MAX_STATE_BYTES = 64 * 1024


@pytest.fixture(scope="module")
def sketch_dataset(bench_scenario, eos_frame, tezos_frame, xrp_frame, xrp_oracle, xrp_clusterer):
    return Dataset(
        scenario=bench_scenario,
        frame=TxFrame.concat([eos_frame, tezos_frame, xrp_frame]),
        oracle=xrp_oracle,
        clusterer=xrp_clusterer,
        from_cache=True,
        build_seconds=0.0,
    )


@pytest.fixture(scope="module")
def sketch_stanza(sketch_dataset):
    return bench_sketch_mode(sketch_dataset, repeat=3)


def test_sketch_tx_stats_kernel_speedup(sketch_stanza):
    timings = sketch_stanza["tx_stats"]
    speedup = timings[kernels.PYTHON] / timings[kernels.NUMPY]
    assert speedup >= REQUIRED_SPEEDUP, sketch_stanza


def test_sketch_state_stays_bounded(sketch_stanza):
    assert sketch_stanza["tx_stats_state_bytes"] <= MAX_STATE_BYTES


def test_sketch_error_holds_documented_envelope(sketch_stanza):
    error = sketch_stanza["error_vs_exact"]
    assert error["transaction_count_rel_error_max"] <= HLL_ENVELOPE
    # Heavy-hitter capacity covers the scenario's account set: the ranked
    # top senders are the exact ones, not merely overlapping ones.
    assert error["top_senders_overlap_min"] == 1.0
