"""Chunk-state cache gates: warm speedup, O(new-data) appends, identity.

The chunk-state aggregate cache memoizes each committed chunk's folded
accumulator states so a repeat report folds states instead of rescanning
history.  Four layers, at ``medium_scenario`` scale:

* **warm speedup gate** — a warm cached out-of-core ``full_report`` must
  beat the cold *uncached* scan of the same store by ≥ 5×.  Both sides run
  in-process (``workers=1``) through the shared ``bench_report_cache``
  stanza, so ``repro bench --json`` and this gate always measure the same
  thing;
* **O(new data)** — after appending rows to a warmed store, a cached
  report hits every pre-existing chunk and misses exactly the appended
  ones (hit/miss counters asserted), i.e. only new data is scanned;
* **result identity** — the cached report (cold populating pass and warm
  memoized pass alike) is figure-for-figure identical to the serial
  in-memory ``full_report`` on every available kernel backend;
* **corruption degradation** — with the ``store.cache_read`` faultpoint
  flipping bits in every entry read (and with entries truncated or made
  stale on disk), the report silently degrades to a per-chunk rescan:
  every lookup counts as a miss and no figure changes.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.parallel import parallel_report_from_store
from repro.analysis.report import full_report
from repro.analysis.statecache import ChunkStateCache, parse_entry_name
from repro.cli import bench_report_cache
from repro.collection.store import FrameStore
from repro.common import faults, kernels
from repro.common.columns import TxFrame

from tests.pipeline.util import assert_reports_identical

ROUNDS = 3

#: Warm memoized report vs the cold uncached scan of the same store.
REQUIRED_WARM_SPEEDUP = 5.0

#: Matches the out-of-core benchmark's partitioning headroom.
CHUNK_ROWS = 25_000

BACKENDS = ["python"] + (["numpy"] if kernels.numpy_available() else [])


@pytest.fixture(scope="module")
def combined_frame(eos_frame, tezos_frame, xrp_frame):
    return TxFrame.concat([eos_frame, tezos_frame, xrp_frame])


@pytest.fixture(scope="module")
def serial_report(combined_frame, xrp_oracle, xrp_clusterer):
    return full_report(combined_frame, oracle=xrp_oracle, clusterer=xrp_clusterer)


@pytest.fixture()
def store_dir(tmp_path, combined_frame):
    directory = tmp_path / "state-cache-store"
    store = FrameStore(chunk_rows=CHUNK_ROWS, directory=str(directory))
    store.add_frame(combined_frame)
    return str(directory)


def _cached_report(store_dir, oracle, clusterer, cache):
    return parallel_report_from_store(
        store_dir, oracle=oracle, clusterer=clusterer, workers=1, cache=cache
    )


def test_warm_cached_report_beats_cold_uncached(
    store_dir, xrp_oracle, xrp_clusterer
):
    stanza = bench_report_cache(store_dir, xrp_oracle, xrp_clusterer, ROUNDS)
    assert stanza["cold_misses"] == stanza["chunks"]
    assert stanza["warm_hits"] == stanza["chunks"]
    assert stanza["warm_misses"] == 0
    assert stanza["cache_entries"] == stanza["chunks"]
    assert stanza["cache_bytes"] > 0
    assert stanza["speedup_warm_vs_uncached"] >= REQUIRED_WARM_SPEEDUP, (
        f"warm cached report is only {stanza['speedup_warm_vs_uncached']}x the "
        f"uncached scan (need >= {REQUIRED_WARM_SPEEDUP}x): "
        f"uncached {stanza['uncached_seconds']}s, warm {stanza['warm_seconds']}s"
    )


def test_append_scans_only_new_chunks(
    store_dir, combined_frame, xrp_oracle, xrp_clusterer
):
    store = FrameStore.open(store_dir)
    chunks_before = store.committed_chunk_count
    warm = ChunkStateCache.for_store(store_dir)
    _cached_report(store_dir, xrp_oracle, xrp_clusterer, warm)
    assert warm.misses == chunks_before

    # Append a tail of rows (recycled medium-scale rows make a ragged,
    # multi-chunk append) — committed chunks are immutable, so their
    # entries must keep hitting.
    tail = combined_frame.to_payload(range(0, 2 * CHUNK_ROWS + 137))
    appended = TxFrame.from_payload(tail)
    store.add_frame(appended)
    chunks_after = store.committed_chunk_count
    assert chunks_after > chunks_before

    cache = ChunkStateCache.for_store(store_dir)
    _cached_report(store_dir, xrp_oracle, xrp_clusterer, cache)
    assert cache.hits == chunks_before
    assert cache.misses == chunks_after - chunks_before

    # And the next report is all hits again.
    rewarmed = ChunkStateCache.for_store(store_dir)
    _cached_report(store_dir, xrp_oracle, xrp_clusterer, rewarmed)
    assert (rewarmed.hits, rewarmed.misses) == (chunks_after, 0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_cached_report_identity(
    store_dir, serial_report, xrp_oracle, xrp_clusterer, backend
):
    with kernels.use_backend(backend):
        uncached = parallel_report_from_store(
            store_dir, oracle=xrp_oracle, clusterer=xrp_clusterer, workers=1
        )
        cold = ChunkStateCache.for_store(store_dir)
        cold_report = _cached_report(store_dir, xrp_oracle, xrp_clusterer, cold)
        warm = ChunkStateCache.for_store(store_dir)
        warm_report = _cached_report(store_dir, xrp_oracle, xrp_clusterer, warm)
    assert cold.misses > 0 and warm.hits == cold.misses and warm.misses == 0
    # Bit-for-bit against the uncached chunk engine (same fold order); the
    # serial in-memory engine differs only in the Figure 12 float sum order
    # (the documented chunk-fold caveat), hence exact_flows=False there.
    assert_reports_identical(cold_report, uncached, exact_flows=True)
    assert_reports_identical(warm_report, uncached, exact_flows=True)
    assert_reports_identical(cold_report, serial_report, exact_flows=False)
    assert_reports_identical(warm_report, serial_report, exact_flows=False)


def test_corrupt_and_stale_entries_degrade_to_rescan(
    store_dir, serial_report, xrp_oracle, xrp_clusterer
):
    warm = ChunkStateCache.for_store(store_dir)
    _cached_report(store_dir, xrp_oracle, xrp_clusterer, warm)
    chunk_count = warm.misses

    # Injected bit flips on every cache read: every lookup must degrade to
    # a plain rescan (all misses) without changing a single figure.
    plan = faults.FaultPlan.parse(
        "seed=3;store.cache_read:mode=bitflip:p=1.0:times=1000000"
    )
    flipped = ChunkStateCache.for_store(store_dir)
    with faults.use_plan(plan):
        report = _cached_report(store_dir, xrp_oracle, xrp_clusterer, flipped)
    assert (flipped.hits, flipped.misses) == (0, chunk_count)
    assert_reports_identical(report, serial_report, exact_flows=False)

    # On-disk damage: truncate one entry, stale-key another.  Both count as
    # misses, everything else still hits, figures never move.
    cache_dir = ChunkStateCache.for_store(store_dir).directory
    entries = sorted(
        name for name in os.listdir(cache_dir) if parse_entry_name(name)
    )
    truncated, staled = entries[0], entries[1]
    with open(os.path.join(cache_dir, truncated), "r+b") as handle:
        handle.truncate(7)
    key = parse_entry_name(staled)
    stale_name = staled.replace(key.chunk_checksum, "00000000")
    os.rename(
        os.path.join(cache_dir, staled), os.path.join(cache_dir, stale_name)
    )
    damaged = ChunkStateCache.for_store(store_dir)
    report = _cached_report(store_dir, xrp_oracle, xrp_clusterer, damaged)
    assert (damaged.hits, damaged.misses) == (chunk_count - 2, 2)
    assert_reports_identical(report, serial_report, exact_flows=False)
