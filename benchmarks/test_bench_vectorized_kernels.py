"""Vectorized NumPy kernel backend vs the pure-python reference kernels.

The numpy backend rewrites every hot accumulator's ``bind_batch`` as array
kernels (packed-code histograms, vectorized bin indexing, boolean-mask
reductions) over zero-copy ndarray views of the columnar frame.  Two
properties are asserted at ``medium_scenario`` scale (the full 92-day
window, ~400k rows):

* **result identity** — ``full_report`` under ``REPRO_KERNELS=numpy``
  reproduces the reference backend's report figure-for-figure, including
  the Figure 12 value-flow float sums **bit-for-bit** (both serial paths
  accumulate the same floats in the same order);
* **speedup** — the numpy backend must beat the reference backend by ≥ 3×
  on the single-process ``full_report``, and each of the three heaviest
  kernels (type distribution, throughput binning, top senders) must win
  its micro-bench by ≥ 1.5×.  The gates are single-process, so they hold
  regardless of core count.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.accounts import AccountActivityAccumulator
from repro.analysis.classify import TypeDistributionAccumulator
from repro.analysis.report import full_report, tezos_figure3_key_columns
from repro.analysis.throughput import ThroughputSeriesAccumulator
from repro.common import kernels
from repro.common.columns import TxFrame
from repro.common.records import ChainId

pytestmark = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)

#: Number of timed rounds; the minimum is reported (steady-state cost).
ROUNDS = 3

#: Acceptance bar for the vectorized backend on the full report.
REQUIRED_SPEEDUP = 3.0

#: Acceptance bar for each individual micro-bench kernel.
REQUIRED_KERNEL_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def combined_frame(eos_frame, tezos_frame, xrp_frame):
    """All three chains in one columnar frame (the production shape)."""
    return TxFrame.concat([eos_frame, tezos_frame, xrp_frame])


def _time(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_numpy_backend_full_report_identical_and_3x(
    combined_frame, xrp_oracle, xrp_clusterer
):
    def report():
        return full_report(
            combined_frame, oracle=xrp_oracle, clusterer=xrp_clusterer
        )

    with kernels.use_backend(kernels.PYTHON):
        reference = report()
        reference_seconds = _time(report)
    with kernels.use_backend(kernels.NUMPY):
        vectorized = report()
        vectorized_seconds = _time(report)

    assert set(vectorized.chains) == {ChainId.EOS, ChainId.TEZOS, ChainId.XRP}
    for chain, expected in reference.chains.items():
        actual = vectorized.chains[chain]
        assert actual.type_rows == expected.type_rows
        assert actual.stats == expected.stats
        assert actual.throughput == expected.throughput
        assert actual.top_senders == expected.top_senders
        assert actual.categories == expected.categories
        assert actual.top_receivers == expected.top_receivers
        assert actual.wash_trading == expected.wash_trading
        assert actual.decomposition == expected.decomposition
        if expected.value_flows is not None:
            # Serial path: the Figure 12 float sums are bit-for-bit equal,
            # not merely approximately equal.
            assert actual.value_flows.flows == expected.value_flows.flows
            assert (
                actual.value_flows.total_xrp_value
                == expected.value_flows.total_xrp_value
            )
            assert actual.value_flows.by_sender == expected.value_flows.by_sender
            assert (
                actual.value_flows.by_receiver == expected.value_flows.by_receiver
            )
            assert (
                actual.value_flows.by_currency == expected.value_flows.by_currency
            )
    assert vectorized.summary().to_rows() == reference.summary().to_rows()

    speedup = reference_seconds / vectorized_seconds
    print(
        f"\nFull report over {len(combined_frame):,} rows: "
        f"python {reference_seconds:.3f}s, numpy {vectorized_seconds:.3f}s, "
        f"speed-up {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"numpy kernel backend must be >= {REQUIRED_SPEEDUP}x faster than the "
        f"reference kernels, got {speedup:.2f}x"
    )


def _micro_benches(frame):
    bounds = (frame.min_timestamp(), frame.max_timestamp())
    return [
        ("type_distribution", lambda: TypeDistributionAccumulator().run(frame)),
        ("top_senders", lambda: AccountActivityAccumulator("sender").run(frame)),
        (
            "throughput_series",
            lambda: ThroughputSeriesAccumulator(
                key_columns=tezos_figure3_key_columns,
                start=bounds[0],
                end=bounds[1],
            ).run(frame),
        ),
    ]


def test_heaviest_kernels_micro_benches(combined_frame):
    lines = []
    for label, bench in _micro_benches(combined_frame):
        with kernels.use_backend(kernels.PYTHON):
            reference_result = bench()
            reference_seconds = _time(bench)
        with kernels.use_backend(kernels.NUMPY):
            vectorized_result = bench()
            vectorized_seconds = _time(bench)
        assert vectorized_result == reference_result, label
        speedup = reference_seconds / vectorized_seconds
        lines.append(
            f"{label}: python {reference_seconds * 1e3:.1f}ms, "
            f"numpy {vectorized_seconds * 1e3:.1f}ms, {speedup:.2f}x"
        )
        assert speedup >= REQUIRED_KERNEL_SPEEDUP, (
            f"{label} kernel must be >= {REQUIRED_KERNEL_SPEEDUP}x faster "
            f"vectorized, got {speedup:.2f}x"
        )
    print("\n" + "\n".join(lines))
