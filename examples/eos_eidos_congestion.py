"""Case study: the EIDOS airdrop, boomerang transactions and congestion (§4.1).

Generates EOS traffic across the 2019-11-01 EIDOS launch and reports:

* how the per-6-hour action count explodes at the launch (Figure 3a);
* how many boomerang claims were detected and what share of post-launch
  traffic they represent (the paper's 95 % headline);
* the WhaleEx wash-trading statistics (top-account concentration, self-trade
  shares, near-zero net balance changes);
* the resource-market consequences: congestion-mode share and the CPU price
  spike that squeezed low-stake users off the chain.

Run with:  python examples/eos_eidos_congestion.py
"""

from __future__ import annotations

from repro.analysis.airdrop import analyze_airdrop, analyze_congestion
from repro.analysis.classify import classify_eos_category
from repro.analysis.throughput import bin_throughput, spike_ratio
from repro.analysis.washtrading import analyze_wash_trading
from repro.common.clock import date_from_timestamp
from repro.common.records import iter_transactions
from repro.eos.workload import EosWorkloadConfig, EosWorkloadGenerator


def main() -> None:
    config = EosWorkloadConfig(
        start_date="2019-10-18",
        end_date="2019-11-15",
        transactions_per_day=1_200,
        blocks_per_day=12,
        user_account_count=120,
        seed=42,
    )
    print(f"Generating EOS traffic {config.start_date} -> {config.end_date} ...")
    generator = EosWorkloadGenerator(config)
    blocks = generator.generate()
    records = list(iter_transactions(blocks))
    print(f"  {len(blocks)} blocks, {len(records)} actions")

    # Figure 3a: throughput per 6-hour bin by application category.
    series = bin_throughput(records, classify_eos_category)
    launch = config.eidos_launch_timestamp
    print("\nThroughput across time (Figure 3a shape):")
    print(f"  traffic after / before the EIDOS launch: {spike_ratio(series, launch):.1f}x")
    peak_index, peak_count = series.peak_bin()
    print(
        f"  busiest 6-hour bin: {peak_count} actions on "
        f"{date_from_timestamp(series.bin_start(peak_index))}"
    )

    # Boomerang claims (§4.1).
    airdrop = analyze_airdrop(records, launch_date=config.eidos_launch_date)
    print("\nEIDOS boomerang transactions:")
    print(f"  detected claims:                {airdrop.claim_count}")
    print(f"  unique claimer accounts:        {airdrop.unique_claimers}")
    print(f"  share of post-launch actions:   {airdrop.boomerang_action_share_post_launch:.1%}")
    print(f"  post/pre traffic multiplier:    {airdrop.traffic_multiplier:.1f}x")

    # Congestion mode and CPU price (§4.1).
    congestion = analyze_congestion(generator.chain.resources.history(), launch)
    print("\nResource market impact:")
    print(f"  post-launch blocks in congestion mode: {congestion.congested_share:.1%}")
    print(f"  CPU price increase vs pre-launch:      {congestion.cpu_price_increase:,.0f}x")
    print(f"  transactions rejected for lack of CPU: {generator.chain.rejected_transactions}")

    # WhaleEx wash trading (§4.1).
    wash = analyze_wash_trading(records)
    print("\nWhaleEx wash trading:")
    print(f"  settled trades:                       {wash.trade_count}")
    print(f"  share involving the top-5 accounts:   {wash.top_accounts_trade_share:.1%}")
    for account, share in wash.self_trade_share_by_account.items():
        print(f"    {account:14s} self-trade share: {share:.1%}")
    print(f"  verdict: wash trading suspected = {wash.is_wash_trading_suspected()}")


if __name__ == "__main__":
    main()
