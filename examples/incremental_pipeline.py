"""Incremental ingestion with checkpointed accumulators and live updates.

Builds a durable pipeline directory, tails the ``live_tail`` scenario's
block stream in timed batches, and refreshes the full figure report after
every batch — scanning only the rows that arrived, never recomputing
history.  Finishes by proving the incremental report identical to a
from-scratch batch run over the same rows.

Run with ``PYTHONPATH=src python examples/incremental_pipeline.py``.
"""

from __future__ import annotations

import tempfile

from repro.analysis.report import full_report
from repro.common.clock import SimulationClock, iso_from_timestamp
from repro.pipeline import LiveTailRunner, Pipeline
from repro.scenarios import get_scenario


def main() -> None:
    scenario = get_scenario("live_tail", seed=7)
    with tempfile.TemporaryDirectory(prefix="repro-pipeline-") as root:
        pipeline = Pipeline(root, chunk_rows=5_000)
        runner = LiveTailRunner(
            pipeline,
            scenario,
            batch_seconds=12 * 3600.0,  # half-day batches
            clock=SimulationClock(0.0),
        )
        print(f"Tailing scenario {scenario.name!r} into {root}")
        last = None
        for update in runner.run(max_batches=6):
            print(
                f"  [{iso_from_timestamp(update.virtual_time)}] "
                f"+{update.rows_ingested:,} rows, scanned "
                f"{update.stats.rows_scanned:,}/{update.stats.rows_total:,} "
                f"({'incremental' if update.stats.incremental else 'first scan'})"
            )
            last = update
        assert last is not None

        # The incremental report equals a from-scratch batch run.
        oracle, clusterer = pipeline.analysis_config()
        batch = full_report(pipeline.frame, oracle=oracle, clusterer=clusterer)
        assert last.report.summary().to_rows() == batch.summary().to_rows()
        for chain, expected in batch.chains.items():
            figures = last.report.chains[chain]
            assert figures.stats == expected.stats
            assert figures.throughput == expected.throughput
        print("\nIncremental report == batch report, figure for figure.")
        print(last.report.summary().format_text())


if __name__ == "__main__":
    main()
