"""Parallel tour: shard the frame, fan out workers, merge — same figures.

The analysis workload is embarrassingly parallel: chains are independent
and, within a chain, every accumulator's state is mergeable across disjoint
row ranges.  This example builds the ``small`` scenario's dataset once and
computes the full figure report twice:

1. with the serial single-pass engine (``full_report``), and
2. with the parallel sharded engine (``parallel_full_report``): the frame is
   split into contiguous shards per chain, worker processes rehydrate their
   shards from columnar payloads, and the scanned accumulator states merge
   back in shard order before one finalisation.

The two reports must agree — that is the merge protocol's contract — so the
script ends by asserting the summaries match.  The command-line equivalent:

    python -m repro report --scale small --workers 2

Run with:  python examples/parallel_report.py [scenario-name] [workers]
"""

from __future__ import annotations

import os
import sys
import time

from repro.analysis.clustering import AccountClusterer
from repro.analysis.parallel import parallel_full_report
from repro.analysis.report import full_report
from repro.analysis.value import ExchangeRateOracle
from repro.common.columns import TxFrame
from repro.eos.workload import EosWorkloadGenerator
from repro.scenarios import get_scenario
from repro.tezos.workload import TezosWorkloadGenerator
from repro.xrp.workload import XrpWorkloadGenerator


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "small"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    scenario = get_scenario(name, seed=7)

    generators = {
        "eos": EosWorkloadGenerator(scenario.eos),
        "tezos": TezosWorkloadGenerator(scenario.tezos),
        "xrp": XrpWorkloadGenerator(scenario.xrp),
    }
    frame = TxFrame()
    for generator in generators.values():
        frame.extend(generator.stream_records())
    oracle = ExchangeRateOracle.from_orderbook(generators["xrp"].ledger.orderbook)
    clusterer = AccountClusterer(generators["xrp"].ledger.accounts)
    print(f"Scenario {name!r}: {len(frame):,} rows across {len(frame.chains())} chains")

    started = time.perf_counter()
    serial = full_report(frame, oracle=oracle, clusterer=clusterer)
    serial_seconds = time.perf_counter() - started
    print(f"Serial single-pass engine:  {serial_seconds:.2f}s")

    started = time.perf_counter()
    parallel = parallel_full_report(
        frame, oracle=oracle, clusterer=clusterer, workers=workers
    )
    parallel_seconds = time.perf_counter() - started
    print(
        f"Parallel sharded engine:    {parallel_seconds:.2f}s "
        f"({workers} workers on {os.cpu_count()} cores)"
    )

    assert parallel.summary().to_rows() == serial.summary().to_rows(), (
        "parallel report diverged from the serial engine"
    )
    print("\nParallel report is result-identical to the serial engine.")
    print("\n" + parallel.summary().format_text())


if __name__ == "__main__":
    main()
