"""Quickstart: regenerate the paper's headline findings end to end.

The script runs the whole pipeline at a small scale:

1. generate two weeks of calibrated traffic for EOS, Tezos and XRP
   (straddling the EIDOS airdrop launch and the first XRP spam wave);
2. serve the chains over their simulated RPC endpoints and crawl them in
   reverse chronological order into a gzip-compressed block store, exactly
   like the paper's data collection (§3.1);
3. decompress each store straight into a columnar ``TxFrame`` — the
   canonical analysis substrate — and run the single-pass analysis engine:
   one streaming scan per chain produces the summary of findings the
   paper's introduction quotes.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.report import build_summary_report
from repro.analysis.value import ExchangeRateOracle
from repro.collection.crawler import BlockCrawler
from repro.collection.dataset import characterize_dataset
from repro.collection.endpoints import EndpointPool
from repro.collection.store import BlockStore
from repro.eos.rpc import EosRpcEndpoint
from repro.eos.workload import EosWorkloadGenerator
from repro.scenarios import small_scenario
from repro.tezos.rpc import TezosRpcEndpoint
from repro.tezos.workload import TezosWorkloadGenerator
from repro.xrp.rpc import XrpRpcEndpoint
from repro.xrp.workload import XrpWorkloadGenerator


def crawl(endpoint, lowest_height: int) -> BlockStore:
    """Crawl every block an endpoint serves, newest first, into a store."""
    store = BlockStore(chunk_size=128)
    crawler = BlockCrawler(EndpointPool([endpoint]), store=store)
    head = crawler.discover_head()
    report = crawler.crawl_range(highest=head, lowest=lowest_height)
    print(
        f"  crawled {report.blocks_fetched} {endpoint.chain_name} blocks "
        f"({report.transactions_fetched} transactions, "
        f"{report.requests_issued} RPC requests, {report.retries} retries)"
    )
    return store


def main() -> None:
    scenario = small_scenario(seed=7)

    print("Generating calibrated workloads (two weeks around 2019-11-01)...")
    eos = EosWorkloadGenerator(scenario.eos)
    tezos = TezosWorkloadGenerator(scenario.tezos)
    xrp = XrpWorkloadGenerator(scenario.xrp)
    eos.generate()
    tezos.generate()
    xrp.generate()

    print("Crawling the simulated RPC endpoints (reverse chronological)...")
    eos_store = crawl(EosRpcEndpoint(eos.chain), eos.chain.config.start_height)
    tezos_store = crawl(TezosRpcEndpoint(tezos.chain), tezos.chain.config.start_level)
    xrp_store = crawl(XrpRpcEndpoint(xrp.ledger), xrp.ledger.config.start_index)

    print("\nDataset characterisation (Figure 2 columns, at simulation scale):")
    for store in (eos_store, tezos_store, xrp_store):
        row = characterize_dataset(store).to_row()
        print(
            f"  {row['chain']:5s}  blocks {row['first_block']}..{row['last_block']}"
            f"  ({row['block_count']} blocks, {row['transaction_count']} transactions,"
            f" {row['storage_gb']:.6f} GB gzip)"
        )

    print("\nRunning the single-pass analysis engine (one scan per chain)...")
    oracle = ExchangeRateOracle.from_orderbook(xrp.ledger.orderbook)
    # Each store decompresses straight into a columnar frame; the summary is
    # then a single engine pass per chain — no per-figure re-iteration.
    report = build_summary_report(
        eos_records=eos_store.to_frame(),
        tezos_records=tezos_store.to_frame(),
        xrp_records=xrp_store.to_frame(),
        xrp_oracle=oracle,
    )
    print()
    print(report.format_text())
    print(
        "\nPaper headlines for comparison: 95% of EOS actions are EIDOS-driven token\n"
        "transfers, 82% of Tezos operations are consensus endorsements, and only ~2%\n"
        "of XRP ledger transactions carry economic value."
    )


if __name__ == "__main__":
    main()
