"""Streaming tour: generator → TxFrame → engine → figures, no block lists.

The pipeline the paper implies at ~530M transactions only works if nothing
is ever materialised per record.  This example shows the streaming path:

1. pick a scenario from the registry (``small`` by default; try
   ``eidos_flood`` or ``spam_storm`` for the stress variants);
2. stream each generator's canonical records straight into a columnar
   ``TxFrame`` via ``stream_records()`` — no intermediate block lists;
3. run the single-pass engine: one scan per chain yields Figure 1, the
   Figure 2 statistics with the headline TPS, the Figure 3 series and the
   chain's case studies;
4. chunk-compress the frame directly into a ``FrameStore`` and report the
   storage accounting.

Run with:  python examples/streaming_engine.py [scenario-name]
"""

from __future__ import annotations

import sys
import time

from repro.analysis.clustering import AccountClusterer
from repro.analysis.report import full_report
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import FrameStore
from repro.common.columns import TxFrame
from repro.eos.workload import EosWorkloadGenerator
from repro.scenarios import get_scenario, scenario_names
from repro.tezos.workload import TezosWorkloadGenerator
from repro.xrp.workload import XrpWorkloadGenerator


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "small"
    scenario = get_scenario(name, seed=7)
    print(f"Scenario {name!r} (registered: {', '.join(scenario_names())})")

    generators = {
        "eos": EosWorkloadGenerator(scenario.eos),
        "tezos": TezosWorkloadGenerator(scenario.tezos),
        "xrp": XrpWorkloadGenerator(scenario.xrp),
    }

    frame = TxFrame()
    started = time.perf_counter()
    for chain_name, generator in generators.items():
        appended = frame.extend(generator.stream_records())
        print(f"  streamed {appended:>8,d} {chain_name} records into the frame")
    print(
        f"Ingest: {len(frame):,} rows in {time.perf_counter() - started:.2f}s "
        f"({len(frame.accounts):,} interned accounts, {len(frame.types)} types)"
    )

    oracle = ExchangeRateOracle.from_orderbook(generators["xrp"].ledger.orderbook)
    clusterer = AccountClusterer(generators["xrp"].ledger.accounts)

    started = time.perf_counter()
    report = full_report(frame, oracle=oracle, clusterer=clusterer)
    elapsed = time.perf_counter() - started
    print(f"\nSingle-pass engine: every figure for every chain in {elapsed:.2f}s")

    for chain, figures in report.chains.items():
        print(f"\n[{chain.value.upper()}]  {figures.stats.action_count:,} rows, "
              f"{figures.tps:.3f} TPS, {figures.throughput.bin_count} throughput bins")
        for row in figures.type_rows[:4]:
            print(f"    {row.group:18s} {row.type_name:22s} {row.share:6.1%}")
        if figures.wash_trading is not None and figures.wash_trading.trade_count:
            wash = figures.wash_trading
            print(
                f"    wash trading: top-5 involved in {wash.top_accounts_trade_share:.0%} "
                f"of {wash.trade_count} trades, {wash.self_trade_share_overall:.0%} self-trades"
            )
        if figures.decomposition is not None:
            print(
                f"    economic value share: {figures.decomposition.economic_value_share:.2%}"
                f" (paper: ~2.3%)"
            )

    print("\n" + report.summary().format_text())

    store = FrameStore(chunk_rows=50_000)
    store.add_frame(frame)
    stats = store.compression_stats()
    print(
        f"\nFrameStore: {store.row_count:,} rows chunk-compressed directly from the "
        f"frame into {stats.chunk_count} chunks, "
        f"{stats.compressed_bytes / 1_000_000:.2f} MB "
        f"({stats.ratio:.0%} of raw)"
    )


if __name__ == "__main__":
    main()
