"""Case study: consensus overhead and on-chain governance on Tezos (§4.2).

Generates Tezos traffic for the observation window and reports:

* the operation-kind distribution, dominated by endorsements (Figure 1);
* the consensus / governance / manager split (§2.3.2);
* the Figure 6 sender patterns (baker payouts vs one-shot airdrop fan-out);
* the Babylon 2.0 amendment voting process: the three Figure 9 panels, the
  participation rates, and the paper's "the proposal and exploration periods
  could be merged" observation.

Run with:  python examples/tezos_governance.py
"""

from __future__ import annotations

from repro.analysis.accounts import top_sender_receiver_pairs
from repro.analysis.classify import (
    distribution_as_mapping,
    tezos_category_distribution,
    type_distribution,
)
from repro.analysis.governance import analyze_governance, figure9_series
from repro.common.clock import date_from_timestamp
from repro.common.records import ChainId, iter_transactions
from repro.tezos.workload import TezosWorkloadConfig, TezosWorkloadGenerator


def main() -> None:
    config = TezosWorkloadConfig(
        start_date="2019-09-29",
        end_date="2019-12-31",
        blocks_per_day=16,
        baker_count=12,
        user_account_count=200,
        seed=11,
    )
    print(f"Generating Tezos traffic {config.start_date} -> {config.end_date} ...")
    generator = TezosWorkloadGenerator(config)
    blocks = generator.generate()
    records = list(iter_transactions(blocks))
    print(f"  {len(blocks)} blocks, {len(records)} operations")

    print("\nOperation kinds (Figure 1, Tezos column):")
    shares = distribution_as_mapping(type_distribution(records), ChainId.TEZOS)
    for kind, share in sorted(shares.items(), key=lambda item: -item[1]):
        print(f"  {kind:24s} {share:6.1%}")
    categories = tezos_category_distribution(records)
    print("Consensus / governance / manager split:")
    for category, share in sorted(categories.items(), key=lambda item: -item[1]):
        print(f"  {category:12s} {share:6.1%}")

    print("\nTop senders and their fan-out (Figure 6):")
    transactions_only = [record for record in records if record.type == "Transaction"]
    for profile in top_sender_receiver_pairs(transactions_only, limit_senders=5):
        print(
            f"  {profile.sender[:22]:24s} sent {profile.sent_count:6d} to "
            f"{profile.unique_receivers:5d} receivers "
            f"(mean {profile.mean_per_receiver:5.2f}, stdev {profile.stdev_per_receiver:5.2f})"
        )

    print("\nBabylon 2.0 amendment (Figure 9, §4.2):")
    events = generator.generate_babylon_votes()
    report = analyze_governance(events, records=records)
    print(f"  proposal-period votes: {report.proposal_votes}")
    print(f"  winning proposal:      {report.winning_proposal}")
    print(f"  proposal participation:   {report.proposal_participation:.0%}")
    print(
        f"  exploration: yay={report.exploration.yay} nay={report.exploration.nay}"
        f" pass={report.exploration.passes}"
        f" (approval {report.exploration.approval_rate:.1%})"
    )
    print(
        f"  promotion:   yay={report.promotion.yay} nay={report.promotion.nay}"
        f" pass={report.promotion.passes}"
        f" (nay share {report.promotion.nay_share:.1%})"
    )
    print(f"  governance operations in the window: {report.governance_operation_count}")
    print(f"  'merge proposal and exploration periods' applies: {report.could_merge_periods}")

    panels = figure9_series(events)
    print("\nVote-evolution series (Figure 9), final cumulative counts:")
    for panel_name, panel in panels.items():
        finals = {key: (series[-1][1] if series else 0) for key, series in panel.items()}
        print(f"  {panel_name:12s} {finals}")
    first_vote = min(event.timestamp for event in events)
    last_vote = max(event.timestamp for event in events)
    print(
        f"  voting spans {date_from_timestamp(first_vote)} -> {date_from_timestamp(last_vote)}"
    )


if __name__ == "__main__":
    main()
