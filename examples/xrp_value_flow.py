"""Case study: zero-value transactions and value flow on the XRP ledger (§4.3).

Generates XRP ledger traffic covering both payment-spam waves and the
December self-dealt BTC IOU trades, then reports:

* the Figure 7 decomposition: failed transactions, payments with and without
  value, offers with and without an exchange — and the economic-value share;
* the Figure 11 exchange-rate table: BTC IOU rates per issuer, including the
  rate collapse of the self-dealt IOU;
* the Figure 12 value flow: top sender/receiver clusters and currencies by
  XRP-denominated volume.

Run with:  python examples/xrp_value_flow.py
"""

from __future__ import annotations

from repro.analysis.clustering import AccountClusterer
from repro.analysis.flows import aggregate_value_flows
from repro.analysis.value import (
    ExchangeRateOracle,
    XrpValueAnalyzer,
    detect_self_dealing,
    iou_rate_table,
    rate_history,
)
from repro.common.records import iter_transactions
from repro.xrp.workload import (
    BITSTAMP_ISSUER,
    GATEHUB_ISSUER,
    LIQUID_LINKED_ISSUER,
    XrpWorkloadConfig,
    XrpWorkloadGenerator,
)


def main() -> None:
    config = XrpWorkloadConfig(
        start_date="2019-10-01",
        end_date="2020-01-01",
        transactions_per_day=800,
        ledgers_per_day=8,
        ordinary_account_count=120,
        spam_accounts_per_wave=40,
        seed=23,
    )
    print(f"Generating XRP ledger traffic {config.start_date} -> {config.end_date} ...")
    generator = XrpWorkloadGenerator(config)
    blocks = generator.generate()
    records = list(iter_transactions(blocks))
    print(f"  {len(blocks)} ledgers, {len(records)} transactions")

    oracle = ExchangeRateOracle.from_orderbook(generator.ledger.orderbook)
    analyzer = XrpValueAnalyzer(oracle)
    decomposition = analyzer.decompose(records)

    print("\nThroughput decomposition (Figure 7):")
    print(f"  failed transactions:         {decomposition.failed_share:.1%}")
    print(f"  successful payments:         {decomposition.payments}")
    print(f"    ... with value:            {decomposition.payments_with_value}"
          f"  (1 in {1 / max(decomposition.value_bearing_payment_fraction, 1e-9):.0f})")
    print(f"  successful offers:           {decomposition.offers}")
    print(f"    ... leading to exchange:   {decomposition.offers_exchanged}"
          f"  ({decomposition.offer_fill_fraction:.2%})")
    print(f"  economic-value share of all throughput: {decomposition.economic_value_share:.2%}")
    print(f"  failure codes: {analyzer.failure_code_distribution(records)}")

    print("\nBTC IOU exchange rates by issuer (Figure 11a):")
    rows = iou_rate_table(
        generator.ledger.orderbook,
        [
            ("BTC", BITSTAMP_ISSUER, "Bitstamp"),
            ("BTC", GATEHUB_ISSUER, "Gatehub Fifth"),
            ("BTC", LIQUID_LINKED_ISSUER, "rKRN... (Liquid-activated issuer)"),
            ("BTC", generator.spam_accounts[0] if generator.spam_accounts else "rSpam", "spam swarm account"),
        ],
    )
    for row in rows:
        label = "valueless" if row.is_valueless else f"{row.average_rate:,.0f} XRP"
        print(f"  {row.issuer_name:35s} {label}")

    history = rate_history(generator.ledger.orderbook, "BTC", LIQUID_LINKED_ISSUER)
    if history:
        print("\nSelf-dealt BTC IOU rate history (Figure 11b):")
        for timestamp, rate in history:
            print(f"  t={timestamp:,.0f}  {rate:,.1f} XRP per BTC IOU")
    findings = detect_self_dealing(records, generator.ledger.orderbook)
    print(f"  self-dealing findings: {len(findings)}"
          f" (buyer had received the IOU straight from its issuer)")

    print("\nValue flow between clusters (Figure 12):")
    clusterer = AccountClusterer(generator.ledger.accounts)
    flows = aggregate_value_flows(records, clusterer, oracle)
    print(f"  total value moved: {flows.total_xrp_value:,.0f} XRP-equivalent")
    print("  top sender clusters:")
    for name, value in flows.top_senders(5):
        print(f"    {name:28s} {value:>14,.0f} XRP  ({flows.sender_share(name):.1%})")
    print("  top receiver clusters:")
    for name, value in flows.top_receivers(5):
        print(f"    {name:28s} {value:>14,.0f} XRP")
    print("  currencies by XRP-denominated volume:")
    for currency, value in flows.top_currencies(5):
        face = flows.currency_face_value.get(currency, 0.0)
        print(f"    {currency:4s} {value:>14,.0f} XRP  (face value {face:,.0f} {currency})")


if __name__ == "__main__":
    main()
