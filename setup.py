"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (and the
plain ``pip install -e .`` fallback documented in the README) perform a
classic ``setup.py develop`` install instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
