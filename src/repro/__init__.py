"""repro: reproduction of "Revisiting Transactional Statistics of
High-scalability Blockchains" (Perez, Xu, Livshits -- IMC 2020).

The library is organised in four layers:

* chain substrates (:mod:`repro.eos`, :mod:`repro.tezos`, :mod:`repro.xrp`)
  simulate the three studied blockchains and generate calibrated workloads;
* the data-collection layer (:mod:`repro.collection`) crawls blocks from the
  simulated RPC endpoints, stores them gzip-compressed and characterises the
  dataset;
* the analysis layer (:mod:`repro.analysis`) classifies transactions and
  computes every table and figure in the paper's evaluation;
* scenario configurations (:mod:`repro.scenarios`) tie the three workloads
  together at test, benchmark and paper scale.
"""

from repro.common import BlockRecord, ChainId, TransactionRecord
from repro.scenarios import paper_scenario, small_scenario

__version__ = "1.0.0"

__all__ = [
    "BlockRecord",
    "ChainId",
    "TransactionRecord",
    "__version__",
    "paper_scenario",
    "small_scenario",
]
