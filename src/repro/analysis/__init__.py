"""Transaction analytics: the paper's core contribution.

The analysis package consumes the columnar transaction substrate
(:class:`~repro.common.columns.TxFrame`, built from the crawler's block
store or streamed straight out of a workload generator) and computes every
table and figure in the paper's evaluation.  Each module exposes its logic
as a single-pass :class:`~repro.analysis.engine.Accumulator`; the
:class:`~repro.analysis.engine.AnalysisEngine` fans any number of them out
over **one** iteration per chain, and every seed-era public function remains
available as a thin wrapper.

* :mod:`repro.analysis.engine` — the accumulator protocol and the
  single-pass engine.
* :mod:`repro.analysis.classify` — per-chain transaction-type distribution
  and category labelling (Figure 1, the EOS contract-category table).
* :mod:`repro.analysis.throughput` — time-binned throughput series and TPS
  (Figure 3, the headline 20 / 0.08 / 19 TPS numbers).
* :mod:`repro.analysis.accounts` — top receiver / sender / pair tables
  (Figures 4, 5, 6, 8).
* :mod:`repro.analysis.clustering` — XRP account clustering via usernames
  and activation parents (§3.3).
* :mod:`repro.analysis.washtrading` — WhaleEx wash-trade detection (§4.1).
* :mod:`repro.analysis.airdrop` — EIDOS boomerang detection and congestion
  impact (§4.1).
* :mod:`repro.analysis.governance` — Tezos amendment voting analysis
  (Figure 9, §4.2).
* :mod:`repro.analysis.value` — XRP value-transfer decomposition, exchange-
  rate oracle and zero-value detection (Figure 7, Figure 11, §4.3).
* :mod:`repro.analysis.flows` — value-flow aggregation between clusters and
  currencies (Figure 12).
* :mod:`repro.analysis.report` — the end-to-end summary report and the
  single-pass full figure set.
* :mod:`repro.analysis.parallel` — sharded multi-process execution: shards
  rehydrate in workers, accumulator states merge deterministically.
* :mod:`repro.analysis.legacy` — frozen seed implementations, kept only as
  the equivalence/benchmark baseline.
"""

from repro.analysis.accounts import top_receivers, top_senders, top_sender_receiver_pairs
from repro.analysis.classify import (
    classify_eos_category,
    type_distribution,
)
from repro.analysis.engine import (
    Accumulator,
    AnalysisEngine,
    EngineResult,
    TxStatsAccumulator,
    run_single_pass,
)
from repro.analysis.throughput import ThroughputSeries, bin_throughput, transactions_per_second
from repro.analysis.value import XrpValueAnalyzer
from repro.analysis.parallel import parallel_full_report, parallel_run, run_sharded
from repro.analysis.report import (
    build_summary_report,
    compute_chain_figures,
    figure_accumulators,
    full_report,
)

__all__ = [
    "Accumulator",
    "AnalysisEngine",
    "EngineResult",
    "ThroughputSeries",
    "TxStatsAccumulator",
    "XrpValueAnalyzer",
    "bin_throughput",
    "build_summary_report",
    "classify_eos_category",
    "compute_chain_figures",
    "figure_accumulators",
    "full_report",
    "parallel_full_report",
    "parallel_run",
    "run_sharded",
    "run_single_pass",
    "top_receivers",
    "top_sender_receiver_pairs",
    "top_senders",
    "transactions_per_second",
    "type_distribution",
]
