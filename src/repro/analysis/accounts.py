"""Top-account tables (Figures 4, 5, 6 and 8).

The paper characterises each chain's dominant traffic sources by ranking
accounts on the number of transactions they receive (EOS applications,
Figure 4), send (EOS and Tezos, Figures 5 and 6; XRP, Figure 8), and by the
sender → receiver pairs with the most traffic (Figure 5).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.records import TransactionRecord


@dataclass(frozen=True)
class AccountActivity:
    """Activity of one account with its per-type breakdown."""

    account: str
    total: int
    share_of_chain: float
    type_breakdown: Tuple[Tuple[str, int, float], ...]

    def top_type(self) -> Tuple[str, int, float]:
        return self.type_breakdown[0]


def _breakdown(counter: Counter) -> Tuple[Tuple[str, int, float], ...]:
    total = sum(counter.values())
    rows = [
        (name, count, count / total if total else 0.0)
        for name, count in counter.items()
    ]
    rows.sort(key=lambda item: (-item[1], item[0]))
    return tuple(rows)


def top_receivers(
    records: Iterable[TransactionRecord],
    limit: int = 10,
    key: Optional[Callable[[TransactionRecord], str]] = None,
) -> List[AccountActivity]:
    """Accounts ranked by received transactions, with action breakdown (Figure 4)."""
    key = key or (lambda record: record.receiver)
    per_account: Dict[str, Counter] = defaultdict(Counter)
    chain_total = 0
    for record in records:
        receiver = key(record)
        if not receiver:
            continue
        per_account[receiver][record.type] += 1
        chain_total += 1
    ranked = sorted(per_account.items(), key=lambda item: (-sum(item[1].values()), item[0]))
    result = []
    for account, counter in ranked[:limit]:
        total = sum(counter.values())
        result.append(
            AccountActivity(
                account=account,
                total=total,
                share_of_chain=total / chain_total if chain_total else 0.0,
                type_breakdown=_breakdown(counter),
            )
        )
    return result


def top_senders(
    records: Iterable[TransactionRecord],
    limit: int = 10,
    key: Optional[Callable[[TransactionRecord], str]] = None,
) -> List[AccountActivity]:
    """Accounts ranked by sent transactions, with type breakdown (Figure 8)."""
    key = key or (lambda record: record.sender)
    per_account: Dict[str, Counter] = defaultdict(Counter)
    chain_total = 0
    for record in records:
        sender = key(record)
        if not sender:
            continue
        per_account[sender][record.type] += 1
        chain_total += 1
    ranked = sorted(per_account.items(), key=lambda item: (-sum(item[1].values()), item[0]))
    result = []
    for account, counter in ranked[:limit]:
        total = sum(counter.values())
        result.append(
            AccountActivity(
                account=account,
                total=total,
                share_of_chain=total / chain_total if chain_total else 0.0,
                type_breakdown=_breakdown(counter),
            )
        )
    return result


@dataclass(frozen=True)
class SenderProfile:
    """One row of Figure 6: fan-out statistics of a top sender."""

    sender: str
    sent_count: int
    unique_receivers: int
    mean_per_receiver: float
    stdev_per_receiver: float
    top_receivers: Tuple[Tuple[str, int, float], ...]


def top_sender_receiver_pairs(
    records: Iterable[TransactionRecord],
    limit_senders: int = 5,
    limit_receivers_per_sender: int = 5,
) -> List[SenderProfile]:
    """Figure 5 / Figure 6: top senders with their receiver distribution.

    For each of the ``limit_senders`` most active senders the profile lists
    the top receivers (Figure 5's pair table) and the mean / standard
    deviation of transactions per unique receiver (Figure 6's fan-out
    statistics, which distinguish baker-payout patterns from airdrop-style
    one-transaction-per-receiver distributions).
    """
    per_sender: Dict[str, Counter] = defaultdict(Counter)
    for record in records:
        if not record.sender:
            continue
        per_sender[record.sender][record.receiver or "(none)"] += 1
    ranked = sorted(per_sender.items(), key=lambda item: (-sum(item[1].values()), item[0]))
    profiles: List[SenderProfile] = []
    for sender, counter in ranked[:limit_senders]:
        sent_count = sum(counter.values())
        counts = list(counter.values())
        unique = len(counts)
        mean = sent_count / unique if unique else 0.0
        variance = (
            sum((count - mean) ** 2 for count in counts) / unique if unique else 0.0
        )
        top = [
            (receiver, count, count / sent_count if sent_count else 0.0)
            for receiver, count in counter.most_common(limit_receivers_per_sender)
        ]
        profiles.append(
            SenderProfile(
                sender=sender,
                sent_count=sent_count,
                unique_receivers=unique,
                mean_per_receiver=mean,
                stdev_per_receiver=math.sqrt(variance),
                top_receivers=tuple(top),
            )
        )
    return profiles


def traffic_concentration(
    records: Iterable[TransactionRecord], top_n: int = 18
) -> float:
    """Share of all transactions sent by the ``top_n`` most active senders.

    The paper observes that the 18 most active XRP accounts are responsible
    for half of the total traffic (§3.3).
    """
    counter: Counter = Counter()
    total = 0
    for record in records:
        if not record.sender:
            continue
        counter[record.sender] += 1
        total += 1
    if total == 0:
        return 0.0
    top = sum(count for _, count in counter.most_common(top_n))
    return top / total


def transactions_per_account_distribution(
    records: Iterable[TransactionRecord],
) -> Dict[str, int]:
    """Number of transactions initiated per account (sender side)."""
    counter: Counter = Counter()
    for record in records:
        if record.sender:
            counter[record.sender] += 1
    return dict(counter)


def single_transaction_account_share(records: Iterable[TransactionRecord]) -> float:
    """Share of accounts that transacted exactly once in the window (§3.3)."""
    distribution = transactions_per_account_distribution(records)
    if not distribution:
        return 0.0
    singles = sum(1 for count in distribution.values() if count == 1)
    return singles / len(distribution)
