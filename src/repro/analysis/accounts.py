"""Top-account tables (Figures 4, 5, 6 and 8).

The paper characterises each chain's dominant traffic sources by ranking
accounts on the number of transactions they receive (EOS applications,
Figure 4), send (EOS and Tezos, Figures 5 and 6; XRP, Figure 8), and by the
sender → receiver pairs with the most traffic (Figure 5).

The rankings are accumulated in a single pass over the columnar frame:
account activity is counted per interned account code (an integer), and the
top-N tables — including the heap-style selection of the busiest accounts —
are assembled from the counts at finalisation time.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.common import kernels, statsmode
from repro.common.columns import FrameLike, TxFrame, as_frame
from repro.common.errors import AnalysisError
from repro.common.records import TransactionRecord
from repro.common.sketches import DEFAULT_HEAVY_HITTERS, SpaceSaving
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, gather
from repro.analysis.vectorized import (
    DENSE_KEYSPACE_MAX,
    block_columns,
    count_codes,
    dense_space,
    fold_dense,
)
from repro.common.statecodec import pack_code_table, restore_code_table

#: Scratch-tally entries a sketch-mode accumulator holds before folding the
#: scratch into its space-saving summary.  Folding is O(scratch), so a limit
#: of a few sketch capacities keeps the amortised per-key cost O(1) while
#: bounding live state at scratch + 2×capacity entries.
_SCRATCH_LIMIT = 3 * DEFAULT_HEAVY_HITTERS


class _HeavyHitterSupport:
    """Shared sketch-mode plumbing of the account accumulators.

    The exact kernels are untouched in sketch mode: every backend keeps
    folding blocks into its exact scratch ``Counter``, and the wrapper
    installed by :meth:`_bounded` drains the scratch into a
    :class:`~repro.common.sketches.SpaceSaving` summary whenever it exceeds
    :data:`_SCRATCH_LIMIT` (and at every observation point — merge, export,
    pickle, finalize).  Below the sketch capacity nothing is ever evicted,
    so sketch-mode figures are identical to exact mode on the paper
    workloads; beyond it, state stays bounded and every retained estimate
    carries its documented over-count error.

    Rows whose ranking account is the empty string are dropped at fold time
    (exact mode drops them at finalize), which keeps the summary's exact
    ``total`` equal to the chain total the share computations divide by.
    """

    def _configure_stats(
        self, stats: Optional[str], capacity: int = DEFAULT_HEAVY_HITTERS
    ) -> None:
        self.stats_mode = statsmode.resolve(stats)
        self.capacity = capacity

    def _stats_signature(self) -> tuple:
        # Exact mode keeps the historical signature, so pre-sketch
        # checkpoints stay restorable.
        if self.stats_mode != statsmode.SKETCH:
            return ()
        return (("sketch", "ss", self.capacity),)

    def _bind_sketch(self, frame: TxFrame, scratch, tuple_keys: bool) -> None:
        """Reset sketch-side state at bind time (no-op in exact mode)."""
        if self.stats_mode != statsmode.SKETCH:
            self._sketch: Optional[SpaceSaving] = None
            return
        self._sketch = SpaceSaving(self.capacity)
        self._scratch = scratch
        self._tuple_keys = tuple_keys
        empty = frame.accounts.code("")
        self._empty_code = -1 if empty is None else empty

    def _bounded(self, consume):
        """Wrap a step/consume callable with the scratch-limit fold."""
        sketch = self._sketch
        if sketch is None:
            return consume
        scratch = self._scratch
        fold = self._fold_scratch

        def consume_bounded(rows) -> None:
            consume(rows)
            if len(scratch) > _SCRATCH_LIMIT:
                fold()

        return consume_bounded

    def _fold_scratch(self) -> None:
        scratch = self._scratch
        if not scratch:
            return
        add = self._sketch.add
        empty = self._empty_code
        if self._tuple_keys:
            for key, count in scratch.items():
                if key[0] != empty:
                    add(key, count)
        else:
            for key, count in scratch.items():
                if key != empty:
                    add(key, count)
        scratch.clear()

    def _drain(self) -> None:
        """Flush every pending exact tally into the sketch."""
        flush_dense = getattr(self, "_flush_dense", None)
        if flush_dense is not None:
            flush_dense()
        self._fold_scratch()

    def _check_merge_mode(self, other) -> None:
        if self.stats_mode != other.stats_mode:
            raise AnalysisError(
                f"cannot merge {other.stats_mode!r}-mode {self.name} state "
                f"into an {self.stats_mode!r}-mode accumulator"
            )

    def _export_sketch(self) -> Dict:
        self._drain()
        return {"ss": self._sketch.export_state()}

    def _restore_sketch(self, payload: Dict) -> None:
        if "ss" not in payload:
            raise AnalysisError(
                f"{self.name} payload has exact-mode state; sketch-mode "
                "restore requires a rescan"
            )
        self._sketch.restore_state(payload["ss"])

    def _reject_sketch_payload(self, payload: Dict) -> None:
        if "ss" in payload:
            raise AnalysisError(
                f"{self.name} payload has sketch-mode state; exact-mode "
                "restore requires a rescan"
            )


@dataclass(frozen=True)
class AccountActivity:
    """Activity of one account with its per-type breakdown."""

    account: str
    total: int
    share_of_chain: float
    type_breakdown: Tuple[Tuple[str, int, float], ...]

    def top_type(self) -> Tuple[str, int, float]:
        return self.type_breakdown[0]


def _breakdown(counter: Counter) -> Tuple[Tuple[str, int, float], ...]:
    total = sum(counter.values())
    rows = [
        (name, count, count / total if total else 0.0)
        for name, count in counter.items()
    ]
    rows.sort(key=lambda item: (-item[1], item[0]))
    return tuple(rows)


class AccountActivityAccumulator(_HeavyHitterSupport, Accumulator):
    """Single-pass account ranking with per-type breakdowns.

    ``side`` selects the sender or receiver column.  Counts are kept per
    (account code → type code) so the hot loop never touches a string; the
    ``limit`` busiest accounts are selected with a heap at finalise time.
    In sketch mode the unbounded pair tally becomes a space-saving summary
    (see :class:`_HeavyHitterSupport`).
    """

    def __init__(
        self, side: str = "sender", limit: int = 10, stats: Optional[str] = None
    ):
        if side not in ("sender", "receiver"):
            raise ValueError("side must be 'sender' or 'receiver'")
        self.side = side
        self.limit = limit
        self.name = f"top_{side}s"
        self._configure_stats(stats)

    def bind(self, frame: TxFrame) -> Step:
        self._frame = frame
        counts = self._pair_counts = Counter()
        self._dense = None
        self._bind_sketch(frame, counts, tuple_keys=True)
        codes = frame.sender_code if self.side == "sender" else frame.receiver_code
        type_codes = frame.type_code

        def step(row: int) -> None:
            counts[(codes[row], type_codes[row])] += 1

        return self._bounded(step)

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        self._frame = frame
        counts = self._pair_counts = Counter()
        self._dense = None
        self._bind_sketch(frame, counts, tuple_keys=True)
        codes = frame.sender_code if self.side == "sender" else frame.receiver_code
        type_codes = frame.type_code

        def consume(rows: RowIndices) -> None:
            counts.update(zip(gather(codes, rows), gather(type_codes, rows)))

        return self._bounded(consume)

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: (account, type) dense packed-code histogram.

        The hot loop is one ``np.bincount`` accumulated into a per-bind
        ``int64`` vector — no Counter, no ``np.unique`` sort, no per-key
        Python work until the state is first observed (merge, export,
        pickle or finalize), when :meth:`_flush_dense` materialises the
        Counter.  The dense kernel is licensed here because
        :meth:`finalize` is insertion-order independent (type breakdowns
        sort by count/name, accounts heap-select with name tie-breaks);
        key spaces too large for a dense vector fall back to the
        first-seen-ordered :func:`~repro.analysis.vectorized.count_codes`
        path.
        """
        self._frame = frame
        counts = self._pair_counts = Counter()
        self._dense = None
        self._bind_sketch(frame, counts, tuple_keys=True)
        codes = frame.ndarray(
            "sender_code" if self.side == "sender" else "receiver_code"
        )
        type_codes = frame.ndarray("type_code")
        sizes = (len(frame.accounts), len(frame.types))
        space = dense_space(sizes)
        if space > DENSE_KEYSPACE_MAX:

            def consume(rows: RowIndices) -> None:
                if not len(rows):
                    return
                count_codes(counts, block_columns(rows, codes, type_codes), sizes)

            return self._bounded(consume)

        np = kernels.numpy_module()
        dense = np.zeros(space, dtype=np.int64)
        self._dense = (dense, sizes)
        radix = max(len(frame.types), 1)

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            account_block, type_block = block_columns(rows, codes, type_codes)
            block = np.bincount(account_block.astype(np.int64) * radix + type_block)
            dense[: len(block)] += block

        return consume

    def _flush_dense(self) -> None:
        """Fold any pending dense histogram into the Counter state."""
        pending = getattr(self, "_dense", None)
        if pending is None:
            return
        self._dense = None
        fold_dense(self._pair_counts, pending[0], pending[1])

    def merge(self, other: "AccountActivityAccumulator") -> None:
        self._check_merge_mode(other)
        if self._sketch is not None:
            self._drain()
            other._drain()
            self._sketch.merge(other._sketch)
            return
        self._flush_dense()
        other._flush_dense()
        self._pair_counts.update(other._pair_counts)

    def export_state(self) -> Dict:
        if self._sketch is not None:
            return self._export_sketch()
        self._flush_dense()
        return {"pairs": pack_code_table(self._pair_counts, 2)}

    def __getstate__(self) -> Dict:
        # Scanned-state pickling ships the Counter, never the dense vector.
        self._flush_dense()
        return super().__getstate__()

    def restore_state(self, payload: Dict) -> None:
        if self._sketch is not None:
            self._restore_sketch(payload)
            return
        self._reject_sketch_payload(payload)
        restore_code_table(self._pair_counts, payload["pairs"])

    def config_signature(self) -> tuple:
        return (
            type(self).__qualname__,
            self.name,
            self.side,
            self.limit,
        ) + self._stats_signature()

    def finalize(self) -> List[AccountActivity]:
        self._flush_dense()
        frame = self._frame
        account_values = frame.accounts.values
        type_values = frame.types.values
        empty = frame.accounts.code("")
        # Group the (account, type) pair counts per account; Counter iteration
        # order is first-seen order, so each account's types keep row order.
        per_account: Dict[int, Dict[int, int]] = {}
        chain_total = 0
        if self._sketch is not None:
            # Sketch mode: empty-account rows were dropped at fold time, so
            # the summary's exact total *is* the chain total; the estimates
            # keep first-seen order below capacity.
            self._fold_scratch()
            pair_items = self._sketch.counts().items()
            chain_total = self._sketch.total
            for (account_code, type_code), count in pair_items:
                counter = per_account.get(account_code)
                if counter is None:
                    counter = per_account[account_code] = {}
                counter[type_code] = counter.get(type_code, 0) + count
        else:
            for (account_code, type_code), count in self._pair_counts.items():
                if account_code == empty:
                    continue
                counter = per_account.get(account_code)
                if counter is None:
                    counter = per_account[account_code] = {}
                counter[type_code] = counter.get(type_code, 0) + count
                chain_total += count
        # Heap-select the busiest accounts (ties broken by name, ascending,
        # matching the seed's full sort); only the winners get materialised.
        ranked = heapq.nsmallest(
            self.limit,
            per_account.items(),
            key=lambda item: (-sum(item[1].values()), account_values[item[0]]),
        )
        result = []
        for account_code, counts in ranked:
            total = sum(counts.values())
            counter = Counter(
                {type_values[code]: count for code, count in counts.items()}
            )
            result.append(
                AccountActivity(
                    account=account_values[account_code],
                    total=total,
                    share_of_chain=total / chain_total if chain_total else 0.0,
                    type_breakdown=_breakdown(counter),
                )
            )
        return result


def _top_accounts_by_key(
    records: Iterable[TransactionRecord],
    limit: int,
    key: Callable[[TransactionRecord], str],
) -> List[AccountActivity]:
    """Record-level fallback for callers ranking by a custom key function."""
    per_account: Dict[str, Counter] = defaultdict(Counter)
    chain_total = 0
    for record in records:
        account = key(record)
        if not account:
            continue
        per_account[account][record.type] += 1
        chain_total += 1
    ranked = sorted(per_account.items(), key=lambda item: (-sum(item[1].values()), item[0]))
    result = []
    for account, counter in ranked[:limit]:
        total = sum(counter.values())
        result.append(
            AccountActivity(
                account=account,
                total=total,
                share_of_chain=total / chain_total if chain_total else 0.0,
                type_breakdown=_breakdown(counter),
            )
        )
    return result


def top_receivers(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    limit: int = 10,
    key: Optional[Callable[[TransactionRecord], str]] = None,
) -> List[AccountActivity]:
    """Accounts ranked by received transactions, with action breakdown (Figure 4)."""
    if key is not None:
        # Custom keys need the materialised record; frames iterate as records.
        return _top_accounts_by_key(records, limit, key)
    return AccountActivityAccumulator("receiver", limit).run(as_frame(records))


def top_senders(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    limit: int = 10,
    key: Optional[Callable[[TransactionRecord], str]] = None,
) -> List[AccountActivity]:
    """Accounts ranked by sent transactions, with type breakdown (Figure 8)."""
    if key is not None:
        # Custom keys need the materialised record; frames iterate as records.
        return _top_accounts_by_key(records, limit, key)
    return AccountActivityAccumulator("sender", limit).run(as_frame(records))


@dataclass(frozen=True)
class SenderProfile:
    """One row of Figure 6: fan-out statistics of a top sender."""

    sender: str
    sent_count: int
    unique_receivers: int
    mean_per_receiver: float
    stdev_per_receiver: float
    top_receivers: Tuple[Tuple[str, int, float], ...]


class SenderReceiverPairsAccumulator(_HeavyHitterSupport, Accumulator):
    """Single-pass Figure 5/6 profiles: top senders and their receiver fan-out."""

    name = "top_sender_receiver_pairs"

    def __init__(
        self,
        limit_senders: int = 5,
        limit_receivers_per_sender: int = 5,
        stats: Optional[str] = None,
    ):
        self.limit_senders = limit_senders
        self.limit_receivers_per_sender = limit_receivers_per_sender
        self._configure_stats(stats)

    def bind(self, frame: TxFrame) -> Step:
        self._frame = frame
        counts = self._pair_counts = Counter()
        self._bind_sketch(frame, counts, tuple_keys=True)
        sender_codes = frame.sender_code
        receiver_codes = frame.receiver_code

        def step(row: int) -> None:
            counts[(sender_codes[row], receiver_codes[row])] += 1

        return self._bounded(step)

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        self._frame = frame
        counts = self._pair_counts = Counter()
        self._bind_sketch(frame, counts, tuple_keys=True)
        sender_codes = frame.sender_code
        receiver_codes = frame.receiver_code

        def consume(rows: RowIndices) -> None:
            counts.update(zip(gather(sender_codes, rows), gather(receiver_codes, rows)))

        return self._bounded(consume)

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: (sender, receiver) packed-code histogram.

        First-seen replay matters here: ``finalize`` breaks equal-count
        receiver ties by ``Counter.most_common`` insertion order.
        """
        self._frame = frame
        counts = self._pair_counts = Counter()
        self._bind_sketch(frame, counts, tuple_keys=True)
        sender_codes = frame.ndarray("sender_code")
        receiver_codes = frame.ndarray("receiver_code")
        sizes = (len(frame.accounts), len(frame.accounts))

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            count_codes(
                counts, block_columns(rows, sender_codes, receiver_codes), sizes
            )

        return self._bounded(consume)

    def merge(self, other: "SenderReceiverPairsAccumulator") -> None:
        self._check_merge_mode(other)
        if self._sketch is not None:
            self._drain()
            other._drain()
            self._sketch.merge(other._sketch)
            return
        self._pair_counts.update(other._pair_counts)

    def export_state(self) -> Dict:
        if self._sketch is not None:
            return self._export_sketch()
        return {"pairs": pack_code_table(self._pair_counts, 2)}

    def restore_state(self, payload: Dict) -> None:
        if self._sketch is not None:
            self._restore_sketch(payload)
            return
        self._reject_sketch_payload(payload)
        restore_code_table(self._pair_counts, payload["pairs"])

    def config_signature(self) -> tuple:
        return (
            type(self).__qualname__,
            self.name,
            self.limit_senders,
            self.limit_receivers_per_sender,
        ) + self._stats_signature()

    def finalize(self) -> List[SenderProfile]:
        frame = self._frame
        account_values = frame.accounts.values
        empty = frame.accounts.code("")
        per_sender: Dict[int, Dict[int, int]] = {}
        if self._sketch is not None:
            # Empty-sender rows were dropped at fold time; estimates keep
            # first-seen order below capacity (the most_common tie-breaks).
            self._fold_scratch()
            pair_items = self._sketch.counts().items()
        else:
            pair_items = self._pair_counts.items()
        for (sender_code, receiver_code), count in pair_items:
            if sender_code == empty:
                continue
            counter = per_sender.get(sender_code)
            if counter is None:
                counter = per_sender[sender_code] = {}
            counter[receiver_code] = counter.get(receiver_code, 0) + count
        ranked = heapq.nsmallest(
            self.limit_senders,
            per_sender.items(),
            key=lambda item: (-sum(item[1].values()), account_values[item[0]]),
        )
        profiles: List[SenderProfile] = []
        for sender_code, counts in ranked:
            counter = Counter(
                {
                    ("(none)" if code == empty else account_values[code]): count
                    for code, count in counts.items()
                }
            )
            sent_count = sum(counter.values())
            values = list(counter.values())
            unique = len(values)
            mean = sent_count / unique if unique else 0.0
            variance = (
                sum((count - mean) ** 2 for count in values) / unique if unique else 0.0
            )
            top = [
                (receiver, count, count / sent_count if sent_count else 0.0)
                for receiver, count in counter.most_common(self.limit_receivers_per_sender)
            ]
            profiles.append(
                SenderProfile(
                    sender=account_values[sender_code],
                    sent_count=sent_count,
                    unique_receivers=unique,
                    mean_per_receiver=mean,
                    stdev_per_receiver=math.sqrt(variance),
                    top_receivers=tuple(top),
                )
            )
        return profiles


def top_sender_receiver_pairs(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    limit_senders: int = 5,
    limit_receivers_per_sender: int = 5,
) -> List[SenderProfile]:
    """Figure 5 / Figure 6: top senders with their receiver distribution.

    For each of the ``limit_senders`` most active senders the profile lists
    the top receivers (Figure 5's pair table) and the mean / standard
    deviation of transactions per unique receiver (Figure 6's fan-out
    statistics, which distinguish baker-payout patterns from airdrop-style
    one-transaction-per-receiver distributions).
    """
    accumulator = SenderReceiverPairsAccumulator(limit_senders, limit_receivers_per_sender)
    return accumulator.run(as_frame(records))


class SenderCountsAccumulator(_HeavyHitterSupport, Accumulator):
    """Single-pass per-sender transaction counts (§3.3 statistics)."""

    name = "sender_counts"

    def __init__(self, stats: Optional[str] = None):
        self._configure_stats(stats)

    def bind(self, frame: TxFrame) -> Step:
        self._frame = frame
        counts = self._counts = Counter()
        self._bind_sketch(frame, counts, tuple_keys=False)
        sender_codes = frame.sender_code

        def step(row: int) -> None:
            counts[sender_codes[row]] += 1

        return self._bounded(step)

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        self._frame = frame
        counts = self._counts = Counter()
        self._bind_sketch(frame, counts, tuple_keys=False)
        sender_codes = frame.sender_code

        def consume(rows: RowIndices) -> None:
            counts.update(gather(sender_codes, rows))

        return self._bounded(consume)

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: per-sender histogram via one unique per block."""
        self._frame = frame
        counts = self._counts = Counter()
        self._bind_sketch(frame, counts, tuple_keys=False)
        sender_codes = frame.ndarray("sender_code")

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            count_codes(counts, block_columns(rows, sender_codes), (len(frame.accounts),))

        return self._bounded(consume)

    def merge(self, other: "SenderCountsAccumulator") -> None:
        self._check_merge_mode(other)
        if self._sketch is not None:
            self._drain()
            other._drain()
            self._sketch.merge(other._sketch)
            return
        self._counts.update(other._counts)

    def export_state(self) -> Dict:
        if self._sketch is not None:
            return self._export_sketch()
        return {"counts": pack_code_table(self._counts, 1)}

    def restore_state(self, payload: Dict) -> None:
        if self._sketch is not None:
            self._restore_sketch(payload)
            return
        self._reject_sketch_payload(payload)
        restore_code_table(self._counts, payload["counts"])

    def config_signature(self) -> tuple:
        return (type(self).__qualname__, self.name) + self._stats_signature()

    def finalize(self) -> Dict[str, int]:
        account_values = self._frame.accounts.values
        empty = self._frame.accounts.code("")
        if self._sketch is not None:
            # Empty senders were dropped at fold time.
            self._fold_scratch()
            return {
                account_values[code]: count
                for code, count in self._sketch.counts().items()
            }
        return {
            account_values[code]: count
            for code, count in self._counts.items()
            if code != empty
        }


def traffic_concentration(
    records: Union[FrameLike, Iterable[TransactionRecord]], top_n: int = 18
) -> float:
    """Share of all transactions sent by the ``top_n`` most active senders.

    The paper observes that the 18 most active XRP accounts are responsible
    for half of the total traffic (§3.3).
    """
    distribution = SenderCountsAccumulator().run(as_frame(records))
    total = sum(distribution.values())
    if total == 0:
        return 0.0
    top = sum(heapq.nlargest(top_n, distribution.values()))
    return top / total


def transactions_per_account_distribution(
    records: Union[FrameLike, Iterable[TransactionRecord]],
) -> Dict[str, int]:
    """Number of transactions initiated per account (sender side)."""
    return SenderCountsAccumulator().run(as_frame(records))


def single_transaction_account_share(
    records: Union[FrameLike, Iterable[TransactionRecord]]
) -> float:
    """Share of accounts that transacted exactly once in the window (§3.3)."""
    distribution = SenderCountsAccumulator().run(as_frame(records))
    if not distribution:
        return 0.0
    singles = sum(1 for count in distribution.values() if count == 1)
    return singles / len(distribution)
