"""EIDOS airdrop / boomerang-transaction analysis (§4.1).

The EIDOS token distribution turns every claim into a "boomerang": the
claimer transfers EOS to the contract, which immediately transfers the same
amount back and grants EIDOS tokens.  After the launch on 2019-11-01 these
claims multiplied the chain's traffic by more than an order of magnitude,
pushed the network into congestion mode and made the market price of CPU
spike.  The analyzer detects boomerang claims in the record stream, measures
their share of post-launch traffic, and summarises the congestion impact
from the resource-market history.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.clock import timestamp_from_iso
from repro.common.records import ChainId, TransactionRecord
from repro.eos.resources import CongestionSample

#: Account hosting the EIDOS airdrop contract in the simulated workload.
EIDOS_CONTRACT = "eidosonecoin"


@dataclass(frozen=True)
class BoomerangClaim:
    """One detected EIDOS claim (deposit + refund within one transaction)."""

    transaction_id: str
    claimer: str
    timestamp: float
    eos_amount: float
    eidos_granted: float


@dataclass(frozen=True)
class AirdropReport:
    """Findings of the EIDOS airdrop case study."""

    launch_timestamp: float
    claim_count: int
    total_actions: int
    post_launch_actions: int
    boomerang_action_share_post_launch: float
    traffic_multiplier: float
    unique_claimers: int

    @property
    def dominates_post_launch_traffic(self) -> bool:
        """The paper's 95 % headline: claims dominate post-launch traffic."""
        return self.boomerang_action_share_post_launch >= 0.5


def detect_boomerang_claims(
    records: Iterable[TransactionRecord], contract: str = EIDOS_CONTRACT
) -> List[BoomerangClaim]:
    """Find transactions whose EOS leaves and returns within the same transaction.

    A claim is a transaction that (1) transfers EOS from an account to the
    airdrop contract, (2) transfers the same EOS amount straight back, and
    (3) grants the claimer some amount of the airdropped token.
    """
    by_transaction: Dict[str, List[TransactionRecord]] = defaultdict(list)
    for record in records:
        if record.chain is ChainId.EOS and record.type == "transfer":
            by_transaction[record.transaction_id].append(record)
    claims: List[BoomerangClaim] = []
    for transaction_id, group in by_transaction.items():
        deposits = [
            record
            for record in group
            if record.metadata.get("transfer_to") == contract and record.sender != contract
        ]
        refunds = [
            record
            for record in group
            if record.sender == contract
            and record.currency == "EOS"
            and record.metadata.get("inline")
        ]
        grants = [
            record
            for record in group
            if record.sender == contract and record.currency not in ("", "EOS")
        ]
        if not deposits or not refunds:
            continue
        deposit = deposits[0]
        refund = refunds[0]
        if abs(deposit.amount - refund.amount) > 1e-9:
            continue
        claims.append(
            BoomerangClaim(
                transaction_id=transaction_id,
                claimer=deposit.sender,
                timestamp=deposit.timestamp,
                eos_amount=deposit.amount,
                eidos_granted=grants[0].amount if grants else 0.0,
            )
        )
    return claims


def analyze_airdrop(
    records: Iterable[TransactionRecord],
    launch_date: str = "2019-11-01",
    contract: str = EIDOS_CONTRACT,
) -> AirdropReport:
    """Compute the §4.1 airdrop statistics from an EOS record stream."""
    materialized = [record for record in records if record.chain is ChainId.EOS]
    launch_timestamp = timestamp_from_iso(launch_date)
    claims = detect_boomerang_claims(materialized, contract)
    claim_action_ids = set()
    for claim in claims:
        claim_action_ids.add(claim.transaction_id)
    post_launch = [record for record in materialized if record.timestamp >= launch_timestamp]
    pre_launch = [record for record in materialized if record.timestamp < launch_timestamp]
    post_launch_claim_actions = sum(
        1 for record in post_launch if record.transaction_id in claim_action_ids
    )
    # Traffic multiplier: average actions per second after vs before launch.
    def rate(records_subset: Sequence[TransactionRecord]) -> float:
        if not records_subset:
            return 0.0
        timestamps = [record.timestamp for record in records_subset]
        duration = max(timestamps) - min(timestamps)
        if duration <= 0:
            return float(len(records_subset))
        return len(records_subset) / duration

    pre_rate = rate(pre_launch)
    post_rate = rate(post_launch)
    multiplier = post_rate / pre_rate if pre_rate > 0 else float("inf")
    return AirdropReport(
        launch_timestamp=launch_timestamp,
        claim_count=len(claims),
        total_actions=len(materialized),
        post_launch_actions=len(post_launch),
        boomerang_action_share_post_launch=(
            post_launch_claim_actions / len(post_launch) if post_launch else 0.0
        ),
        traffic_multiplier=multiplier,
        unique_claimers=len({claim.claimer for claim in claims}),
    )


@dataclass(frozen=True)
class CongestionReport:
    """Congestion-mode impact of the airdrop on the resource market."""

    samples: int
    congested_samples: int
    congested_share: float
    peak_cpu_price: float
    baseline_cpu_price: float

    @property
    def cpu_price_increase(self) -> float:
        """Peak price relative to baseline (the paper reports a 10,000 % spike)."""
        if self.baseline_cpu_price <= 0:
            return float("inf")
        return self.peak_cpu_price / self.baseline_cpu_price


def analyze_congestion(
    history: Sequence[CongestionSample], launch_timestamp: float
) -> CongestionReport:
    """Summarise the resource-market history around the airdrop launch."""
    if not history:
        return CongestionReport(0, 0, 0.0, 0.0, 0.0)
    before = [sample for sample in history if sample.timestamp < launch_timestamp]
    after = [sample for sample in history if sample.timestamp >= launch_timestamp]
    baseline = (
        sum(sample.cpu_price for sample in before) / len(before) if before else 0.0
    )
    peak = max((sample.cpu_price for sample in after), default=0.0)
    congested = sum(1 for sample in after if sample.congested)
    return CongestionReport(
        samples=len(history),
        congested_samples=congested,
        congested_share=congested / len(after) if after else 0.0,
        peak_cpu_price=peak,
        baseline_cpu_price=baseline,
    )
