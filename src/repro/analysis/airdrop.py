"""EIDOS airdrop / boomerang-transaction analysis (§4.1).

The EIDOS token distribution turns every claim into a "boomerang": the
claimer transfers EOS to the contract, which immediately transfers the same
amount back and grants EIDOS tokens.  After the launch on 2019-11-01 these
claims multiplied the chain's traffic by more than an order of magnitude,
pushed the network into congestion mode and made the market price of CPU
spike.  The analyzer detects boomerang claims in the record stream, measures
their share of post-launch traffic, and summarises the congestion impact
from the resource-market history.

Detection is a single-pass accumulator: the pass collects lightweight
per-transfer tuples grouped by transaction id plus the pre/post-launch rate
statistics; claim matching runs over the grouped tuples at finalise time.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common import kernels
from repro.common.clock import timestamp_from_iso
from repro.common.columns import CHAIN_CODES, FrameLike, TxFrame, as_frame
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, gather
from repro.analysis.vectorized import block_columns, matched_rows
from repro.common.statecodec import pack_str_table, pack_strings, restore_str_table, unpack_strings
from repro.eos.resources import CongestionSample

#: Account hosting the EIDOS airdrop contract in the simulated workload.
EIDOS_CONTRACT = "eidosonecoin"


@dataclass(frozen=True)
class BoomerangClaim:
    """One detected EIDOS claim (deposit + refund within one transaction)."""

    transaction_id: str
    claimer: str
    timestamp: float
    eos_amount: float
    eidos_granted: float


@dataclass(frozen=True)
class AirdropReport:
    """Findings of the EIDOS airdrop case study."""

    launch_timestamp: float
    claim_count: int
    total_actions: int
    post_launch_actions: int
    boomerang_action_share_post_launch: float
    traffic_multiplier: float
    unique_claimers: int

    @property
    def dominates_post_launch_traffic(self) -> bool:
        """The paper's 95 % headline: claims dominate post-launch traffic."""
        return self.boomerang_action_share_post_launch >= 0.5


#: Lightweight per-transfer tuple collected during the pass:
#: (sender, amount, timestamp, currency, is_deposit_to_contract, is_inline).
_TransferLite = Tuple[str, float, float, str, bool, bool]


def _claims_from_groups(
    groups: Dict[str, List[_TransferLite]], contract: str
) -> List[BoomerangClaim]:
    """Match deposit+refund(+grant) patterns inside grouped transfers."""
    claims: List[BoomerangClaim] = []
    for transaction_id, group in groups.items():
        deposit = refund = grant = None
        for sender, amount, timestamp, currency, to_contract, inline in group:
            if deposit is None and to_contract and sender != contract:
                deposit = (sender, amount, timestamp)
            if sender == contract:
                if refund is None and currency == "EOS" and inline:
                    refund = amount
                if grant is None and currency not in ("", "EOS"):
                    grant = amount
        if deposit is None or refund is None:
            continue
        if abs(deposit[1] - refund) > 1e-9:
            continue
        claims.append(
            BoomerangClaim(
                transaction_id=transaction_id,
                claimer=deposit[0],
                timestamp=deposit[2],
                eos_amount=deposit[1],
                eidos_granted=grant if grant is not None else 0.0,
            )
        )
    return claims


class BoomerangClaimsAccumulator(Accumulator):
    """Single-pass collection of EIDOS boomerang claims."""

    name = "boomerang_claims"

    def __init__(self, contract: str = EIDOS_CONTRACT):
        self.contract = contract

    def bind(self, frame: TxFrame) -> Step:
        groups = self._groups = defaultdict(list)
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        sender_codes = frame.sender_code
        amounts = frame.amount
        timestamps = frame.timestamp
        currency_codes = frame.currency_code
        metadata = frame.metadata
        transaction_ids = frame.transaction_id
        account_values = frame.accounts.values
        currency_values = frame.currencies.values
        eos = CHAIN_CODES[ChainId.EOS]
        transfer_code = frame.types.code("transfer")
        contract = self.contract

        if transfer_code is None:
            def step(row: int) -> None:  # no transfers at all in this frame
                return
            return step

        def step(row: int) -> None:
            if chain_codes[row] != eos or type_codes[row] != transfer_code:
                return
            meta = metadata[row]
            groups[transaction_ids[row]].append(
                (
                    account_values[sender_codes[row]],
                    amounts[row],
                    timestamps[row],
                    currency_values[currency_codes[row]],
                    bool(meta) and meta.get("transfer_to") == contract,
                    bool(meta) and bool(meta.get("inline")),
                )
            )

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        step = self.bind(frame)
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        eos = CHAIN_CODES[ChainId.EOS]
        transfer_code = frame.types.code("transfer")
        if transfer_code is None:
            return lambda rows: None

        def consume(rows: RowIndices) -> None:
            for row, chain, type_code in zip(
                rows, gather(chain_codes, rows), gather(type_codes, rows)
            ):
                if chain == eos and type_code == transfer_code:
                    step(row)

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Boolean-mask kernel: only EOS transfer rows pay the grouping."""
        step = self.bind(frame)
        transfer_code = frame.types.code("transfer")
        if transfer_code is None:
            return lambda rows: None
        chain_codes = frame.ndarray("chain_code")
        type_codes = frame.ndarray("type_code")
        eos = CHAIN_CODES[ChainId.EOS]

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            chain, types = block_columns(rows, chain_codes, type_codes)
            mask = (chain == eos) & (types == transfer_code)
            if not mask.any():
                return
            for row in matched_rows(rows, mask).tolist():
                step(row)

        return consume

    def config_signature(self) -> tuple:
        return (type(self).__qualname__, self.name, self.contract)

    def merge(self, other: "BoomerangClaimsAccumulator") -> None:
        groups = self._groups
        for transaction_id, transfers in other._groups.items():
            groups[transaction_id].extend(transfers)

    def export_state(self) -> Dict:
        """Flatten the per-transaction transfer groups into parallel columns.

        Transfers are stored in group order with per-group lengths, so the
        restore rebuilds every group's transfer order — which the claim
        matching in :func:`_claims_from_groups` depends on.
        """
        groups = self._groups
        flat = [transfer for transfers in groups.values() for transfer in transfers]
        if flat:
            senders, amounts, timestamps, currencies, deposits, inlines = zip(*flat)
        else:
            senders = amounts = timestamps = currencies = deposits = inlines = ()
        return {
            "groups": {
                "ids": pack_strings(groups.keys()),
                "sizes": array("q", map(len, groups.values())),
                "senders": pack_strings(list(senders)),
                "amounts": array("d", amounts),
                "timestamps": array("d", timestamps),
                "currencies": pack_strings(list(currencies)),
                "deposits": array("b", deposits),
                "inlines": array("b", inlines),
            }
        }

    def restore_state(self, payload: Dict) -> None:
        table = payload["groups"]
        transfers = list(
            zip(
                unpack_strings(table["senders"]),
                table["amounts"],
                table["timestamps"],
                unpack_strings(table["currencies"]),
                map(bool, table["deposits"]),
                map(bool, table["inlines"]),
            )
        )
        groups = self._groups
        position = 0
        for transaction_id, size in zip(unpack_strings(table["ids"]), table["sizes"]):
            chunk = transfers[position : position + size]
            position += size
            existing = groups.get(transaction_id)
            if existing is None:
                groups[transaction_id] = chunk
            else:
                existing.extend(chunk)

    def finalize(self) -> List[BoomerangClaim]:
        return _claims_from_groups(self._groups, self.contract)


class AirdropAccumulator(BoomerangClaimsAccumulator):
    """Single-pass §4.1 airdrop statistics (claims + traffic multiplier)."""

    name = "airdrop"

    def __init__(self, launch_date: str = "2019-11-01", contract: str = EIDOS_CONTRACT):
        super().__init__(contract)
        self.launch_timestamp = timestamp_from_iso(launch_date)

    def bind(self, frame: TxFrame) -> Step:
        inner = super().bind(frame)
        # [count, min_ts, max_ts] for the pre- and post-launch EOS slices.
        pre = self._pre = [0, None, None]
        post = self._post = [0, None, None]
        # Post-launch rows of *any* type per transaction id: a claim
        # transaction may carry non-transfer actions, and the paper's share
        # counts those rows too.
        post_counts = self._post_counts = {}
        chain_codes = frame.chain_code
        timestamps = frame.timestamp
        transaction_ids = frame.transaction_id
        eos = CHAIN_CODES[ChainId.EOS]
        launch = self.launch_timestamp

        def step(row: int) -> None:
            if chain_codes[row] != eos:
                return
            timestamp = timestamps[row]
            if timestamp >= launch:
                side = post
                transaction_id = transaction_ids[row]
                post_counts[transaction_id] = post_counts.get(transaction_id, 0) + 1
            else:
                side = pre
            side[0] += 1
            if side[1] is None:
                side[1] = side[2] = timestamp
            elif timestamp < side[1]:
                side[1] = timestamp
            elif timestamp > side[2]:
                side[2] = timestamp
            inner(row)

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        # The pre/post-launch statistics cover every EOS row, so this cannot
        # reuse the parent's transfers-only pre-filter.
        inner = BoomerangClaimsAccumulator.bind(self, frame)
        pre = self._pre = [0, None, None]
        post = self._post = [0, None, None]
        post_counts = self._post_counts = {}
        chain_codes = frame.chain_code
        timestamps = frame.timestamp
        type_codes = frame.type_code
        transaction_ids = frame.transaction_id
        eos = CHAIN_CODES[ChainId.EOS]
        transfer_code = frame.types.code("transfer")
        launch = self.launch_timestamp

        def consume(rows: RowIndices) -> None:
            for row, chain, timestamp, type_code in zip(
                rows,
                gather(chain_codes, rows),
                gather(timestamps, rows),
                gather(type_codes, rows),
            ):
                if chain != eos:
                    continue
                if timestamp >= launch:
                    side = post
                    transaction_id = transaction_ids[row]
                    post_counts[transaction_id] = post_counts.get(transaction_id, 0) + 1
                else:
                    side = pre
                side[0] += 1
                if side[1] is None:
                    side[1] = side[2] = timestamp
                elif timestamp < side[1]:
                    side[1] = timestamp
                elif timestamp > side[2]:
                    side[2] = timestamp
                if type_code == transfer_code:
                    inner(row)

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized pre/post-launch statistics over every EOS row.

        Counts and timestamp bounds are mask reductions; only the
        transaction-id tally of post-launch rows and the transfer grouping
        (both object-column work) stay per-row, over their masked slices.
        """
        inner = BoomerangClaimsAccumulator.bind(self, frame)
        pre = self._pre = [0, None, None]
        post = self._post = [0, None, None]
        post_counts = self._post_counts = {}
        chain_codes = frame.ndarray("chain_code")
        timestamps = frame.ndarray("timestamp")
        type_codes = frame.ndarray("type_code")
        transaction_ids = frame.transaction_id
        eos = CHAIN_CODES[ChainId.EOS]
        transfer_code = frame.types.code("transfer")
        transfer = -1 if transfer_code is None else transfer_code
        launch = self.launch_timestamp

        def tally(side, count: int, block_ts) -> None:
            side[0] += count
            low = float(block_ts.min())
            high = float(block_ts.max())
            if side[1] is None or low < side[1]:
                side[1] = low
            if side[2] is None or high > side[2]:
                side[2] = high

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            chain, block_ts, types = block_columns(
                rows, chain_codes, timestamps, type_codes
            )
            eos_mask = chain == eos
            if not eos_mask.any():
                return
            eos_ts = block_ts[eos_mask]
            post_mask = eos_ts >= launch
            post_count = int(post_mask.sum())
            pre_count = len(eos_ts) - post_count
            if pre_count:
                tally(pre, pre_count, eos_ts[~post_mask])
            if post_count:
                tally(post, post_count, eos_ts[post_mask])
                post_rows = matched_rows(rows, eos_mask)[post_mask]
                get = post_counts.get
                for transaction_id in map(
                    transaction_ids.__getitem__, post_rows.tolist()
                ):
                    post_counts[transaction_id] = get(transaction_id, 0) + 1
            transfer_mask = eos_mask & (types == transfer)
            if transfer_mask.any():
                for row in matched_rows(rows, transfer_mask).tolist():
                    inner(row)

        return consume

    def config_signature(self) -> tuple:
        return (type(self).__qualname__, self.name, self.contract, self.launch_timestamp)

    def merge(self, other: "AirdropAccumulator") -> None:
        super().merge(other)
        self._merge_sides(other._pre, other._post)
        post_counts = self._post_counts
        for transaction_id, count in other._post_counts.items():
            post_counts[transaction_id] = post_counts.get(transaction_id, 0) + count

    def _merge_sides(self, pre, post) -> None:
        for mine, theirs in ((self._pre, pre), (self._post, post)):
            mine[0] += theirs[0]
            if theirs[1] is not None:
                if mine[1] is None or theirs[1] < mine[1]:
                    mine[1] = theirs[1]
                if mine[2] is None or theirs[2] > mine[2]:
                    mine[2] = theirs[2]

    def export_state(self) -> Dict:
        payload = super().export_state()
        payload["pre"] = list(self._pre)
        payload["post"] = list(self._post)
        # The per-transaction post-launch row tally is transaction-id keyed
        # (large); it packs like any other string table.
        payload["post_counts"] = pack_str_table(self._post_counts)
        return payload

    def restore_state(self, payload: Dict) -> None:
        super().restore_state(payload)
        self._merge_sides(payload["pre"], payload["post"])
        restore_str_table(self._post_counts, payload["post_counts"])

    def finalize(self) -> AirdropReport:
        claims = _claims_from_groups(self._groups, self.contract)
        launch = self.launch_timestamp
        post_counts = self._post_counts
        post_launch_claim_actions = sum(
            post_counts.get(claim.transaction_id, 0) for claim in claims
        )

        def rate(side: List) -> float:
            count, low, high = side
            if not count:
                return 0.0
            duration = high - low
            if duration <= 0:
                return float(count)
            return count / duration

        pre_rate = rate(self._pre)
        post_rate = rate(self._post)
        multiplier = post_rate / pre_rate if pre_rate > 0 else float("inf")
        post_actions = self._post[0]
        return AirdropReport(
            launch_timestamp=launch,
            claim_count=len(claims),
            total_actions=self._pre[0] + post_actions,
            post_launch_actions=post_actions,
            boomerang_action_share_post_launch=(
                post_launch_claim_actions / post_actions if post_actions else 0.0
            ),
            traffic_multiplier=multiplier,
            unique_claimers=len({claim.claimer for claim in claims}),
        )


def detect_boomerang_claims(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    contract: str = EIDOS_CONTRACT,
) -> List[BoomerangClaim]:
    """Find transactions whose EOS leaves and returns within the same transaction.

    A claim is a transaction that (1) transfers EOS from an account to the
    airdrop contract, (2) transfers the same EOS amount straight back, and
    (3) grants the claimer some amount of the airdropped token.
    """
    return BoomerangClaimsAccumulator(contract).run(as_frame(records))


def analyze_airdrop(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    launch_date: str = "2019-11-01",
    contract: str = EIDOS_CONTRACT,
) -> AirdropReport:
    """Compute the §4.1 airdrop statistics from an EOS record stream (one pass)."""
    return AirdropAccumulator(launch_date, contract).run(as_frame(records))


@dataclass(frozen=True)
class CongestionReport:
    """Congestion-mode impact of the airdrop on the resource market."""

    samples: int
    congested_samples: int
    congested_share: float
    peak_cpu_price: float
    baseline_cpu_price: float

    @property
    def cpu_price_increase(self) -> float:
        """Peak price relative to baseline (the paper reports a 10,000 % spike)."""
        if self.baseline_cpu_price <= 0:
            return float("inf")
        return self.peak_cpu_price / self.baseline_cpu_price


def analyze_congestion(
    history: Sequence[CongestionSample], launch_timestamp: float
) -> CongestionReport:
    """Summarise the resource-market history around the airdrop launch."""
    if not history:
        return CongestionReport(0, 0, 0.0, 0.0, 0.0)
    before = [sample for sample in history if sample.timestamp < launch_timestamp]
    after = [sample for sample in history if sample.timestamp >= launch_timestamp]
    baseline = (
        sum(sample.cpu_price for sample in before) / len(before) if before else 0.0
    )
    peak = max((sample.cpu_price for sample in after), default=0.0)
    congested = sum(1 for sample in after if sample.congested)
    return CongestionReport(
        samples=len(history),
        congested_samples=congested,
        congested_share=congested / len(after) if after else 0.0,
        peak_cpu_price=peak,
        baseline_cpu_price=baseline,
    )
