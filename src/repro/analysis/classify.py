"""Transaction classification (Figure 1 and the EOS category labels).

Two classification layers are implemented:

* **Type distribution** — counting transactions/operations/actions by their
  chain-level type name and grouping them the way Figure 1 does
  (P2P transaction / account actions / other actions for EOS system actions;
  operation kinds for Tezos; transaction types for XRP).
* **EOS application categories** — EOS actions on non-system contracts have
  arbitrary names, so the paper labels the top contracts by hand and assigns
  each transaction the category of the contract it targets (Exchange,
  Betting, Games, Pornography, Tokens, Others).  The same label table drives
  :func:`classify_eos_category`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.records import ChainId, TransactionRecord
from repro.eos.actions import SystemActionGroup, classify_system_action
from repro.eos.workload import APPLICATION_CATEGORIES, CATEGORY_OTHERS, CATEGORY_TOKENS

#: Figure 1 group labels keyed by the EOS system-action group.
EOS_FIGURE1_GROUPS: Dict[SystemActionGroup, str] = {
    SystemActionGroup.P2P_TRANSACTION: "P2P transaction",
    SystemActionGroup.ACCOUNT_ACTION: "Account actions",
    SystemActionGroup.OTHER_ACTION: "Other actions",
    SystemActionGroup.USER_DEFINED: "Others",
}

#: Figure 1 group labels for Tezos operation kinds.
TEZOS_FIGURE1_GROUPS: Dict[str, str] = {
    "Transaction": "P2P transaction",
    "Origination": "Account actions",
    "Reveal": "Account actions",
    "Activate": "Account actions",
    "Endorsement": "Other actions",
    "Delegation": "Other actions",
    "Reveal nonce": "Other actions",
    "Ballot": "Other actions",
    "Proposals": "Other actions",
    "Double baking evidence": "Other actions",
}

#: Figure 1 group labels for XRP transaction types.
XRP_FIGURE1_GROUPS: Dict[str, str] = {
    "Payment": "P2P transaction",
    "EscrowFinish": "P2P transaction",
    "TrustSet": "Account actions",
    "AccountSet": "Account actions",
    "SignerListSet": "Account actions",
    "SetRegularKey": "Account actions",
    "OfferCreate": "Other actions",
    "OfferCancel": "Other actions",
    "EscrowCreate": "Other actions",
    "EscrowCancel": "Other actions",
    "PaymentChannelClaim": "Other actions",
    "PaymentChannelCreate": "Other actions",
    "EnableAmendment": "Other actions",
}


@dataclass(frozen=True)
class TypeDistributionRow:
    """One row of the Figure 1 table."""

    chain: ChainId
    group: str
    type_name: str
    count: int
    share: float


def figure1_group(record: TransactionRecord) -> str:
    """The Figure 1 group a record belongs to."""
    if record.chain is ChainId.EOS:
        group = classify_system_action(record.type, record.contract)
        return EOS_FIGURE1_GROUPS[group]
    if record.chain is ChainId.TEZOS:
        return TEZOS_FIGURE1_GROUPS.get(record.type, "Other actions")
    return XRP_FIGURE1_GROUPS.get(record.type, "Other actions")


def type_distribution(records: Iterable[TransactionRecord]) -> List[TypeDistributionRow]:
    """Figure 1: count and share of every (group, type) pair, per chain.

    EOS user-defined actions are collapsed into a single "Others" row exactly
    as the paper does, because their names are contract-specific.
    """
    counts: Counter = Counter()
    totals: Counter = Counter()
    for record in records:
        group = figure1_group(record)
        type_name = record.type
        if record.chain is ChainId.EOS and group == "Others":
            type_name = "Others"
        counts[(record.chain, group, type_name)] += 1
        totals[record.chain] += 1
    rows: List[TypeDistributionRow] = []
    for (chain, group, type_name), count in counts.items():
        total = totals[chain]
        rows.append(
            TypeDistributionRow(
                chain=chain,
                group=group,
                type_name=type_name,
                count=count,
                share=count / total if total else 0.0,
            )
        )
    rows.sort(key=lambda row: (row.chain.value, row.group, -row.count, row.type_name))
    return rows


def distribution_as_mapping(
    rows: Iterable[TypeDistributionRow], chain: ChainId
) -> Dict[str, float]:
    """Type-name → share mapping for one chain (convenient for assertions)."""
    return {row.type_name: row.share for row in rows if row.chain is chain}


# -- EOS application categories (Figure 3a / §3.2) -------------------------------------
def classify_eos_category(
    record: TransactionRecord,
    label_table: Optional[Mapping[str, str]] = None,
) -> str:
    """Category of one EOS action, following the paper's manual label table.

    The category is determined by the contract the action targets; unlabelled
    contracts fall into "Others".  Transfers carried by ``eosio.token`` on
    behalf of a labelled application (for instance bets sent to
    ``betdicetasks``) are attributed to the token category, matching the
    paper's classification where the EIDOS transfers show up as "Tokens".
    """
    labels = label_table if label_table is not None else APPLICATION_CATEGORIES
    if record.chain is not ChainId.EOS:
        raise ValueError("classify_eos_category only applies to EOS records")
    if record.contract in labels:
        return labels[record.contract]
    return CATEGORY_OTHERS


def category_distribution(
    records: Iterable[TransactionRecord],
    label_table: Optional[Mapping[str, str]] = None,
) -> Dict[str, float]:
    """Share of EOS actions per application category."""
    counts: Counter = Counter()
    total = 0
    for record in records:
        if record.chain is not ChainId.EOS:
            continue
        counts[classify_eos_category(record, label_table)] += 1
        total += 1
    if total == 0:
        return {}
    return {category: count / total for category, count in sorted(counts.items())}


def action_breakdown_by_contract(
    records: Iterable[TransactionRecord], contract: str
) -> List[Tuple[str, int, float]]:
    """Per-action (name, count, share) breakdown for one EOS contract.

    This is the right-hand column of Figure 4 (for instance ``transfer``
    99.999 % for ``eosio.token``; ``removetask`` 68 % for ``betdicetasks``).
    """
    counts: Counter = Counter()
    total = 0
    for record in records:
        if record.chain is ChainId.EOS and record.receiver == contract:
            counts[record.type] += 1
            total += 1
    breakdown = [
        (name, count, count / total if total else 0.0) for name, count in counts.items()
    ]
    breakdown.sort(key=lambda item: (-item[1], item[0]))
    return breakdown


def tezos_category_distribution(records: Iterable[TransactionRecord]) -> Dict[str, float]:
    """Share of Tezos operations per paper category (consensus/governance/manager)."""
    counts: Counter = Counter()
    total = 0
    for record in records:
        if record.chain is not ChainId.TEZOS:
            continue
        category = str(record.metadata.get("category", "manager"))
        counts[category] += 1
        total += 1
    if total == 0:
        return {}
    return {category: count / total for category, count in sorted(counts.items())}
