"""Transaction classification (Figure 1 and the EOS category labels).

Two classification layers are implemented:

* **Type distribution** — counting transactions/operations/actions by their
  chain-level type name and grouping them the way Figure 1 does
  (P2P transaction / account actions / other actions for EOS system actions;
  operation kinds for Tezos; transaction types for XRP).
* **EOS application categories** — EOS actions on non-system contracts have
  arbitrary names, so the paper labels the top contracts by hand and assigns
  each transaction the category of the contract it targets (Exchange,
  Betting, Games, Pornography, Tokens, Others).  The same label table drives
  :func:`classify_eos_category`.

Both layers are implemented as single-pass accumulators over the columnar
:class:`~repro.common.columns.TxFrame`; the public functions are thin
backward-compatible wrappers that accept either a frame/view or any iterable
of canonical records.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.common import kernels
from repro.common.columns import CHAIN_CODES, CHAIN_ORDER, FrameLike, TxFrame, as_frame
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, config_digest, gather
from repro.analysis.vectorized import block_columns, count_codes, matched_rows
from repro.common.statecodec import (
    pack_code_table,
    pack_str_table,
    restore_code_table,
    restore_str_table,
)
from repro.eos.actions import SystemActionGroup, classify_system_action
from repro.eos.workload import APPLICATION_CATEGORIES, CATEGORY_OTHERS, CATEGORY_TOKENS

#: Figure 1 group labels keyed by the EOS system-action group.
EOS_FIGURE1_GROUPS: Dict[SystemActionGroup, str] = {
    SystemActionGroup.P2P_TRANSACTION: "P2P transaction",
    SystemActionGroup.ACCOUNT_ACTION: "Account actions",
    SystemActionGroup.OTHER_ACTION: "Other actions",
    SystemActionGroup.USER_DEFINED: "Others",
}

#: Figure 1 group labels for Tezos operation kinds.
TEZOS_FIGURE1_GROUPS: Dict[str, str] = {
    "Transaction": "P2P transaction",
    "Origination": "Account actions",
    "Reveal": "Account actions",
    "Activate": "Account actions",
    "Endorsement": "Other actions",
    "Delegation": "Other actions",
    "Reveal nonce": "Other actions",
    "Ballot": "Other actions",
    "Proposals": "Other actions",
    "Double baking evidence": "Other actions",
}

#: Figure 1 group labels for XRP transaction types.
XRP_FIGURE1_GROUPS: Dict[str, str] = {
    "Payment": "P2P transaction",
    "EscrowFinish": "P2P transaction",
    "TrustSet": "Account actions",
    "AccountSet": "Account actions",
    "SignerListSet": "Account actions",
    "SetRegularKey": "Account actions",
    "OfferCreate": "Other actions",
    "OfferCancel": "Other actions",
    "EscrowCreate": "Other actions",
    "EscrowCancel": "Other actions",
    "PaymentChannelClaim": "Other actions",
    "PaymentChannelCreate": "Other actions",
    "EnableAmendment": "Other actions",
}

_EOS_CODE = CHAIN_CODES[ChainId.EOS]
_TEZOS_CODE = CHAIN_CODES[ChainId.TEZOS]
_XRP_CODE = CHAIN_CODES[ChainId.XRP]


@dataclass(frozen=True)
class TypeDistributionRow:
    """One row of the Figure 1 table."""

    chain: ChainId
    group: str
    type_name: str
    count: int
    share: float


def figure1_group(record: TransactionRecord) -> str:
    """The Figure 1 group a record belongs to."""
    if record.chain is ChainId.EOS:
        group = classify_system_action(record.type, record.contract)
        return EOS_FIGURE1_GROUPS[group]
    if record.chain is ChainId.TEZOS:
        return TEZOS_FIGURE1_GROUPS.get(record.type, "Other actions")
    return XRP_FIGURE1_GROUPS.get(record.type, "Other actions")


class TypeDistributionAccumulator(Accumulator):
    """Single-pass Figure 1: counts by (chain, group, type).

    The scan counts integer (chain, type, contract) triples with one bulk
    ``Counter.update`` per block (a C-level loop); classification into
    Figure 1 groups and string materialisation happen once per *distinct*
    triple at :meth:`finalize` — not once per row.
    """

    name = "type_distribution"

    def bind(self, frame: TxFrame) -> Step:
        self._frame = frame
        counts = self._counts = Counter()
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        contract_codes = frame.contract_code

        def step(row: int) -> None:
            counts[(chain_codes[row], type_codes[row], contract_codes[row])] += 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        self._frame = frame
        counts = self._counts = Counter()
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        contract_codes = frame.contract_code

        def consume(rows: RowIndices) -> None:
            counts.update(
                zip(
                    gather(chain_codes, rows),
                    gather(type_codes, rows),
                    gather(contract_codes, rows),
                )
            )

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: packed-code histogram per block."""
        self._frame = frame
        counts = self._counts = Counter()
        chain_codes = frame.ndarray("chain_code")
        type_codes = frame.ndarray("type_code")
        contract_codes = frame.ndarray("contract_code")
        sizes = (len(CHAIN_ORDER), len(frame.types), len(frame.accounts))

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            count_codes(
                counts,
                block_columns(rows, chain_codes, type_codes, contract_codes),
                sizes,
            )

        return consume

    def merge(self, other: "TypeDistributionAccumulator") -> None:
        self._counts.update(other._counts)

    def export_state(self) -> Dict:
        return {"counts": pack_code_table(self._counts, 3)}

    def restore_state(self, payload: Dict) -> None:
        restore_code_table(self._counts, payload["counts"])

    def finalize(self) -> List[TypeDistributionRow]:
        frame = self._frame
        type_values = frame.types.values
        account_values = frame.accounts.values
        merged: Counter = Counter()
        totals: Counter = Counter()
        for (chain_code, type_code, contract_code), count in self._counts.items():
            chain = CHAIN_ORDER[chain_code]
            type_name = type_values[type_code]
            # Only the EOS grouping depends on the contract; the non-EOS
            # contract codes are simply merged away here.
            if chain_code == _EOS_CODE:
                group = EOS_FIGURE1_GROUPS[
                    classify_system_action(type_name, account_values[contract_code])
                ]
                if group == "Others":
                    type_name = "Others"
            elif chain_code == _TEZOS_CODE:
                group = TEZOS_FIGURE1_GROUPS.get(type_name, "Other actions")
            else:
                group = XRP_FIGURE1_GROUPS.get(type_name, "Other actions")
            merged[(chain, group, type_name)] += count
            totals[chain] += count
        rows = [
            TypeDistributionRow(
                chain=chain,
                group=group,
                type_name=type_name,
                count=count,
                share=count / totals[chain] if totals[chain] else 0.0,
            )
            for (chain, group, type_name), count in merged.items()
        ]
        rows.sort(key=lambda row: (row.chain.value, row.group, -row.count, row.type_name))
        return rows


def type_distribution(
    records: Union[FrameLike, Iterable[TransactionRecord]]
) -> List[TypeDistributionRow]:
    """Figure 1: count and share of every (group, type) pair, per chain.

    EOS user-defined actions are collapsed into a single "Others" row exactly
    as the paper does, because their names are contract-specific.  Thin
    wrapper over :class:`TypeDistributionAccumulator` (one pass).
    """
    return TypeDistributionAccumulator().run(as_frame(records))


def distribution_as_mapping(
    rows: Iterable[TypeDistributionRow], chain: ChainId
) -> Dict[str, float]:
    """Type-name → share mapping for one chain (convenient for assertions)."""
    return {row.type_name: row.share for row in rows if row.chain is chain}


# -- EOS application categories (Figure 3a / §3.2) -------------------------------------
def classify_eos_category(
    record: TransactionRecord,
    label_table: Optional[Mapping[str, str]] = None,
) -> str:
    """Category of one EOS action, following the paper's manual label table.

    The category is determined by the contract the action targets; unlabelled
    contracts fall into "Others".  Transfers carried by ``eosio.token`` on
    behalf of a labelled application (for instance bets sent to
    ``betdicetasks``) are attributed to the token category, matching the
    paper's classification where the EIDOS transfers show up as "Tokens".
    """
    labels = label_table if label_table is not None else APPLICATION_CATEGORIES
    if record.chain is not ChainId.EOS:
        raise ValueError("classify_eos_category only applies to EOS records")
    if record.contract in labels:
        return labels[record.contract]
    return CATEGORY_OTHERS


def eos_category_lookup(
    frame: TxFrame, label_table: Optional[Mapping[str, str]] = None
) -> Dict[int, str]:
    """Contract-code → category table for one frame's interned contracts.

    Classifying by code turns the per-row category decision into a list
    index, which is what makes the category accumulators (and the Figure 3a
    throughput categorizer) cheap inside the shared pass.
    """
    labels = label_table if label_table is not None else APPLICATION_CATEGORIES
    return {
        code: labels.get(contract, CATEGORY_OTHERS)
        for code, contract in enumerate(frame.accounts.values)
    }


class CategoryDistributionAccumulator(Accumulator):
    """Single-pass EOS application-category shares (Figure 3a mix)."""

    name = "category_distribution"

    def __init__(self, label_table: Optional[Mapping[str, str]] = None):
        self.label_table = label_table

    def bind(self, frame: TxFrame) -> Step:
        self._frame = frame
        counts = self._counts = Counter()
        chain_codes = frame.chain_code
        contract_codes = frame.contract_code

        def step(row: int) -> None:
            counts[(chain_codes[row], contract_codes[row])] += 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        self._frame = frame
        counts = self._counts = Counter()
        chain_codes = frame.chain_code
        contract_codes = frame.contract_code

        def consume(rows: RowIndices) -> None:
            counts.update(zip(gather(chain_codes, rows), gather(contract_codes, rows)))

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: (chain, contract) packed-code histogram."""
        self._frame = frame
        counts = self._counts = Counter()
        chain_codes = frame.ndarray("chain_code")
        contract_codes = frame.ndarray("contract_code")
        sizes = (len(CHAIN_ORDER), len(frame.accounts))

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            count_codes(
                counts, block_columns(rows, chain_codes, contract_codes), sizes
            )

        return consume

    def merge(self, other: "CategoryDistributionAccumulator") -> None:
        self._counts.update(other._counts)

    def export_state(self) -> Dict:
        return {"counts": pack_code_table(self._counts, 2)}

    def restore_state(self, payload: Dict) -> None:
        restore_code_table(self._counts, payload["counts"])

    def config_signature(self) -> tuple:
        table = (
            self.label_table if self.label_table is not None else APPLICATION_CATEGORIES
        )
        return (type(self).__qualname__, self.name, config_digest(dict(table)))

    def finalize(self) -> Dict[str, float]:
        labels = (
            self.label_table if self.label_table is not None else APPLICATION_CATEGORIES
        )
        contract_values = self._frame.accounts.values
        merged: Dict[str, int] = {}
        total = 0
        for (chain_code, contract_code), count in self._counts.items():
            if chain_code != _EOS_CODE:
                continue
            category = labels.get(contract_values[contract_code], CATEGORY_OTHERS)
            merged[category] = merged.get(category, 0) + count
            total += count
        if total == 0:
            return {}
        return {category: count / total for category, count in sorted(merged.items())}


def category_distribution(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    label_table: Optional[Mapping[str, str]] = None,
) -> Dict[str, float]:
    """Share of EOS actions per application category (one pass)."""
    return CategoryDistributionAccumulator(label_table).run(as_frame(records))


class ContractBreakdownAccumulator(Accumulator):
    """Single-pass per-action breakdown of one EOS contract (Figure 4 rows)."""

    name = "contract_breakdown"

    def __init__(self, contract: str):
        self.contract = contract

    def bind(self, frame: TxFrame) -> Step:
        counts = self._counts = {}
        self._frame = frame
        chain_codes = frame.chain_code
        receiver_codes = frame.receiver_code
        type_codes = frame.type_code
        contract_code = frame.accounts.code(self.contract)
        eos = _EOS_CODE

        if contract_code is None:
            def step(row: int) -> None:  # contract never appears in the frame
                return
        else:
            def step(row: int) -> None:
                if chain_codes[row] == eos and receiver_codes[row] == contract_code:
                    code = type_codes[row]
                    counts[code] = counts.get(code, 0) + 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        counts = self._counts = {}
        self._frame = frame
        chain_codes = frame.chain_code
        receiver_codes = frame.receiver_code
        type_codes = frame.type_code
        contract_code = frame.accounts.code(self.contract)
        eos = _EOS_CODE

        if contract_code is None:
            return lambda rows: None

        def consume(rows: RowIndices) -> None:
            for chain, receiver, type_code in zip(
                gather(chain_codes, rows),
                gather(receiver_codes, rows),
                gather(type_codes, rows),
            ):
                if chain == eos and receiver == contract_code:
                    counts[type_code] = counts.get(type_code, 0) + 1

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: mask the contract's rows, histogram the types."""
        counts = self._counts = {}
        self._frame = frame
        chain_codes = frame.ndarray("chain_code")
        receiver_codes = frame.ndarray("receiver_code")
        type_codes = frame.ndarray("type_code")
        contract_code = frame.accounts.code(self.contract)
        eos = _EOS_CODE

        if contract_code is None:
            return lambda rows: None

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            chain, receiver, types = block_columns(
                rows, chain_codes, receiver_codes, type_codes
            )
            mask = (chain == eos) & (receiver == contract_code)
            if mask.any():
                count_codes(counts, (types[mask],), (len(frame.types),))

        return consume

    def merge(self, other: "ContractBreakdownAccumulator") -> None:
        counts = self._counts
        for type_code, count in other._counts.items():
            counts[type_code] = counts.get(type_code, 0) + count

    def export_state(self) -> Dict:
        return {"counts": pack_code_table(self._counts, 1)}

    def restore_state(self, payload: Dict) -> None:
        restore_code_table(self._counts, payload["counts"])

    def config_signature(self) -> tuple:
        return (type(self).__qualname__, self.name, self.contract)

    def finalize(self) -> List[Tuple[str, int, float]]:
        type_values = self._frame.types.values
        total = sum(self._counts.values())
        breakdown = [
            (type_values[code], count, count / total if total else 0.0)
            for code, count in self._counts.items()
        ]
        breakdown.sort(key=lambda item: (-item[1], item[0]))
        return breakdown


def action_breakdown_by_contract(
    records: Union[FrameLike, Iterable[TransactionRecord]], contract: str
) -> List[Tuple[str, int, float]]:
    """Per-action (name, count, share) breakdown for one EOS contract.

    This is the right-hand column of Figure 4 (for instance ``transfer``
    99.999 % for ``eosio.token``; ``removetask`` 68 % for ``betdicetasks``).
    """
    return ContractBreakdownAccumulator(contract).run(as_frame(records))


class TezosCategoryAccumulator(Accumulator):
    """Single-pass Tezos category shares (consensus/governance/manager)."""

    name = "tezos_category_distribution"

    def bind(self, frame: TxFrame) -> Step:
        counts = self._counts = {}
        chain_codes = frame.chain_code
        metadata = frame.metadata
        tezos = _TEZOS_CODE

        def step(row: int) -> None:
            if chain_codes[row] != tezos:
                return
            meta = metadata[row]
            category = str(meta.get("category", "manager")) if meta else "manager"
            counts[category] = counts.get(category, 0) + 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        counts = self._counts = {}
        chain_codes = frame.chain_code
        metadata = frame.metadata
        tezos = _TEZOS_CODE

        def consume(rows: RowIndices) -> None:
            for chain, meta in zip(gather(chain_codes, rows), gather(metadata, rows)):
                if chain != tezos:
                    continue
                category = str(meta.get("category", "manager")) if meta else "manager"
                counts[category] = counts.get(category, 0) + 1

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Mask-prefiltered kernel: only Tezos rows pay the metadata lookup.

        The category lives in the free-form metadata mapping (an object
        column), so the tail stays per-row by construction; the win is the
        C-speed chain filter in front of it.
        """
        counts = self._counts = {}
        chain_codes = frame.ndarray("chain_code")
        metadata = frame.metadata
        tezos = _TEZOS_CODE

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            (chain,) = block_columns(rows, chain_codes)
            mask = chain == tezos
            if not mask.any():
                return
            for row in matched_rows(rows, mask).tolist():
                meta = metadata[row]
                category = str(meta.get("category", "manager")) if meta else "manager"
                counts[category] = counts.get(category, 0) + 1

        return consume

    def merge(self, other: "TezosCategoryAccumulator") -> None:
        counts = self._counts
        for category, count in other._counts.items():
            counts[category] = counts.get(category, 0) + count

    def export_state(self) -> Dict:
        return {"counts": pack_str_table(self._counts)}

    def restore_state(self, payload: Dict) -> None:
        restore_str_table(self._counts, payload["counts"])

    def finalize(self) -> Dict[str, float]:
        counts = self._counts
        total = sum(counts.values())
        if total == 0:
            return {}
        return {category: count / total for category, count in sorted(counts.items())}


def tezos_category_distribution(
    records: Union[FrameLike, Iterable[TransactionRecord]]
) -> Dict[str, float]:
    """Share of Tezos operations per paper category (one pass)."""
    return TezosCategoryAccumulator().run(as_frame(records))
