"""XRP account clustering (§3.3).

Large XRP users — exchanges in particular — operate many addresses.  The
paper clusters accounts by the username registered with the ledger explorer
and, for unnamed accounts, by the username of the parent account that
activated them (suffixed ``-- descendant``).  The cluster map feeds the
Figure 8 attribution ("descendants of an account from Huobi") and the
Figure 12 value-flow aggregation.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.common import kernels
from repro.common.columns import FrameLike, TxFrame, as_frame
from repro.common.records import TransactionRecord
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, config_digest, gather
from repro.analysis.vectorized import block_columns, count_codes
from repro.common.statecodec import pack_code_table, restore_code_table
from repro.xrp.accounts import XrpAccountRegistry


@dataclass(frozen=True)
class AccountCluster:
    """A named cluster of addresses controlled by one entity."""

    name: str
    addresses: Tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.addresses)


class AccountClusterer:
    """Builds and applies the username/parent cluster map."""

    def __init__(self, registry: XrpAccountRegistry):
        self.registry = registry
        self._cache: Dict[str, str] = {}

    def cluster_of(self, address: str) -> str:
        """Cluster label for one address (cached)."""
        label = self._cache.get(address)
        if label is None:
            label = self.registry.cluster_identifier(address)
            self._cache[address] = label
        return label

    def clusters(self, addresses: Iterable[str]) -> List[AccountCluster]:
        """Group ``addresses`` into clusters, largest first."""
        grouped: Dict[str, List[str]] = defaultdict(list)
        for address in addresses:
            grouped[self.cluster_of(address)].append(address)
        clusters = [
            AccountCluster(name=name, addresses=tuple(sorted(members)))
            for name, members in grouped.items()
        ]
        clusters.sort(key=lambda cluster: (-cluster.size, cluster.name))
        return clusters

    def is_descendant_of(self, address: str, username: str) -> bool:
        """Whether ``address`` descends from an account named ``username``."""
        label = self.cluster_of(address)
        return label == username or label == f"{username} -- descendant"

    def signature(self) -> str:
        """Checkpoint compatibility key.

        The live clusterer derives labels from the full account registry, so
        its signature digests the registry's address → label view for every
        registered account; an equal signature guarantees every lookup the
        analyses may issue resolves identically.
        """
        labels = {
            address: self.cluster_of(address) for address in self.registry.addresses()
        }
        return config_digest(labels)


class StaticAccountClusterer:
    """A cluster map materialised to a plain address → label dictionary.

    The live :class:`AccountClusterer` needs the XRP account registry, which
    only exists while the workload generator is alive.  Freezing the map
    makes the clustering portable: the CLI's dataset cache persists it as
    JSON and rehydrates analyses without regenerating the ledger.  Addresses
    missing from the map fall back to themselves — the same rule the
    registry applies to unknown accounts.
    """

    def __init__(self, mapping: Mapping[str, str]):
        self._labels: Dict[str, str] = dict(mapping)

    @classmethod
    def from_clusterer(
        cls, clusterer: AccountClusterer, addresses: Iterable[str]
    ) -> "StaticAccountClusterer":
        """Freeze ``clusterer``'s labels for the given addresses."""
        return cls({address: clusterer.cluster_of(address) for address in addresses})

    def cluster_of(self, address: str) -> str:
        return self._labels.get(address, address)

    def to_mapping(self) -> Dict[str, str]:
        """The frozen address → label map (JSON-serialisable)."""
        return dict(self._labels)

    def signature(self) -> str:
        """Checkpoint compatibility key: digest of the frozen label map."""
        return config_digest(self._labels)

    def __len__(self) -> int:
        return len(self._labels)


class ClusterCountsAccumulator(Accumulator):
    """Single-pass per-cluster transaction counts (sender or receiver side).

    Cluster labels are resolved once per interned account code, so the
    per-row cost inside the shared pass is two dict lookups.
    """

    name = "cluster_counts"

    def __init__(self, clusterer: AccountClusterer, side: str = "sender"):
        if side not in ("sender", "receiver"):
            raise ValueError("side must be 'sender' or 'receiver'")
        self.clusterer = clusterer
        self.side = side

    def bind(self, frame: TxFrame) -> Step:
        self._frame = frame
        counts = self._code_counts = Counter()
        codes = frame.sender_code if self.side == "sender" else frame.receiver_code

        def step(row: int) -> None:
            counts[codes[row]] += 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        self._frame = frame
        counts = self._code_counts = Counter()
        codes = frame.sender_code if self.side == "sender" else frame.receiver_code

        def consume(rows: RowIndices) -> None:
            counts.update(gather(codes, rows))

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: per-account histogram via one unique per block."""
        self._frame = frame
        counts = self._code_counts = Counter()
        codes = frame.ndarray(
            "sender_code" if self.side == "sender" else "receiver_code"
        )

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            count_codes(counts, block_columns(rows, codes), (len(frame.accounts),))

        return consume

    def merge(self, other: "ClusterCountsAccumulator") -> None:
        self._code_counts.update(other._code_counts)

    def export_state(self) -> Dict:
        return {"counts": pack_code_table(self._code_counts, 1)}

    def restore_state(self, payload: Dict) -> None:
        restore_code_table(self._code_counts, payload["counts"])

    def config_signature(self) -> tuple:
        clusterer_signature = getattr(self.clusterer, "signature", None)
        return (
            type(self).__qualname__,
            self.name,
            self.side,
            clusterer_signature() if clusterer_signature else type(self.clusterer).__qualname__,
        )

    def finalize(self) -> Dict[str, int]:
        frame = self._frame
        account_values = frame.accounts.values
        cluster_of = self.clusterer.cluster_of
        empty = frame.accounts.code("")
        counts: Dict[str, int] = {}
        # Cluster labels resolve once per distinct account code — the scan
        # itself only counted small integers.
        for code, count in self._code_counts.items():
            if code == empty:
                continue
            label = cluster_of(account_values[code])
            counts[label] = counts.get(label, 0) + count
        return counts


def cluster_transaction_counts(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    clusterer: AccountClusterer,
    side: str = "sender",
) -> Dict[str, int]:
    """Transactions per cluster, on the sender or receiver side (one pass)."""
    return ClusterCountsAccumulator(clusterer, side).run(as_frame(records))


def shared_destination_tags(
    records: Iterable[TransactionRecord], minimum_accounts: int = 2
) -> Dict[int, List[str]]:
    """Destination tags used by several distinct senders.

    The Figure 8 accounts betray common control by all using destination tag
    104398 on their payments; this helper surfaces any tag shared by at least
    ``minimum_accounts`` senders.
    """
    tag_senders: Dict[int, set] = defaultdict(set)
    for record in records:
        tag = record.metadata.get("destination_tag")
        if tag is None:
            continue
        tag_senders[int(tag)].add(record.sender)
    return {
        tag: sorted(senders)
        for tag, senders in tag_senders.items()
        if len(senders) >= minimum_accounts
    }


def common_control_evidence(
    records: Iterable[TransactionRecord],
    clusterer: AccountClusterer,
    accounts: Iterable[str],
    parent_username: str = "Huobi Global",
) -> Dict[str, Dict[str, object]]:
    """Evidence table for the Figure 8 common-control argument.

    For each account the table reports whether it descends from the given
    parent username, which destination tags it used, which currencies it
    transacted in, and its OfferCreate share — the four similarity signals
    §3.3 lists.
    """
    materialized = list(records)
    evidence: Dict[str, Dict[str, object]] = {}
    for account in accounts:
        own_records = [record for record in materialized if record.sender == account]
        offer_count = sum(1 for record in own_records if record.type == "OfferCreate")
        tags = sorted(
            {
                int(record.metadata["destination_tag"])
                for record in own_records
                if record.metadata.get("destination_tag") is not None
            }
        )
        currencies = sorted(
            {record.currency for record in own_records if record.currency}
        )
        evidence[account] = {
            "descends_from_parent": clusterer.is_descendant_of(account, parent_username),
            "offer_create_share": offer_count / len(own_records) if own_records else 0.0,
            "destination_tags": tags,
            "currencies": currencies,
        }
    return evidence
