"""Single-pass streaming analysis engine.

The seed analysis layer computed every figure with its own full iteration
over the record list: ten figures meant ten passes.  The engine inverts
that: each analysis module exposes its per-row logic as an
:class:`Accumulator`, and :class:`AnalysisEngine` drives any number of
accumulators through **one** streaming scan of a columnar
:class:`~repro.common.columns.TxFrame` (or a zero-copy view of it).

Execution is *block-at-a-time*, the standard design for columnar engines:
the scan advances in bounded row blocks, and every accumulator consumes the
current block before the scan moves on.  Data is read once, stays
cache-hot across accumulators, and memory stays bounded regardless of frame
size.  Inside a block, accumulators are free to use C-level bulk primitives
(``Counter.update`` over zipped column slices, ``set.update``, bisection on
sorted timestamps) instead of per-row Python dispatch — that is where the
engine's speed over the seed's per-figure passes comes from.

The accumulator protocol:

``bind(frame) -> step``
    Row-at-a-time mode.  Called once before the pass; the accumulator
    captures the column buffers it needs and returns a ``step(row)``
    callable.  This is the simplest way to write a new accumulator.

``bind_batch(frame) -> consume``
    Block-at-a-time mode.  Returns a ``consume(rows)`` callable invoked
    with each block (a ``range`` for contiguous scans, an integer array for
    filtered views).  The default implementation drives ``bind``'s step row
    by row, so implementing ``bind`` alone is always enough; override
    ``bind_batch`` with bulk column operations to make an accumulator fast.

``merge(other) -> None``
    Folds another accumulator's scanned (post-bind, pre-finalize) state
    into this one.  This is what makes sharded and multi-process execution
    possible: disjoint row ranges are scanned independently and their
    states merged before a single ``finalize``.  Both accumulators must
    have identical configuration and be bound to frames with **identical
    string pools** (the guarantee :meth:`TxFrame.from_payload` provides for
    rehydrated shards), and shards must be merged in row order — under
    those conditions the merged state replays the serial scan and the
    finalised result is deterministic.

``finalize() -> result``
    Called once after the scan; returns the analysis result (the same
    object the module's legacy public function returns).

Accumulators are one-shot: binding resets state, so an instance can be
reused across engine runs but not shared between concurrent passes.

Scanned accumulators are picklable: :meth:`Accumulator.__getstate__` drops
the attributes named by ``_TRANSIENT`` (the bound frame reference and any
closure helpers), which is how worker processes ship their shard states
back to the parent for merging — see :mod:`repro.analysis.parallel`.

**State snapshot / restore contract.**  Durable checkpoints and worker
hand-offs do not pickle accumulator objects; they move **state payloads**:

``export_state() -> payload``
    Returns the scanned (post-bind, *pre-finalize*) state as a typed,
    columnar payload — plain data values plus packed
    :mod:`repro.common.statecodec` columns (string collections as one
    joined blob, integer/float tallies as ``array('q')``/``array('d')``
    key and count columns).  Configuration never rides along: the payload
    is pure scanned state, and the big collections serialise in O(bytes),
    not O(elements).

``restore_state(payload) -> None``
    Folds an exported payload into this accumulator — the payload-shaped
    twin of ``merge``, with the same preconditions: the target must be
    freshly bound (``bind_batch``) against a pool-compatible frame, the
    exporting side must have had an equal
    :meth:`Accumulator.config_signature`, and payloads must be restored in
    row order ahead of any delta scan.  Restoring a serial snapshot and
    scanning the remaining rows replays the serial pass exactly —
    including the bit-for-bit Figure 12 float sums.

The surrounding contract has three legs:

1. snapshots are taken **before** ``finalize`` — several accumulators fold
   bulk state into their counters at finalisation, so a post-finalize
   snapshot would double count when restored;
2. state that references interned string codes stays valid because frame
   rehydration (:meth:`TxFrame.from_payload` and
   :meth:`~repro.collection.store.FrameStore.to_frame`) re-interns pools
   append-only and in a deterministic order, so a code assigned at
   checkpoint time maps to the same string in every later rehydration of a
   grown store;
3. ``config_signature()`` is the compatibility gate: restore-and-merge is
   only defined between accumulators whose signatures are equal.  Fields
   that legitimately advance between incremental updates (for example a
   throughput series' window *end*) are excluded from the signature by the
   overriding accumulator.
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.common import kernels, statsmode
from repro.common.sketches import HyperLogLog, hash64
from repro.common.statecodec import pack_strings, unpack_strings
from repro.common.columns import (
    FrameLike,
    RowIndices,
    TxFrame,
    as_index_rows,
    gather_array,
    gather_np,
    view_of,
)
from repro.common.errors import AnalysisError

Step = Callable[[int], None]
BatchStep = Callable[[RowIndices], None]

#: Rows per scan block.  Large enough that per-block Python overhead is
#: negligible, small enough that the working set of gathered column slices
#: stays cache-friendly and memory stays bounded on huge frames.
BLOCK_ROWS = 65_536


def config_digest(items: Any) -> str:
    """Short stable digest of a configuration mapping or iterable.

    Used by accumulators whose configuration is a table too large to embed
    in :meth:`Accumulator.config_signature` directly (label tables, cluster
    maps, oracle rate tables).  Mappings are digested as sorted items so
    insertion order never matters.
    """
    if isinstance(items, dict):
        items = sorted(items.items())
    payload = repr(items).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def gather(column: Sequence, rows: RowIndices) -> Sequence:
    """Values of ``column`` at ``rows`` as a C-materialised sequence.

    Contiguous ranges become slices (a single C memcpy for array columns).
    Index arrays over buffer-backed columns route through the NumPy
    index-array gather when the numpy backend is active (one fancy-indexing
    call, returned as a same-typecode ``array``); object columns — and the
    pure-python reference backend — fall back to a C ``map`` of
    ``__getitem__``, never a Python-level loop.
    """
    if isinstance(rows, range):
        if rows.step == 1:
            return column[rows.start : rows.stop]
        return column[rows.start : rows.stop : rows.step]
    if isinstance(column, array) and kernels.use_numpy():
        return gather_array(column, rows)
    return list(map(column.__getitem__, rows))


def scan_blocks(rows: RowIndices, block_rows: int) -> Iterator[RowIndices]:
    """Split a row sequence into engine scan blocks.

    Under the numpy backend the sequence is normalised once through
    :func:`~repro.common.columns.as_index_rows`, so every non-contiguous
    block the consumers see is an ``int64`` index ndarray (sliced zero-copy
    from the full sequence) instead of a per-block ``array`` copy; ranges
    stay ranges on both backends.  This is the shared block iterator of the
    engine and the incremental pipeline's catch-up scan.
    """
    if kernels.use_numpy():
        rows = as_index_rows(rows)
    total = len(rows)
    for start in range(0, total, block_rows):
        yield rows[start : start + block_rows]


class Accumulator:
    """Base class for single-pass analysis accumulators."""

    #: Key under which the accumulator's result appears in the engine output.
    name: str = "accumulator"

    #: Attributes dropped when a scanned accumulator crosses a process
    #: boundary: the bound frame is large and the merging side keeps its own
    #: (pool-identical) frame reference, and closure helpers cannot pickle.
    _TRANSIENT: tuple = ("_frame",)

    def bind(self, frame: TxFrame) -> Step:
        """Capture column references and return the per-row step callable."""
        raise NotImplementedError

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        """Return a per-block consumer; defaults to driving :meth:`bind`."""
        step = self.bind(frame)

        def consume(rows: RowIndices) -> None:
            for row in rows:
                step(row)

        return consume

    def merge(self, other: "Accumulator") -> None:
        """Fold ``other``'s scanned state into this accumulator.

        Both sides must be post-bind / pre-finalize, share configuration,
        and be bound to frames with identical string pools; merge shards in
        row order for deterministic results (see the module docstring).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement merge()"
        )

    def finalize(self) -> Any:
        """Return the analysis result after the pass completes."""
        raise NotImplementedError

    def export_state(self) -> Dict[str, Any]:
        """Scanned (pre-finalize) state as a typed, columnar payload.

        The payload must be built from :mod:`repro.common.statecodec` data
        values only — scalars, strings, bytes, lists/tuples/dicts and
        packed ``array`` columns — so a checkpoint can serialise it without
        pickling.  Export only *state*; configuration is reconstructed by
        the restoring side's factory and guarded by
        :meth:`config_signature`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement export_state()"
        )

    def restore_state(self, payload: Dict[str, Any]) -> None:
        """Fold an :meth:`export_state` payload into this accumulator.

        Same preconditions as :meth:`merge`: this side must be post-bind /
        pre-finalize on a pool-compatible frame, the exporting side must
        have carried an equal :meth:`config_signature`, and payloads must
        be applied in row order (checkpointed prefix before the delta
        scan).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement restore_state()"
        )

    def config_signature(self) -> tuple:
        """Hashable identity of this accumulator's configuration.

        Merging two accumulators — and restoring a checkpointed state into
        a freshly bound instance — is only defined when their signatures
        are equal.  Accumulators with configuration (a column side, a label
        table, an oracle) override this to include it; fields that may
        legitimately advance between incremental updates (a growing window
        end) are deliberately left out by the override.
        """
        return (type(self).__qualname__, self.name)

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        for name in self._TRANSIENT:
            state.pop(name, None)
        return state

    # -- convenience ----------------------------------------------------------------
    def run(self, source: FrameLike) -> Any:
        """Run just this accumulator over ``source`` (one pass)."""
        return AnalysisEngine([self]).run(source)[self.name]


class EngineResult:
    """Mapping of accumulator name → finalised result for one pass."""

    __slots__ = ("results", "rows_processed")

    def __init__(self, results: Dict[str, Any], rows_processed: int):
        self.results = results
        self.rows_processed = rows_processed

    def __getitem__(self, name: str) -> Any:
        return self.results[name]

    def __contains__(self, name: str) -> bool:
        return name in self.results

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def get(self, name: str, default: Any = None) -> Any:
        return self.results.get(name, default)

    def keys(self):
        return self.results.keys()

    def items(self):
        return self.results.items()


class AnalysisEngine:
    """Drives a set of accumulators through one streaming scan of a frame.

    The engine is where the "N figures, one pass" guarantee lives: however
    many accumulators are registered, ``run`` scans the row sequence exactly
    once, block by block, fanning each block out to every accumulator.
    """

    def __init__(self, accumulators: Sequence[Accumulator]):
        if not accumulators:
            raise AnalysisError("engine needs at least one accumulator")
        names = [accumulator.name for accumulator in accumulators]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate accumulator names: {sorted(names)}")
        self.accumulators = list(accumulators)

    def run(self, source: FrameLike, block_rows: int = BLOCK_ROWS) -> EngineResult:
        """One streaming scan over ``source``; returns every accumulator's result."""
        if block_rows <= 0:
            raise AnalysisError("block_rows must be positive")
        view = view_of(source)
        frame, rows = view.frame, view.rows
        consumers = [accumulator.bind_batch(frame) for accumulator in self.accumulators]
        for block in scan_blocks(rows, block_rows):
            for consume in consumers:
                consume(block)
        return EngineResult(
            {acc.name: acc.finalize() for acc in self.accumulators},
            rows_processed=len(rows),
        )


@dataclass(frozen=True)
class TxStats:
    """Dataset-characterisation statistics of one pass (Figure 2 counts).

    ``action_count`` counts rows (EOS actions / Tezos operations / XRP
    transactions); ``transaction_count`` collapses rows sharing a
    ``transaction_id`` (the paper's Figure 2 view of EOS traffic).
    """

    action_count: int
    transaction_count: int
    first_timestamp: Optional[float]
    last_timestamp: Optional[float]

    @property
    def duration_seconds(self) -> float:
        if self.first_timestamp is None or self.last_timestamp is None:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    def tps(self, count_actions: bool = False) -> float:
        """Average transactions (or actions) per second over the window."""
        duration = self.duration_seconds
        if duration <= 0:
            return 0.0
        count = self.action_count if count_actions else self.transaction_count
        return count / duration


class TxStatsAccumulator(Accumulator):
    """Row/transaction counts and the time window, in the shared pass.

    The transaction-id dedup is the one piece of per-row state that grows
    with the distinct count.  In ``exact`` mode (the default) it is a
    Python ``set`` of id strings — exact, and the measured kernel floor.
    In :mod:`~repro.common.statsmode` ``sketch`` mode the set is replaced
    by a :class:`~repro.common.sketches.HyperLogLog` over the frame's
    cached deterministic id hashes: state is O(1) in the row count and the
    distinct count is exact until the sketch's sparse limit, ~0.81 %
    standard error beyond it.
    """

    name = "tx_stats"

    def __init__(self, stats: Optional[str] = None):
        self.stats_mode = statsmode.resolve(stats)

    def _reset(self, frame: TxFrame) -> None:
        self._seen: set = set()
        # [row count, min timestamp, max timestamp]
        self._state: List = [0, None, None]
        # Restored-but-unmaterialised id column (packed-strings payload +
        # its cardinality).  The set it represents is only built when the
        # scan actually adds ids — an idle chain's checkpoint round-trip
        # never pays the per-id hashing.
        self._frozen_ids: Optional[Dict[str, Any]] = None
        self._frozen_count: int = 0
        self._hll: Optional[HyperLogLog] = (
            HyperLogLog() if self.stats_mode == statsmode.SKETCH else None
        )
        self._frame = frame

    def bind(self, frame: TxFrame) -> Step:
        self._reset(frame)
        state = self._state
        timestamps = frame.timestamp
        transaction_ids = frame.transaction_id
        if self._hll is not None:
            add_hash = self._hll.add_hash

            def dedup(row: int) -> None:
                add_hash(hash64(transaction_ids[row]))

        else:
            seen_add = self._seen.add

            def dedup(row: int) -> None:
                seen_add(transaction_ids[row])

        def step(row: int) -> None:
            state[0] += 1
            dedup(row)
            timestamp = timestamps[row]
            low = state[1]
            if low is None:
                state[1] = state[2] = timestamp
            elif timestamp < low:
                state[1] = timestamp
            elif timestamp > state[2]:
                state[2] = timestamp

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        self._reset(frame)
        state = self._state
        timestamps = frame.timestamp
        if self._hll is not None:
            hll = self._hll
            transaction_ids = frame.transaction_id

            def dedup(rows: RowIndices) -> None:
                hll.update(map(hash64, gather(transaction_ids, rows)))

        else:
            seen = self._seen
            transaction_ids = frame.transaction_id

            def dedup(rows: RowIndices) -> None:
                seen.update(gather(transaction_ids, rows))

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            state[0] += len(rows)
            dedup(rows)
            block_timestamps = gather(timestamps, rows)
            low = min(block_timestamps)
            high = max(block_timestamps)
            if state[1] is None or low < state[1]:
                state[1] = low
            if state[2] is None or high > state[2]:
                state[2] = high

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: ndarray min/max over the block's timestamps.

        The transaction-id dedup stays a C-level ``set.update`` — the id
        column is an object list by design (high cardinality) — so both
        backends pay that identical cost and the set contents match exactly.
        Index-row blocks (filtered chain views) gather ids with one object
        fancy-indexing call over the frame's cached id ndarray instead of a
        per-row ``__getitem__`` loop; the distinct-count semantics make the
        ``set`` itself the irreducible cost on both backends (measured in
        ``docs/architecture.md``).
        """
        self._reset(frame)
        state = self._state
        timestamps = frame.ndarray("timestamp")
        if self._hll is not None:
            # Sketch kernel: feed the frame's cached deterministic hash
            # column (one vectorized build per frame, shared across passes)
            # straight into the HyperLogLog — the per-block cost is a uint64
            # gather plus a register fold, with no per-id Python work.
            hll = self._hll
            np = kernels.numpy_module()
            hashes_nd = np.frombuffer(
                frame.transaction_id_hashes(), dtype=np.uint64
            )

            def dedup(rows: RowIndices) -> None:
                if isinstance(rows, range):
                    hll.update_np(hashes_nd[rows.start : rows.stop : rows.step])
                else:
                    hll.update_np(hashes_nd[as_index_rows(rows)])

        else:
            seen = self._seen
            transaction_ids = frame.transaction_id
            ids_nd = None

            def dedup(rows: RowIndices) -> None:
                nonlocal ids_nd
                if isinstance(rows, range):
                    seen.update(transaction_ids[rows.start : rows.stop : rows.step])
                else:
                    if ids_nd is None:
                        ids_nd = frame.transaction_ids_ndarray()
                    seen.update(ids_nd[as_index_rows(rows)].tolist())

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            state[0] += len(rows)
            dedup(rows)
            block = gather_np(timestamps, rows)
            low = float(block.min())
            high = float(block.max())
            if state[1] is None or low < state[1]:
                state[1] = low
            if state[2] is None or high > state[2]:
                state[2] = high

        return consume

    def merge(self, other: "TxStatsAccumulator") -> None:
        if self.stats_mode != other.stats_mode:
            raise AnalysisError(
                f"cannot merge {other.stats_mode!r}-mode tx_stats state into "
                f"an {self.stats_mode!r}-mode accumulator"
            )
        if self._hll is not None:
            self._hll.merge(other._hll)
            self._merge_window(other._state)
            return
        self._materialize_frozen()
        other._materialize_frozen()
        self._seen.update(other._seen)
        self._merge_window(other._state)

    def _merge_window(self, theirs: List) -> None:
        state = self._state
        state[0] += theirs[0]
        if theirs[1] is not None:
            if state[1] is None or theirs[1] < state[1]:
                state[1] = theirs[1]
            if state[2] is None or theirs[2] > state[2]:
                state[2] = theirs[2]

    def _materialize_frozen(self) -> None:
        """Fold a stashed restored id column into the live set."""
        frozen = getattr(self, "_frozen_ids", None)
        if frozen is not None:
            self._seen.update(unpack_strings(frozen))
            self._frozen_ids = None
            self._frozen_count = 0

    def export_state(self) -> Dict[str, Any]:
        # The transaction-id set is the single largest collection any
        # checkpoint carries; packing it as one joined blob is what makes
        # snapshotting O(bytes) instead of O(ids).  The export is
        # log-structured: a restored base column re-exports as-is (zero
        # joins, zero hashing) with the ids seen *since* the restore as a
        # small ``extra`` layer — so a steady-state update persists
        # O(delta), not O(history).  Once the live layer grows to a
        # meaningful fraction of the base, the layers compact into one
        # flat column (amortised O(1) per id; the layers may overlap on
        # transactions that straddled the watermark, and compaction —
        # like every count — goes through the set, which dedups exactly).
        if self._hll is not None:
            # Sketch-mode payloads are tiny (the register file or the
            # deduplicated sparse hash column) and need no layering.
            return {
                "rows": self._state[0],
                "first": self._state[1],
                "last": self._state[2],
                "hll": self._hll.export_state(),
            }
        frozen = getattr(self, "_frozen_ids", None)
        if frozen is not None and self._seen and (
            2 * len(self._seen) >= self._frozen_count
        ):
            self._materialize_frozen()
            frozen = None
        if frozen is not None:
            seen = frozen
            extra = pack_strings(self._seen) if self._seen else None
        else:
            seen = pack_strings(self._seen)
            extra = None
        return {
            "rows": self._state[0],
            "first": self._state[1],
            "last": self._state[2],
            "seen": seen,
            "extra": extra,
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        # Mode mismatches are normally caught upstream by the
        # ``config_signature`` gate; the payload-shape check here is
        # defense-in-depth so a cross-mode restore can never half-apply.
        if self._hll is not None:
            if "hll" not in payload:
                raise AnalysisError(
                    "tx_stats payload has exact-mode state; sketch-mode "
                    "restore requires a rescan"
                )
            self._hll.restore_state(payload["hll"])
            self._merge_window([payload["rows"], payload["first"], payload["last"]])
            return
        if "hll" in payload:
            raise AnalysisError(
                "tx_stats payload has sketch-mode state; exact-mode "
                "restore requires a rescan"
            )
        seen = payload["seen"]
        extra = payload.get("extra")
        if getattr(self, "_frozen_ids", None) is None and not self._seen:
            # Defer the base-column set build: the delta scan may never
            # touch this chain.  The stashed count is only trusted while
            # the live set stays empty — a non-empty ``extra`` layer (or
            # any scanned delta) forces exact set arithmetic at finalize.
            self._frozen_ids = seen
            self._frozen_count = seen["n"]
            if extra is not None:
                self._seen.update(unpack_strings(extra))
        else:
            self._materialize_frozen()
            self._seen.update(unpack_strings(seen))
            if extra is not None:
                self._seen.update(unpack_strings(extra))
        self._merge_window([payload["rows"], payload["first"], payload["last"]])

    def __getstate__(self) -> Dict[str, Any]:
        # Scanned-state pickling (the in-process shard tests) expects the
        # live set; fold any stashed restored column in first.
        self._materialize_frozen()
        return super().__getstate__()

    def config_signature(self) -> tuple:
        base = super().config_signature()
        if self.stats_mode == statsmode.SKETCH:
            hll = getattr(self, "_hll", None) or HyperLogLog()
            return base + (("sketch", "hll", hll.p, hll.sparse_limit),)
        # Exact mode keeps the historical signature, so pre-sketch
        # checkpoints stay restorable.
        return base

    def finalize(self) -> TxStats:
        if self._hll is not None:
            return TxStats(
                action_count=self._state[0],
                transaction_count=self._hll.count(),
                first_timestamp=self._state[1],
                last_timestamp=self._state[2],
            )
        if self._seen:
            self._materialize_frozen()
        return TxStats(
            action_count=self._state[0],
            transaction_count=len(self._seen) + self._frozen_count,
            first_timestamp=self._state[1],
            last_timestamp=self._state[2],
        )


def run_single_pass(
    source: FrameLike, accumulators: Sequence[Accumulator]
) -> EngineResult:
    """Convenience wrapper: one engine pass over ``source``."""
    return AnalysisEngine(accumulators).run(source)
