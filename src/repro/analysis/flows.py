"""Value-flow aggregation on the XRP ledger (Figure 12).

Figure 12 is a flow diagram from sender clusters through currencies to
receiver clusters, where the width of each band is the XRP-denominated value
moved by successful Payment transactions.  The aggregation needs the account
clusterer (usernames / parents) and the exchange-rate oracle (to convert IOU
amounts into XRP and to drop valueless tokens).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.records import ChainId, TransactionRecord
from repro.analysis.clustering import AccountClusterer
from repro.analysis.value import ExchangeRateOracle
from repro.xrp.amounts import XRP_CURRENCY


@dataclass(frozen=True)
class ValueFlow:
    """One aggregated band of the Figure 12 diagram."""

    sender_cluster: str
    receiver_cluster: str
    currency: str
    xrp_value: float
    payment_count: int


@dataclass
class ValueFlowReport:
    """The full Figure 12 aggregation."""

    flows: List[ValueFlow]
    total_xrp_value: float
    by_sender: Dict[str, float]
    by_receiver: Dict[str, float]
    by_currency: Dict[str, float]
    currency_face_value: Dict[str, float]

    def top_senders(self, limit: int = 10) -> List[Tuple[str, float]]:
        return sorted(self.by_sender.items(), key=lambda item: -item[1])[:limit]

    def top_receivers(self, limit: int = 10) -> List[Tuple[str, float]]:
        return sorted(self.by_receiver.items(), key=lambda item: -item[1])[:limit]

    def top_currencies(self, limit: int = 10) -> List[Tuple[str, float]]:
        return sorted(self.by_currency.items(), key=lambda item: -item[1])[:limit]

    def sender_share(self, cluster: str) -> float:
        if self.total_xrp_value <= 0:
            return 0.0
        return self.by_sender.get(cluster, 0.0) / self.total_xrp_value

    def top_sender_concentration(self, top_n: int = 10) -> float:
        """Share of total value sent by the ``top_n`` sender clusters (~51 %)."""
        if self.total_xrp_value <= 0:
            return 0.0
        top = sum(value for _, value in self.top_senders(top_n))
        return top / self.total_xrp_value


def aggregate_value_flows(
    records: Iterable[TransactionRecord],
    clusterer: AccountClusterer,
    oracle: ExchangeRateOracle,
    include_valueless: bool = False,
) -> ValueFlowReport:
    """Aggregate successful Payment transactions into Figure 12 flows.

    ``include_valueless`` keeps payments of tokens with no XRP rate (at zero
    value) in the payment counts — useful for the ablation comparing the
    paper's value-attribution rule against a face-value rule.
    """
    flows: Dict[Tuple[str, str, str], List[float]] = defaultdict(lambda: [0.0, 0])
    by_sender: Dict[str, float] = defaultdict(float)
    by_receiver: Dict[str, float] = defaultdict(float)
    by_currency: Dict[str, float] = defaultdict(float)
    face_value: Dict[str, float] = defaultdict(float)
    total = 0.0
    for record in records:
        if record.chain is not ChainId.XRP:
            continue
        if record.type != "Payment" or not record.success or record.amount <= 0:
            continue
        rate = oracle.rate(record.currency or XRP_CURRENCY, record.issuer)
        xrp_value = record.amount * rate
        if rate <= 0 and not include_valueless:
            continue
        sender_cluster = clusterer.cluster_of(record.sender)
        receiver_cluster = clusterer.cluster_of(record.receiver)
        currency = record.currency or XRP_CURRENCY
        key = (sender_cluster, receiver_cluster, currency)
        flows[key][0] += xrp_value
        flows[key][1] += 1
        by_sender[sender_cluster] += xrp_value
        by_receiver[receiver_cluster] += xrp_value
        by_currency[currency] += xrp_value
        face_value[currency] += record.amount
        total += xrp_value
    flow_list = [
        ValueFlow(
            sender_cluster=sender,
            receiver_cluster=receiver,
            currency=currency,
            xrp_value=value,
            payment_count=int(count),
        )
        for (sender, receiver, currency), (value, count) in flows.items()
    ]
    flow_list.sort(key=lambda flow: -flow.xrp_value)
    return ValueFlowReport(
        flows=flow_list,
        total_xrp_value=total,
        by_sender=dict(by_sender),
        by_receiver=dict(by_receiver),
        by_currency=dict(by_currency),
        currency_face_value=dict(face_value),
    )
