"""Value-flow aggregation on the XRP ledger (Figure 12).

Figure 12 is a flow diagram from sender clusters through currencies to
receiver clusters, where the width of each band is the XRP-denominated value
moved by successful Payment transactions.  The aggregation needs the account
clusterer (usernames / parents) and the exchange-rate oracle (to convert IOU
amounts into XRP and to drop valueless tokens).  It is implemented as a
single-pass accumulator: cluster labels and exchange rates are cached per
interned account/currency code, so the per-row cost inside the engine's
shared pass is a few dict lookups.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.common import kernels
from repro.common.columns import CHAIN_CODES, FrameLike, TxFrame, as_frame
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.clustering import AccountClusterer
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, gather
from repro.analysis.vectorized import block_columns, matched_rows
from repro.common.statecodec import pack_strings, unpack_strings
from repro.analysis.value import ExchangeRateOracle
from repro.xrp.amounts import XRP_CURRENCY


@dataclass(frozen=True)
class ValueFlow:
    """One aggregated band of the Figure 12 diagram."""

    sender_cluster: str
    receiver_cluster: str
    currency: str
    xrp_value: float
    payment_count: int


@dataclass
class ValueFlowReport:
    """The full Figure 12 aggregation."""

    flows: List[ValueFlow]
    total_xrp_value: float
    by_sender: Dict[str, float]
    by_receiver: Dict[str, float]
    by_currency: Dict[str, float]
    currency_face_value: Dict[str, float]

    def top_senders(self, limit: int = 10) -> List[Tuple[str, float]]:
        return sorted(self.by_sender.items(), key=lambda item: -item[1])[:limit]

    def top_receivers(self, limit: int = 10) -> List[Tuple[str, float]]:
        return sorted(self.by_receiver.items(), key=lambda item: -item[1])[:limit]

    def top_currencies(self, limit: int = 10) -> List[Tuple[str, float]]:
        return sorted(self.by_currency.items(), key=lambda item: -item[1])[:limit]

    def sender_share(self, cluster: str) -> float:
        if self.total_xrp_value <= 0:
            return 0.0
        return self.by_sender.get(cluster, 0.0) / self.total_xrp_value

    def top_sender_concentration(self, top_n: int = 10) -> float:
        """Share of total value sent by the ``top_n`` sender clusters (~51 %)."""
        if self.total_xrp_value <= 0:
            return 0.0
        top = sum(value for _, value in self.top_senders(top_n))
        return top / self.total_xrp_value


class ValueFlowAccumulator(Accumulator):
    """Single-pass Figure 12 aggregation of successful Payment value."""

    name = "value_flows"

    def __init__(
        self,
        clusterer: AccountClusterer,
        oracle: ExchangeRateOracle,
        include_valueless: bool = False,
    ):
        self.clusterer = clusterer
        self.oracle = oracle
        self.include_valueless = include_valueless

    def bind(self, frame: TxFrame) -> Step:
        flows = self._flows = defaultdict(lambda: [0.0, 0])
        by_sender = self._by_sender = defaultdict(float)
        by_receiver = self._by_receiver = defaultdict(float)
        by_currency = self._by_currency = defaultdict(float)
        face_value = self._face_value = defaultdict(float)
        totals = self._totals = [0.0]
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        success = frame.success
        amounts = frame.amount
        sender_codes = frame.sender_code
        receiver_codes = frame.receiver_code
        currency_codes = frame.currency_code
        issuer_codes = frame.issuer_code
        currency_values = frame.currencies.values
        account_values = frame.accounts.values
        xrp = CHAIN_CODES[ChainId.XRP]
        payment_code = frame.types.code("Payment")
        include_valueless = self.include_valueless
        rate_of = self.oracle.rate
        cluster_of = self.clusterer.cluster_of
        rate_cache: Dict[Tuple[int, int], float] = {}
        cluster_cache: Dict[int, str] = {}
        currency_cache: Dict[int, str] = {}

        def step(row: int) -> None:
            if chain_codes[row] != xrp:
                return
            if type_codes[row] != payment_code or not success[row]:
                return
            amount = amounts[row]
            if amount <= 0:
                return
            currency_code = currency_codes[row]
            key = (currency_code, issuer_codes[row])
            rate = rate_cache.get(key)
            if rate is None:
                rate = rate_cache[key] = rate_of(
                    currency_values[currency_code] or XRP_CURRENCY,
                    account_values[key[1]],
                )
            if rate <= 0 and not include_valueless:
                return
            sender_code = sender_codes[row]
            sender_cluster = cluster_cache.get(sender_code)
            if sender_cluster is None:
                sender_cluster = cluster_cache[sender_code] = cluster_of(
                    account_values[sender_code]
                )
            receiver_code = receiver_codes[row]
            receiver_cluster = cluster_cache.get(receiver_code)
            if receiver_cluster is None:
                receiver_cluster = cluster_cache[receiver_code] = cluster_of(
                    account_values[receiver_code]
                )
            currency = currency_cache.get(currency_code)
            if currency is None:
                currency = currency_cache[currency_code] = (
                    currency_values[currency_code] or XRP_CURRENCY
                )
            xrp_value = amount * rate
            flow = flows[(sender_cluster, receiver_cluster, currency)]
            flow[0] += xrp_value
            flow[1] += 1
            by_sender[sender_cluster] += xrp_value
            by_receiver[receiver_cluster] += xrp_value
            by_currency[currency] += xrp_value
            face_value[currency] += amount
            totals[0] += xrp_value

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        step = self.bind(frame)
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        success = frame.success
        xrp = CHAIN_CODES[ChainId.XRP]
        payment_code = frame.types.code("Payment")

        def consume(rows: RowIndices) -> None:
            # Cheap vectorised pre-filter: only successful XRP payments reach
            # the per-row aggregation.
            for row, chain, type_code, ok in zip(
                rows,
                gather(chain_codes, rows),
                gather(type_codes, rows),
                gather(success, rows),
            ):
                if chain == xrp and ok and type_code == payment_code:
                    step(row)

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Boolean-mask kernel in front of the ordered per-row aggregation.

        The prefilter (chain, type, success, positive amount) is one mask
        per block; the surviving value payments then flow through the exact
        per-row float accumulation of :meth:`bind` **in row order**, which
        is what keeps the Figure 12 sums bit-for-bit identical to the
        reference backend on the serial path.
        """
        step = self.bind(frame)
        chain_codes = frame.ndarray("chain_code")
        type_codes = frame.ndarray("type_code")
        success = frame.ndarray("success")
        amounts = frame.ndarray("amount")
        xrp = CHAIN_CODES[ChainId.XRP]
        payment_code = frame.types.code("Payment")
        payment = -1 if payment_code is None else payment_code

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            chain, types, ok, block_amounts = block_columns(
                rows, chain_codes, type_codes, success, amounts
            )
            mask = (
                (chain == xrp)
                & (types == payment)
                & (ok != 0)
                & (block_amounts > 0)
            )
            if not mask.any():
                return
            for row in matched_rows(rows, mask).tolist():
                step(row)

        return consume

    def merge(self, other: "ValueFlowAccumulator") -> None:
        """Fold another shard's flow aggregates into this accumulator.

        Counts, keys and their order merge exactly; the XRP-value sums add
        shard subtotals, so they can differ from a strictly serial scan by
        floating-point rounding in the last few ulps (see
        ``docs/architecture.md``).
        """
        flows = self._flows
        for key, (value, count) in other._flows.items():
            flow = flows.get(key)
            if flow is None:
                flows[key] = [value, count]
            else:
                flow[0] += value
                flow[1] += count
        for mine, theirs in (
            (self._by_sender, other._by_sender),
            (self._by_receiver, other._by_receiver),
            (self._by_currency, other._by_currency),
            (self._face_value, other._face_value),
        ):
            for key, value in theirs.items():
                mine[key] = mine.get(key, 0.0) + value
        self._totals[0] += other._totals[0]

    def config_signature(self) -> tuple:
        clusterer_signature = getattr(self.clusterer, "signature", None)
        return (
            type(self).__qualname__,
            self.name,
            self.include_valueless,
            self.oracle.signature(),
            clusterer_signature() if clusterer_signature else type(self.clusterer).__qualname__,
        )

    def __getstate__(self):
        # The flow table's default factory is a lambda; snapshot the
        # aggregates as plain dicts so scanned state pickles cleanly.
        state = super().__getstate__()
        if "_flows" in state:
            state["_flows"] = {key: list(value) for key, value in state["_flows"].items()}
        for name in ("_by_sender", "_by_receiver", "_by_currency", "_face_value"):
            if name in state:
                state[name] = dict(state[name])
        return state

    @staticmethod
    def _pack_float_table(table) -> Dict:
        return {"keys": pack_strings(table.keys()), "values": array("d", table.values())}

    @staticmethod
    def _restore_float_table(target, payload) -> None:
        for key, value in zip(unpack_strings(payload["keys"]), payload["values"]):
            target[key] = target.get(key, 0.0) + value

    def export_state(self) -> Dict:
        flows = self._flows
        keys = list(flows.keys())
        return {
            "flow_senders": pack_strings([key[0] for key in keys]),
            "flow_receivers": pack_strings([key[1] for key in keys]),
            "flow_currencies": pack_strings([key[2] for key in keys]),
            "flow_values": array("d", (entry[0] for entry in flows.values())),
            "flow_counts": array("q", (entry[1] for entry in flows.values())),
            "by_sender": self._pack_float_table(self._by_sender),
            "by_receiver": self._pack_float_table(self._by_receiver),
            "by_currency": self._pack_float_table(self._by_currency),
            "face_value": self._pack_float_table(self._face_value),
            "total": self._totals[0],
        }

    def restore_state(self, payload: Dict) -> None:
        """Payload twin of :meth:`merge` — same float caveat on shard sums;
        restoring a *serial* snapshot into zeroed state replays the serial
        sums bit-for-bit (the float64 columns are exact)."""
        flows = self._flows
        for sender, receiver, currency, value, count in zip(
            unpack_strings(payload["flow_senders"]),
            unpack_strings(payload["flow_receivers"]),
            unpack_strings(payload["flow_currencies"]),
            payload["flow_values"],
            payload["flow_counts"],
        ):
            flow = flows[(sender, receiver, currency)]
            flow[0] += value
            flow[1] += count
        for name in ("by_sender", "by_receiver", "by_currency", "face_value"):
            self._restore_float_table(getattr(self, "_" + name), payload[name])
        self._totals[0] += payload["total"]

    def finalize(self) -> ValueFlowReport:
        flow_list = [
            ValueFlow(
                sender_cluster=sender,
                receiver_cluster=receiver,
                currency=currency,
                xrp_value=value,
                payment_count=int(count),
            )
            for (sender, receiver, currency), (value, count) in self._flows.items()
        ]
        flow_list.sort(key=lambda flow: -flow.xrp_value)
        return ValueFlowReport(
            flows=flow_list,
            total_xrp_value=self._totals[0],
            by_sender=dict(self._by_sender),
            by_receiver=dict(self._by_receiver),
            by_currency=dict(self._by_currency),
            currency_face_value=dict(self._face_value),
        )


def aggregate_value_flows(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    clusterer: AccountClusterer,
    oracle: ExchangeRateOracle,
    include_valueless: bool = False,
) -> ValueFlowReport:
    """Aggregate successful Payment transactions into Figure 12 flows.

    ``include_valueless`` keeps payments of tokens with no XRP rate (at zero
    value) in the payment counts — useful for the ablation comparing the
    paper's value-attribution rule against a face-value rule.  Thin wrapper
    over :class:`ValueFlowAccumulator` (one pass).
    """
    accumulator = ValueFlowAccumulator(clusterer, oracle, include_valueless)
    return accumulator.run(as_frame(records))
