"""Tezos governance analysis (§4.2 and Figure 9).

The paper analyses the Babylon 2.0 amendment: the evolution of proposal
upvotes, the exploration-period ballots (no ``nay`` votes, one explicit
``pass``), the promotion-period ballots (~15 % ``nay`` after breakages on the
test network), and the participation rates of each period.  It also counts
how rare governance operations are within the observation window and argues
that the proposal and exploration periods could be merged.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common import kernels
from repro.common.columns import CHAIN_CODES, CHAIN_ORDER, FrameLike, TxFrame, as_frame
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, gather
from repro.analysis.vectorized import block_columns, count_codes
from repro.common.statecodec import pack_code_table, restore_code_table
from repro.tezos.governance import (
    BallotChoice,
    VoteEvent,
    VotingPeriodKind,
    cumulative_vote_series,
)


@dataclass(frozen=True)
class PeriodSummary:
    """Vote summary of one ballot period (exploration or promotion)."""

    period: VotingPeriodKind
    yay: int
    nay: int
    passes: int
    participation: float

    @property
    def total(self) -> int:
        return self.yay + self.nay + self.passes

    @property
    def approval_rate(self) -> float:
        decided = self.yay + self.nay
        return self.yay / decided if decided else 0.0

    @property
    def nay_share(self) -> float:
        return self.nay / self.total if self.total else 0.0


@dataclass(frozen=True)
class GovernanceReport:
    """Findings of the governance case study."""

    proposal_votes: Dict[str, int]
    winning_proposal: str
    proposal_participation: float
    exploration: PeriodSummary
    promotion: PeriodSummary
    governance_operation_count: int

    @property
    def exploration_unanimous(self) -> bool:
        """The paper observes zero ``nay`` votes during exploration."""
        return self.exploration.nay == 0

    @property
    def could_merge_periods(self) -> bool:
        """The paper's recommendation holds when exploration approval is ~unanimous."""
        return self.exploration.approval_rate >= 0.99


def summarize_period(
    events: Sequence[VoteEvent], period: VotingPeriodKind, electorate_rolls: int
) -> PeriodSummary:
    """Tally one ballot period from the vote-event stream."""
    yay = sum(event.rolls for event in events if event.period is period and event.ballot == "yay")
    nay = sum(event.rolls for event in events if event.period is period and event.ballot == "nay")
    passes = sum(
        event.rolls for event in events if event.period is period and event.ballot == "pass"
    )
    voters = sum(1 for event in events if event.period is period and event.ballot)
    participation = voters / electorate_rolls if electorate_rolls else 0.0
    return PeriodSummary(
        period=period, yay=yay, nay=nay, passes=passes, participation=min(1.0, participation)
    )


class GovernanceOpsAccumulator(Accumulator):
    """Single-pass count of on-chain governance operations (§4.2 rarity)."""

    name = "governance_ops"

    def bind(self, frame: TxFrame) -> Step:
        count = self._count = [0]
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        tezos = CHAIN_CODES[ChainId.TEZOS]
        governance_codes = {
            code
            for code in (frame.types.code("Ballot"), frame.types.code("Proposals"))
            if code is not None
        }

        def step(row: int) -> None:
            if chain_codes[row] == tezos and type_codes[row] in governance_codes:
                count[0] += 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        self._count = [0]
        self._bulk = Counter()
        bulk = self._bulk
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        self._frame = frame

        def consume(rows: RowIndices) -> None:
            bulk.update(zip(gather(chain_codes, rows), gather(type_codes, rows)))

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: (chain, type) packed-code histogram."""
        self._count = [0]
        bulk = self._bulk = Counter()
        chain_codes = frame.ndarray("chain_code")
        type_codes = frame.ndarray("type_code")
        sizes = (len(CHAIN_ORDER), len(frame.types))
        self._frame = frame

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            count_codes(bulk, block_columns(rows, chain_codes, type_codes), sizes)

        return consume

    def merge(self, other: "GovernanceOpsAccumulator") -> None:
        self._count[0] += other._count[0]
        other_bulk = getattr(other, "_bulk", None)
        if other_bulk:
            mine = getattr(self, "_bulk", None)
            if mine is None:
                mine = self._bulk = Counter()
            mine.update(other_bulk)

    def export_state(self) -> Dict:
        bulk = getattr(self, "_bulk", None)
        return {
            "count": self._count[0],
            "bulk": pack_code_table(bulk, 2) if bulk else None,
        }

    def restore_state(self, payload: Dict) -> None:
        self._count[0] += payload["count"]
        bulk = payload["bulk"]
        if bulk is not None:
            mine = getattr(self, "_bulk", None)
            if mine is None:
                mine = self._bulk = Counter()
            restore_code_table(mine, bulk)

    def finalize(self) -> int:
        bulk = getattr(self, "_bulk", None)
        if bulk is not None:
            frame = self._frame
            tezos = CHAIN_CODES[ChainId.TEZOS]
            governance_codes = {
                code
                for code in (frame.types.code("Ballot"), frame.types.code("Proposals"))
                if code is not None
            }
            self._count[0] = sum(
                count
                for (chain, type_code), count in bulk.items()
                if chain == tezos and type_code in governance_codes
            )
            self._bulk = None
        return self._count[0]


def count_governance_operations(
    records: Union[FrameLike, Iterable[TransactionRecord]]
) -> int:
    """Number of Ballot/Proposals operations in a record stream (one pass)."""
    return GovernanceOpsAccumulator().run(as_frame(records))


def analyze_governance(
    events: Sequence[VoteEvent],
    records: Optional[Union[FrameLike, Iterable[TransactionRecord]]] = None,
    electorate_rolls: int = 460,
) -> GovernanceReport:
    """Compute the §4.2 governance statistics."""
    proposal_votes: Counter = Counter()
    proposal_voters = 0
    for event in events:
        if event.period is VotingPeriodKind.PROPOSAL and event.proposal:
            proposal_votes[event.proposal] += event.rolls
            proposal_voters += 1
    winning = max(proposal_votes.items(), key=lambda item: item[1])[0] if proposal_votes else ""
    governance_ops = 0
    if records is not None:
        governance_ops = count_governance_operations(records)
    return GovernanceReport(
        proposal_votes=dict(proposal_votes),
        winning_proposal=winning,
        proposal_participation=min(1.0, proposal_voters / electorate_rolls)
        if electorate_rolls
        else 0.0,
        exploration=summarize_period(events, VotingPeriodKind.EXPLORATION, electorate_rolls),
        promotion=summarize_period(events, VotingPeriodKind.PROMOTION, electorate_rolls),
        governance_operation_count=governance_ops,
    )


def figure9_series(
    events: Sequence[VoteEvent],
) -> Dict[str, Dict[str, List[Tuple[float, int]]]]:
    """The three Figure 9 panels as cumulative (timestamp, votes) series.

    Panel (a) plots the two competing proposals during the proposal period;
    panels (b) and (c) plot the yay / nay / pass ballots during exploration
    and promotion.
    """
    proposals = sorted(
        {event.proposal for event in events if event.period is VotingPeriodKind.PROPOSAL and event.proposal}
    )
    panels: Dict[str, Dict[str, List[Tuple[float, int]]]] = {
        "proposal": {
            name: cumulative_vote_series(list(events), VotingPeriodKind.PROPOSAL, name)
            for name in proposals
        },
        "exploration": {
            choice.value: cumulative_vote_series(
                list(events), VotingPeriodKind.EXPLORATION, choice.value
            )
            for choice in BallotChoice
        },
        "promotion": {
            choice.value: cumulative_vote_series(
                list(events), VotingPeriodKind.PROMOTION, choice.value
            )
            for choice in BallotChoice
        },
    }
    return panels
