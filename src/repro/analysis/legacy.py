"""Frozen record-based reference implementations of the analysis passes.

Before the single-pass engine landed, every public analysis function walked
the whole ``List[TransactionRecord]`` on its own.  Those seed loops are kept
here, verbatim, for two purposes:

* the **equivalence tests** assert that each accumulator produces exactly
  the result its record-based predecessor produced;
* the **engine benchmark** measures the seed's sum-of-individual-passes cost
  as the baseline the combined single-pass report must beat.

Nothing in the production pipeline imports this module; its only consumers
are ``tests/`` and ``benchmarks/``.  Do not "optimise" these functions —
their value is being a faithful copy of the seed behaviour.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.clock import timestamp_from_iso
from repro.common.errors import AnalysisError
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.accounts import AccountActivity, SenderProfile, _breakdown
from repro.analysis.airdrop import (
    EIDOS_CONTRACT,
    AirdropReport,
    BoomerangClaim,
)
from repro.analysis.classify import (
    TypeDistributionRow,
    classify_eos_category,
    figure1_group,
)
from repro.analysis.clustering import AccountClusterer
from repro.analysis.flows import ValueFlow, ValueFlowReport
from repro.analysis.throughput import DEFAULT_BIN_SECONDS, ThroughputSeries
from repro.analysis.value import ExchangeRateOracle, ThroughputDecomposition
from repro.analysis.washtrading import (
    TRADE_ACTION,
    WHALEEX_CONTRACT,
    TradeObservation,
    WashTradingReport,
    net_balance_changes,
)
from repro.xrp.amounts import XRP_CURRENCY


# -- classify -------------------------------------------------------------------------
def type_distribution(records: Iterable[TransactionRecord]) -> List[TypeDistributionRow]:
    """Seed implementation of Figure 1 (one dedicated pass)."""
    counts: Counter = Counter()
    totals: Counter = Counter()
    for record in records:
        group = figure1_group(record)
        type_name = record.type
        if record.chain is ChainId.EOS and group == "Others":
            type_name = "Others"
        counts[(record.chain, group, type_name)] += 1
        totals[record.chain] += 1
    rows: List[TypeDistributionRow] = []
    for (chain, group, type_name), count in counts.items():
        total = totals[chain]
        rows.append(
            TypeDistributionRow(
                chain=chain,
                group=group,
                type_name=type_name,
                count=count,
                share=count / total if total else 0.0,
            )
        )
    rows.sort(key=lambda row: (row.chain.value, row.group, -row.count, row.type_name))
    return rows


def category_distribution(
    records: Iterable[TransactionRecord],
    label_table: Optional[Mapping[str, str]] = None,
) -> Dict[str, float]:
    """Seed implementation of the EOS category shares (one dedicated pass)."""
    counts: Counter = Counter()
    total = 0
    for record in records:
        if record.chain is not ChainId.EOS:
            continue
        counts[classify_eos_category(record, label_table)] += 1
        total += 1
    if total == 0:
        return {}
    return {category: count / total for category, count in sorted(counts.items())}


def tezos_category_distribution(records: Iterable[TransactionRecord]) -> Dict[str, float]:
    """Seed implementation of the Tezos category shares (one dedicated pass)."""
    counts: Counter = Counter()
    total = 0
    for record in records:
        if record.chain is not ChainId.TEZOS:
            continue
        category = str(record.metadata.get("category", "manager"))
        counts[category] += 1
        total += 1
    if total == 0:
        return {}
    return {category: count / total for category, count in sorted(counts.items())}


# -- throughput -----------------------------------------------------------------------
def bin_throughput(
    records: Iterable[TransactionRecord],
    categorizer: Callable[[TransactionRecord], str],
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> ThroughputSeries:
    """Seed implementation of the Figure 3 binning (one dedicated pass)."""
    if bin_seconds <= 0:
        raise AnalysisError("bin_seconds must be positive")
    materialized = list(records)
    if not materialized:
        raise AnalysisError("cannot bin an empty record stream")
    timestamps = [record.timestamp for record in materialized]
    series_start = start if start is not None else min(timestamps)
    series_end = end if end is not None else max(timestamps)
    if series_end < series_start:
        raise AnalysisError("end must not precede start")
    bin_count = int((series_end - series_start) // bin_seconds) + 1
    bins: List[Dict[str, int]] = [defaultdict(int) for _ in range(bin_count)]
    categories: Dict[str, None] = {}
    for record in materialized:
        if record.timestamp < series_start or record.timestamp > series_end:
            continue
        index = int((record.timestamp - series_start) // bin_seconds)
        category = categorizer(record)
        categories[category] = None
        bins[index][category] += 1
    return ThroughputSeries(
        bin_seconds=bin_seconds,
        start=series_start,
        categories=tuple(categories),
        bins=[dict(bin_counts) for bin_counts in bins],
    )


# -- accounts -------------------------------------------------------------------------
def top_receivers(
    records: Iterable[TransactionRecord],
    limit: int = 10,
    key: Optional[Callable[[TransactionRecord], str]] = None,
) -> List[AccountActivity]:
    """Seed implementation of the Figure 4 ranking (one dedicated pass)."""
    key = key or (lambda record: record.receiver)
    per_account: Dict[str, Counter] = defaultdict(Counter)
    chain_total = 0
    for record in records:
        receiver = key(record)
        if not receiver:
            continue
        per_account[receiver][record.type] += 1
        chain_total += 1
    ranked = sorted(per_account.items(), key=lambda item: (-sum(item[1].values()), item[0]))
    result = []
    for account, counter in ranked[:limit]:
        total = sum(counter.values())
        result.append(
            AccountActivity(
                account=account,
                total=total,
                share_of_chain=total / chain_total if chain_total else 0.0,
                type_breakdown=_breakdown(counter),
            )
        )
    return result


def top_senders(
    records: Iterable[TransactionRecord],
    limit: int = 10,
    key: Optional[Callable[[TransactionRecord], str]] = None,
) -> List[AccountActivity]:
    """Seed implementation of the Figure 8 ranking (one dedicated pass)."""
    key = key or (lambda record: record.sender)
    per_account: Dict[str, Counter] = defaultdict(Counter)
    chain_total = 0
    for record in records:
        sender = key(record)
        if not sender:
            continue
        per_account[sender][record.type] += 1
        chain_total += 1
    ranked = sorted(per_account.items(), key=lambda item: (-sum(item[1].values()), item[0]))
    result = []
    for account, counter in ranked[:limit]:
        total = sum(counter.values())
        result.append(
            AccountActivity(
                account=account,
                total=total,
                share_of_chain=total / chain_total if chain_total else 0.0,
                type_breakdown=_breakdown(counter),
            )
        )
    return result


def top_sender_receiver_pairs(
    records: Iterable[TransactionRecord],
    limit_senders: int = 5,
    limit_receivers_per_sender: int = 5,
) -> List[SenderProfile]:
    """Seed implementation of the Figure 5/6 profiles (one dedicated pass)."""
    per_sender: Dict[str, Counter] = defaultdict(Counter)
    for record in records:
        if not record.sender:
            continue
        per_sender[record.sender][record.receiver or "(none)"] += 1
    ranked = sorted(per_sender.items(), key=lambda item: (-sum(item[1].values()), item[0]))
    profiles: List[SenderProfile] = []
    for sender, counter in ranked[:limit_senders]:
        sent_count = sum(counter.values())
        counts = list(counter.values())
        unique = len(counts)
        mean = sent_count / unique if unique else 0.0
        variance = (
            sum((count - mean) ** 2 for count in counts) / unique if unique else 0.0
        )
        top = [
            (receiver, count, count / sent_count if sent_count else 0.0)
            for receiver, count in counter.most_common(limit_receivers_per_sender)
        ]
        profiles.append(
            SenderProfile(
                sender=sender,
                sent_count=sent_count,
                unique_receivers=unique,
                mean_per_receiver=mean,
                stdev_per_receiver=math.sqrt(variance),
                top_receivers=tuple(top),
            )
        )
    return profiles


def traffic_concentration(
    records: Iterable[TransactionRecord], top_n: int = 18
) -> float:
    """Seed implementation of the §3.3 concentration (one dedicated pass)."""
    counter: Counter = Counter()
    total = 0
    for record in records:
        if not record.sender:
            continue
        counter[record.sender] += 1
        total += 1
    if total == 0:
        return 0.0
    top = sum(count for _, count in counter.most_common(top_n))
    return top / total


def transactions_per_account_distribution(
    records: Iterable[TransactionRecord],
) -> Dict[str, int]:
    """Seed implementation of the per-sender counts (one dedicated pass)."""
    counter: Counter = Counter()
    for record in records:
        if record.sender:
            counter[record.sender] += 1
    return dict(counter)


def single_transaction_account_share(records: Iterable[TransactionRecord]) -> float:
    """Seed implementation of the one-shot-account share (one dedicated pass)."""
    distribution = transactions_per_account_distribution(records)
    if not distribution:
        return 0.0
    singles = sum(1 for count in distribution.values() if count == 1)
    return singles / len(distribution)


# -- value ----------------------------------------------------------------------------
def decompose(
    records: Iterable[TransactionRecord], oracle: ExchangeRateOracle
) -> ThroughputDecomposition:
    """Seed implementation of the Figure 7 decomposition (one dedicated pass)."""
    total = failed = payments = payments_value = 0
    offers = offers_exchanged = others = 0
    for record in records:
        if record.chain is not ChainId.XRP:
            continue
        total += 1
        if not record.success:
            failed += 1
            continue
        if record.type == "Payment":
            payments += 1
            if (
                record.amount > 0
                and oracle.has_value(record.currency, record.issuer)
            ):
                payments_value += 1
        elif record.type == "OfferCreate":
            offers += 1
            if bool(record.metadata.get("executed")):
                offers_exchanged += 1
        else:
            others += 1
    successful = total - failed
    return ThroughputDecomposition(
        total=total,
        failed=failed,
        successful=successful,
        payments=payments,
        payments_with_value=payments_value,
        payments_without_value=payments - payments_value,
        offers=offers,
        offers_exchanged=offers_exchanged,
        offers_not_exchanged=offers - offers_exchanged,
        others=others,
    )


# -- flows ----------------------------------------------------------------------------
def aggregate_value_flows(
    records: Iterable[TransactionRecord],
    clusterer: AccountClusterer,
    oracle: ExchangeRateOracle,
    include_valueless: bool = False,
) -> ValueFlowReport:
    """Seed implementation of the Figure 12 aggregation (one dedicated pass)."""
    flows: Dict[Tuple[str, str, str], List[float]] = defaultdict(lambda: [0.0, 0])
    by_sender: Dict[str, float] = defaultdict(float)
    by_receiver: Dict[str, float] = defaultdict(float)
    by_currency: Dict[str, float] = defaultdict(float)
    face_value: Dict[str, float] = defaultdict(float)
    total = 0.0
    for record in records:
        if record.chain is not ChainId.XRP:
            continue
        if record.type != "Payment" or not record.success or record.amount <= 0:
            continue
        rate = oracle.rate(record.currency or XRP_CURRENCY, record.issuer)
        xrp_value = record.amount * rate
        if rate <= 0 and not include_valueless:
            continue
        sender_cluster = clusterer.cluster_of(record.sender)
        receiver_cluster = clusterer.cluster_of(record.receiver)
        currency = record.currency or XRP_CURRENCY
        key = (sender_cluster, receiver_cluster, currency)
        flows[key][0] += xrp_value
        flows[key][1] += 1
        by_sender[sender_cluster] += xrp_value
        by_receiver[receiver_cluster] += xrp_value
        by_currency[currency] += xrp_value
        face_value[currency] += record.amount
        total += xrp_value
    flow_list = [
        ValueFlow(
            sender_cluster=sender,
            receiver_cluster=receiver,
            currency=currency,
            xrp_value=value,
            payment_count=int(count),
        )
        for (sender, receiver, currency), (value, count) in flows.items()
    ]
    flow_list.sort(key=lambda flow: -flow.xrp_value)
    return ValueFlowReport(
        flows=flow_list,
        total_xrp_value=total,
        by_sender=dict(by_sender),
        by_receiver=dict(by_receiver),
        by_currency=dict(by_currency),
        currency_face_value=dict(face_value),
    )


# -- wash trading ---------------------------------------------------------------------
def analyze_wash_trading(
    records: Iterable[TransactionRecord],
    contract: str = WHALEEX_CONTRACT,
    top_n: int = 5,
) -> WashTradingReport:
    """Seed implementation of the §4.1 wash-trading pass."""
    trades: List[TradeObservation] = []
    for record in records:
        if record.chain is not ChainId.EOS:
            continue
        if record.receiver != contract or record.type != TRADE_ACTION:
            continue
        buyer = str(record.metadata.get("buyer", record.sender))
        seller = str(record.metadata.get("seller", record.sender))
        trades.append(
            TradeObservation(
                buyer=buyer,
                seller=seller,
                symbol=record.currency or str(record.metadata.get("symbol", "")),
                amount=record.amount,
                timestamp=record.timestamp,
            )
        )
    if not trades:
        return WashTradingReport(
            contract=contract,
            trade_count=0,
            top_accounts=(),
            top_accounts_trade_share=0.0,
            self_trade_share_overall=0.0,
            self_trade_share_by_account={},
            net_balance_change_by_account={},
        )
    involvement: Counter = Counter()
    for trade in trades:
        involvement[trade.buyer] += 1
        if trade.seller != trade.buyer:
            involvement[trade.seller] += 1
    top_accounts = tuple(account for account, _ in involvement.most_common(top_n))
    top_set = set(top_accounts)
    involved_in_top = sum(
        1 for trade in trades if trade.buyer in top_set or trade.seller in top_set
    )
    self_share_overall = sum(1 for trade in trades if trade.is_self_trade) / len(trades)
    self_by_account: Dict[str, float] = {}
    for account in top_accounts:
        own = [
            trade for trade in trades if trade.buyer == account or trade.seller == account
        ]
        if own:
            self_by_account[account] = sum(1 for trade in own if trade.is_self_trade) / len(own)
        else:
            self_by_account[account] = 0.0
    net_changes = net_balance_changes(trades, top_accounts)
    return WashTradingReport(
        contract=contract,
        trade_count=len(trades),
        top_accounts=top_accounts,
        top_accounts_trade_share=involved_in_top / len(trades),
        self_trade_share_overall=self_share_overall,
        self_trade_share_by_account=self_by_account,
        net_balance_change_by_account=net_changes,
    )


# -- airdrop --------------------------------------------------------------------------
def analyze_airdrop(
    records: Iterable[TransactionRecord],
    launch_date: str = "2019-11-01",
    contract: str = EIDOS_CONTRACT,
) -> AirdropReport:
    """Seed implementation of the §4.1 airdrop pass."""
    materialized = [record for record in records if record.chain is ChainId.EOS]
    launch_timestamp = timestamp_from_iso(launch_date)
    claims = _detect_boomerang_claims(materialized, contract)
    claim_action_ids = set()
    for claim in claims:
        claim_action_ids.add(claim.transaction_id)
    post_launch = [record for record in materialized if record.timestamp >= launch_timestamp]
    pre_launch = [record for record in materialized if record.timestamp < launch_timestamp]
    post_launch_claim_actions = sum(
        1 for record in post_launch if record.transaction_id in claim_action_ids
    )

    def rate(records_subset: Sequence[TransactionRecord]) -> float:
        if not records_subset:
            return 0.0
        timestamps = [record.timestamp for record in records_subset]
        duration = max(timestamps) - min(timestamps)
        if duration <= 0:
            return float(len(records_subset))
        return len(records_subset) / duration

    pre_rate = rate(pre_launch)
    post_rate = rate(post_launch)
    multiplier = post_rate / pre_rate if pre_rate > 0 else float("inf")
    return AirdropReport(
        launch_timestamp=launch_timestamp,
        claim_count=len(claims),
        total_actions=len(materialized),
        post_launch_actions=len(post_launch),
        boomerang_action_share_post_launch=(
            post_launch_claim_actions / len(post_launch) if post_launch else 0.0
        ),
        traffic_multiplier=multiplier,
        unique_claimers=len({claim.claimer for claim in claims}),
    )


def _detect_boomerang_claims(
    records: Iterable[TransactionRecord], contract: str = EIDOS_CONTRACT
) -> List[BoomerangClaim]:
    by_transaction: Dict[str, List[TransactionRecord]] = defaultdict(list)
    for record in records:
        if record.chain is ChainId.EOS and record.type == "transfer":
            by_transaction[record.transaction_id].append(record)
    claims: List[BoomerangClaim] = []
    for transaction_id, group in by_transaction.items():
        deposits = [
            record
            for record in group
            if record.metadata.get("transfer_to") == contract and record.sender != contract
        ]
        refunds = [
            record
            for record in group
            if record.sender == contract
            and record.currency == "EOS"
            and record.metadata.get("inline")
        ]
        grants = [
            record
            for record in group
            if record.sender == contract and record.currency not in ("", "EOS")
        ]
        if not deposits or not refunds:
            continue
        deposit = deposits[0]
        refund = refunds[0]
        if abs(deposit.amount - refund.amount) > 1e-9:
            continue
        claims.append(
            BoomerangClaim(
                transaction_id=transaction_id,
                claimer=deposit.sender,
                timestamp=deposit.timestamp,
                eos_amount=deposit.amount,
                eidos_granted=grants[0].amount if grants else 0.0,
            )
        )
    return claims
