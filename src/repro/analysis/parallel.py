"""Parallel sharded execution of the single-pass analysis engine.

The workload is embarrassingly parallel: chains are independent, and within
a chain the accumulators' per-row state is mergeable across disjoint row
ranges (every accumulator implements ``merge`` — see
:mod:`repro.analysis.engine`).  This module exploits both axes:

1. the source frame is split into contiguous shards
   (:meth:`~repro.common.columns.TxFrame.shard`), per chain for the full
   report;
2. each shard is shipped to a worker process as a columnar payload — the
   exact format :class:`~repro.collection.store.FrameStore` chunks use, with
   ``array`` columns so pickling moves raw machine bytes; under the numpy
   kernel backend the shard gather itself is one C fancy-indexing call per
   column (see :meth:`~repro.common.columns.TxFrame.to_payload`) — and the
   worker **rehydrates** it with
   :meth:`~repro.common.columns.TxFrame.from_payload` (bulk column load
   straight into ndarray-viewable buffers with vectorized bookkeeping —
   no per-element list copies; string-pool codes are preserved, so shard
   state stays code-compatible with the parent frame);
3. the worker runs a normal engine pass over its shard and returns each
   accumulator's :meth:`~repro.analysis.engine.Accumulator.export_state`
   payload — compact columnar state (packed int64/float64/string-blob
   columns), not a pickled accumulator object, so the return trip moves
   machine bytes instead of per-element Python state;
4. the parent applies shard payloads **in shard order** with
   :meth:`~repro.analysis.engine.Accumulator.restore_state` on accumulators
   bound to the parent frame, then finalises once.

Because shards are contiguous and merged in order, the merged state replays
the serial scan order: counts, rankings, series and orderings are identical
to a serial engine run.  The one caveat is floating-point accumulation —
``ValueFlowAccumulator`` adds shard subtotals, which may differ from the
serial row-order sum in the last few ulps (documented in
``docs/architecture.md``).

``workers <= 1`` runs the same shard-and-merge pipeline in-process (no
payloads, no processes), which is how the shard/merge equivalence tests
exercise every accumulator on single-core machines.
"""

from __future__ import annotations

import multiprocessing
import os
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.columns import FrameLike, TxFrame, TxView, as_frame, view_of
from repro.common.errors import AnalysisError
from repro.common.records import ChainId
from repro.analysis.engine import (
    BLOCK_ROWS,
    Accumulator,
    AnalysisEngine,
    EngineResult,
)
from repro.analysis.report import (
    FullReport,
    chain_window,
    figure_accumulators,
    figures_from_result,
)
from repro.analysis.throughput import DEFAULT_BIN_SECONDS

#: A factory producing a fresh, unbound accumulator set.  It is invoked once
#: per shard (in the worker) and once in the parent, so it must be picklable:
#: a module-level function, a ``functools.partial`` over one, or a class.
AccumulatorFactory = Callable[[], Sequence[Accumulator]]

#: One unit of worker work: (tag, payload, factory, block_rows).  The tag is
#: opaque to the worker and routes the result back to its merge target.
_ShardTask = Tuple[object, Dict, AccumulatorFactory, int]


def default_workers() -> int:
    """Worker count used when none is given: one per available core."""
    return os.cpu_count() or 1


def _scan_shard(task: _ShardTask):
    """Worker entry point: rehydrate one shard, scan it, ship the state.

    The return value is ``(tag, [(accumulator qualname, state payload),
    ...])`` — the type names let the merging side verify the shard ran the
    factory it expected before any state is folded in.
    """
    tag, payload, factory, block_rows = task
    shard = TxFrame.from_payload(payload)
    accumulators = list(factory())
    AnalysisEngine(accumulators).run(shard, block_rows)
    return tag, [
        (type(accumulator).__qualname__, accumulator.export_state())
        for accumulator in accumulators
    ]


def _merge_into(base: Sequence[Accumulator], scanned: Sequence[Accumulator]) -> None:
    """Fold one shard's scanned accumulators into the parent set."""
    if len(base) != len(scanned):
        raise AnalysisError(
            f"shard returned {len(scanned)} accumulators, expected {len(base)}"
        )
    for target, part in zip(base, scanned):
        if type(target) is not type(part):
            raise AnalysisError(
                f"shard accumulator {type(part).__name__} does not match "
                f"{type(target).__name__}"
            )
        target.merge(part)


def _restore_into(base: Sequence[Accumulator], shipped: Sequence[tuple]) -> None:
    """Apply one shard's ``(qualname, payload)`` states to the parent set."""
    if len(base) != len(shipped):
        raise AnalysisError(
            f"shard returned {len(shipped)} state payloads, expected {len(base)}"
        )
    for target, (qualname, payload) in zip(base, shipped):
        if type(target).__qualname__ != qualname:
            raise AnalysisError(
                f"shard state for {qualname} does not match "
                f"{type(target).__qualname__}"
            )
        target.restore_state(payload)


def _bound_base(factory: AccumulatorFactory, frame: TxFrame) -> List[Accumulator]:
    """Fresh accumulators bound (state-initialised) against the parent frame."""
    base = list(factory())
    for accumulator in base:
        accumulator.bind_batch(frame)
    return base


def run_sharded(
    source: FrameLike,
    factory: AccumulatorFactory,
    shards: int = 2,
    block_rows: int = BLOCK_ROWS,
) -> EngineResult:
    """Shard ``source``, scan each shard in-process, merge, finalise.

    Semantically identical to ``AnalysisEngine(factory()).run(source)`` —
    this is the merge path without any multiprocessing, useful for tests and
    as the ``workers <= 1`` fallback of :func:`parallel_run`.
    """
    view = view_of(as_frame(source))
    base = _bound_base(factory, view.frame)
    for shard_view in view.shard(shards):
        if not len(shard_view):
            continue
        accumulators = list(factory())
        AnalysisEngine(accumulators).run(shard_view, block_rows)
        _merge_into(base, accumulators)
    return EngineResult(
        {accumulator.name: accumulator.finalize() for accumulator in base},
        rows_processed=len(view),
    )


def parallel_run(
    source: FrameLike,
    factory: AccumulatorFactory,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    block_rows: int = BLOCK_ROWS,
) -> EngineResult:
    """Run one accumulator set over ``source`` across worker processes.

    The source is split into ``shards`` contiguous shards (default: one per
    worker); each worker rehydrates its shard from a columnar payload and
    scans it; the parent merges in shard order and finalises.  With
    ``workers <= 1`` the scan happens in-process via :func:`run_sharded`.
    """
    workers = default_workers() if workers is None else workers
    shard_count = shards if shards is not None else max(workers, 1)
    if workers <= 1:
        return run_sharded(source, factory, shards=shard_count, block_rows=block_rows)
    view = view_of(as_frame(source))
    frame = view.frame
    base = _bound_base(factory, frame)
    tasks: List[_ShardTask] = [
        (index, frame.to_payload(shard_view.rows, arrays=True), factory, block_rows)
        for index, shard_view in enumerate(view.shard(shard_count))
        if len(shard_view)
    ]
    run_tasks(tasks, workers, {index: base for index, _, _, _ in tasks})
    return EngineResult(
        {accumulator.name: accumulator.finalize() for accumulator in base},
        rows_processed=len(view),
    )


def shard_task(
    tag: object,
    frame: TxFrame,
    rows,
    factory: AccumulatorFactory,
    block_rows: int = BLOCK_ROWS,
) -> _ShardTask:
    """One unit of worker work over ``rows`` of ``frame``.

    The payload carries the frame's full string pools, which is what keeps
    the worker's shard codes identical to the parent frame's (subsetting
    pools would renumber codes and break the merge contract).  Feed the
    tasks to :func:`run_tasks` with merge targets keyed by ``tag``.
    """
    return (tag, frame.to_payload(rows, arrays=True), factory, block_rows)


def run_tasks(
    tasks: List[_ShardTask],
    workers: int,
    targets: Dict[object, Sequence[Accumulator]],
) -> None:
    """Scan tasks across a process pool; merge results in task order.

    Each task's scanned accumulators merge into ``targets[tag]`` — which
    may already hold state (the incremental pipeline seeds the targets with
    checkpointed prefix state before fanning a catch-up scan out here), so
    merging strictly in task order is what preserves the serial replay
    guarantee.
    """
    if not tasks:
        return
    processes = min(workers, len(tasks))
    context = multiprocessing.get_context()
    with context.Pool(processes=processes) as pool:
        # ``imap`` yields in task order regardless of completion order, so
        # merging here preserves shard order — the determinism requirement.
        for tag, shipped in pool.imap(_scan_shard, tasks):
            _restore_into(targets[tag], shipped)



def parallel_full_report(
    source: FrameLike,
    oracle=None,
    clusterer=None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    top_limit: int = 10,
    block_rows: int = BLOCK_ROWS,
) -> FullReport:
    """The full figure set for every chain, fanned out over a process pool.

    Produces the same :class:`~repro.analysis.report.FullReport` as
    :func:`~repro.analysis.report.full_report`: chains × shards are scanned
    concurrently by one shared pool, then each chain's shard states merge in
    shard order and finalise against the parent frame.  ``shards`` counts
    shards *per chain* (default: one per worker).
    """
    workers = default_workers() if workers is None else workers
    shard_count = shards if shards is not None else max(workers, 1)
    coerced = as_frame(source)
    frame = coerced.frame if isinstance(coerced, TxView) else coerced
    report = FullReport()
    bases: Dict[ChainId, Tuple[List[Accumulator], int]] = {}
    tasks: List[_ShardTask] = []
    for chain in frame.chains():
        view = coerced.chain_view(chain)
        if not len(view):
            continue
        factory = partial(
            figure_accumulators,
            chain,
            chain_window(coerced, view, chain),
            oracle,
            clusterer,
            bin_seconds,
            top_limit,
        )
        if workers <= 1:
            result = run_sharded(
                view, factory, shards=shard_count, block_rows=block_rows
            )
            report.chains[chain] = figures_from_result(chain, result)
            continue
        bases[chain] = (_bound_base(factory, frame), len(view))
        for shard_view in view.shard(shard_count):
            if not len(shard_view):
                continue
            # Each payload carries the frame's full string pools: shipping
            # them whole is what keeps shard codes identical to the parent
            # frame's (subsetting pools would renumber codes and break the
            # merge contract).
            tasks.append(
                (
                    chain,
                    frame.to_payload(shard_view.rows, arrays=True),
                    factory,
                    block_rows,
                )
            )
    if tasks:
        run_tasks(tasks, workers, {chain: base for chain, (base, _) in bases.items()})
    for chain, (base, row_count) in bases.items():
        result = EngineResult(
            {accumulator.name: accumulator.finalize() for accumulator in base},
            rows_processed=row_count,
        )
        report.chains[chain] = figures_from_result(chain, result)
    return report
