"""Parallel sharded execution of the single-pass analysis engine.

The workload is embarrassingly parallel: chains are independent, and within
a chain the accumulators' per-row state is mergeable across disjoint row
ranges (every accumulator implements ``merge`` — see
:mod:`repro.analysis.engine`).  This module exploits both axes:

1. the source frame is split into contiguous shards
   (:meth:`~repro.common.columns.TxFrame.shard`), per chain for the full
   report;
2. each shard is shipped to a worker process as a columnar payload — the
   exact format :class:`~repro.collection.store.FrameStore` chunks use, with
   ``array`` columns so pickling moves raw machine bytes; under the numpy
   kernel backend the shard gather itself is one C fancy-indexing call per
   column (see :meth:`~repro.common.columns.TxFrame.to_payload`) — and the
   worker **rehydrates** it with
   :meth:`~repro.common.columns.TxFrame.from_payload` (bulk column load
   straight into ndarray-viewable buffers with vectorized bookkeeping —
   no per-element list copies; string-pool codes are preserved, so shard
   state stays code-compatible with the parent frame);
3. the worker runs a normal engine pass over its shard and returns each
   accumulator's :meth:`~repro.analysis.engine.Accumulator.export_state`
   payload — compact columnar state (packed int64/float64/string-blob
   columns), not a pickled accumulator object, so the return trip moves
   machine bytes instead of per-element Python state;
4. the parent applies shard payloads **in shard order** with
   :meth:`~repro.analysis.engine.Accumulator.restore_state` on accumulators
   bound to the parent frame, then finalises once.

Because shards are contiguous and merged in order, the merged state replays
the serial scan order: counts, rankings, series and orderings are identical
to a serial engine run.  The one caveat is floating-point accumulation —
``ValueFlowAccumulator`` adds shard subtotals, which may differ from the
serial row-order sum in the last few ulps (documented in
``docs/architecture.md``).

``workers <= 1`` runs the same shard-and-merge pipeline in-process (no
payloads, no processes), which is how the shard/merge equivalence tests
exercise every accumulator on single-core machines.

Out-of-core scanning
--------------------

The payload path above still requires the *parent* to hold the full frame
(it gathers each shard with ``to_payload``), so its memory ceiling is the
dataset size.  The chunk-task path removes that ceiling: a task is just
``(tag, directory, chunk_start, chunk_stop, factories, block_rows)`` — a
pointer into an on-disk :class:`~repro.collection.store.FrameStore`, not
data.  Each worker reopens the store lazily (manifest only — version-2
manifests carry the global string pools as per-chunk deltas, so no chunk
is decompressed to learn the code space), rehydrates **one chunk at a
time** into a frame sharing the store's global pools
(:meth:`~repro.common.columns.TxFrame.with_pools`), scans each chain's
rows of that chunk with fresh accumulators, and merges them into per-chain
carry accumulators before dropping the chunk frame.  Peak memory per
process is one decompressed chunk plus accumulator state — flat in the
dataset's row count.  The carry state is exported once per task, and the
parent folds task results in chunk order, so the serial replay guarantee
is the same as the payload path's.  :func:`parallel_report_from_store` is
the full-report entry point; the incremental pipeline's cold catch-up
reuses the same tasks via :func:`chunk_scan_tasks` + :func:`run_chunk_tasks`.
"""

from __future__ import annotations

import multiprocessing
import os
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.columns import (
    FrameLike,
    StringPool,
    TxFrame,
    TxView,
    as_frame,
    view_of,
)
from repro.common import faults, statsmode
from repro.common.errors import AnalysisError
from repro.common.records import ChainId
from repro.analysis.engine import (
    BLOCK_ROWS,
    Accumulator,
    AnalysisEngine,
    EngineResult,
)
from repro.analysis.report import (
    FullReport,
    chain_window,
    figure_accumulators,
    figures_from_result,
)
from repro.analysis.statecache import (
    CacheContext,
    ChainStates,
    ChunkStateCache,
    EntryKey,
    factories_digest,
)
from repro.analysis.throughput import DEFAULT_BIN_SECONDS

#: A factory producing a fresh, unbound accumulator set.  It is invoked once
#: per shard (in the worker) and once in the parent, so it must be picklable:
#: a module-level function, a ``functools.partial`` over one, or a class.
AccumulatorFactory = Callable[[], Sequence[Accumulator]]

#: One unit of worker work: (tag, payload, factory, block_rows).  The tag is
#: opaque to the worker and routes the result back to its merge target.
_ShardTask = Tuple[object, Dict, AccumulatorFactory, int]

#: One unit of out-of-core work: (tag, store directory, chunk_start,
#: chunk_stop, per-chain factories keyed by chain value string, block_rows,
#: optional chunk-state cache context).  No row data crosses the process
#: boundary — the worker reopens the store and streams the half-open chunk
#: range ``[chunk_start, chunk_stop)``; with a cache context it first
#: consults the chunk-state cache per chunk and only scans the misses.
ChunkScanTask = Tuple[
    object, str, int, int, Dict[str, AccumulatorFactory], int,
    Optional[CacheContext],
]


def default_workers() -> int:
    """Worker count used when none is given: one per available core."""
    return os.cpu_count() or 1


def _scan_shard(task: _ShardTask):
    """Worker entry point: rehydrate one shard, scan it, ship the state.

    The return value is ``(tag, [(accumulator qualname, state payload),
    ...])`` — the type names let the merging side verify the shard ran the
    factory it expected before any state is folded in.
    """
    tag, payload, factory, block_rows = task
    action = faults.check("worker.chunk_task")
    if action is not None and action.mode == faults.MODE_KILL:
        os._exit(17)  # hard worker death: no exception, no cleanup
    shard = TxFrame.from_payload(payload)
    accumulators = list(factory())
    AnalysisEngine(accumulators).run(shard, block_rows)
    return tag, [
        (type(accumulator).__qualname__, accumulator.export_state())
        for accumulator in accumulators
    ]


def _merge_into(base: Sequence[Accumulator], scanned: Sequence[Accumulator]) -> None:
    """Fold one shard's scanned accumulators into the parent set."""
    if len(base) != len(scanned):
        raise AnalysisError(
            f"shard returned {len(scanned)} accumulators, expected {len(base)}"
        )
    for target, part in zip(base, scanned):
        if type(target) is not type(part):
            raise AnalysisError(
                f"shard accumulator {type(part).__name__} does not match "
                f"{type(target).__name__}"
            )
        target.merge(part)


def _restore_into(base: Sequence[Accumulator], shipped: Sequence[tuple]) -> None:
    """Apply one shard's ``(qualname, payload)`` states to the parent set."""
    if len(base) != len(shipped):
        raise AnalysisError(
            f"shard returned {len(shipped)} state payloads, expected {len(base)}"
        )
    for target, (qualname, payload) in zip(base, shipped):
        if type(target).__qualname__ != qualname:
            raise AnalysisError(
                f"shard state for {qualname} does not match "
                f"{type(target).__qualname__}"
            )
        target.restore_state(payload)


def _bound_base(factory: AccumulatorFactory, frame: TxFrame) -> List[Accumulator]:
    """Fresh accumulators bound (state-initialised) against the parent frame."""
    base = list(factory())
    for accumulator in base:
        accumulator.bind_batch(frame)
    return base


def run_sharded(
    source: FrameLike,
    factory: AccumulatorFactory,
    shards: int = 2,
    block_rows: int = BLOCK_ROWS,
) -> EngineResult:
    """Shard ``source``, scan each shard in-process, merge, finalise.

    Semantically identical to ``AnalysisEngine(factory()).run(source)`` —
    this is the merge path without any multiprocessing, useful for tests and
    as the ``workers <= 1`` fallback of :func:`parallel_run`.
    """
    view = view_of(as_frame(source))
    base = _bound_base(factory, view.frame)
    for shard_view in view.shard(shards):
        if not len(shard_view):
            continue
        accumulators = list(factory())
        AnalysisEngine(accumulators).run(shard_view, block_rows)
        _merge_into(base, accumulators)
    return EngineResult(
        {accumulator.name: accumulator.finalize() for accumulator in base},
        rows_processed=len(view),
    )


def parallel_run(
    source: FrameLike,
    factory: AccumulatorFactory,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    block_rows: int = BLOCK_ROWS,
) -> EngineResult:
    """Run one accumulator set over ``source`` across worker processes.

    The source is split into ``shards`` contiguous shards (default: one per
    worker); each worker rehydrates its shard from a columnar payload and
    scans it; the parent merges in shard order and finalises.  With
    ``workers <= 1`` the scan happens in-process via :func:`run_sharded`.
    """
    workers = default_workers() if workers is None else workers
    shard_count = shards if shards is not None else max(workers, 1)
    if workers <= 1:
        return run_sharded(source, factory, shards=shard_count, block_rows=block_rows)
    view = view_of(as_frame(source))
    frame = view.frame
    base = _bound_base(factory, frame)
    tasks: List[_ShardTask] = [
        (index, frame.to_payload(shard_view.rows, arrays=True), factory, block_rows)
        for index, shard_view in enumerate(view.shard(shard_count))
        if len(shard_view)
    ]
    run_tasks(tasks, workers, {index: base for index, _, _, _ in tasks})
    return EngineResult(
        {accumulator.name: accumulator.finalize() for accumulator in base},
        rows_processed=len(view),
    )


def shard_task(
    tag: object,
    frame: TxFrame,
    rows,
    factory: AccumulatorFactory,
    block_rows: int = BLOCK_ROWS,
) -> _ShardTask:
    """One unit of worker work over ``rows`` of ``frame``.

    The payload carries the frame's full string pools, which is what keeps
    the worker's shard codes identical to the parent frame's (subsetting
    pools would renumber codes and break the merge contract).  Feed the
    tasks to :func:`run_tasks` with merge targets keyed by ``tag``.
    """
    return (tag, frame.to_payload(rows, arrays=True), factory, block_rows)


#: How long :func:`_drain_imap` lets every pending result stall with all
#: workers apparently alive before declaring the pool wedged.  Generous — a
#: single chunk scan finishes in seconds — but bounded, because a silently
#: lost task would otherwise block forever.
_POOL_STALL_TIMEOUT = 600.0

#: Poll interval for the dead-worker watchdog.
_POOL_POLL_SECONDS = 0.2


def _drain_imap(pool, results):
    """Yield ``imap`` results, failing fast when a worker process dies.

    ``multiprocessing.Pool`` never surfaces a worker killed mid-task
    (``os._exit``, OOM-kill, SIGKILL): the pool quietly replaces the
    process and ``imap`` waits forever for a result that will never come.
    Each result is therefore polled with a timeout while the pool's
    original worker processes are watched for abnormal exit codes; a dead
    worker raises :class:`AnalysisError`, which consumers treat as a failed
    (retryable, e.g. serially) scan rather than a hang.
    """
    procs = list(pool._pool)
    stalled = 0.0
    while True:
        try:
            yield results.next(timeout=_POOL_POLL_SECONDS)
            stalled = 0.0
        except StopIteration:
            return
        except multiprocessing.TimeoutError:
            for proc in procs:
                if proc.exitcode not in (None, 0):
                    raise AnalysisError(
                        f"worker process {proc.pid} died mid-scan "
                        f"(exit code {proc.exitcode}); its task is lost"
                    )
            stalled += _POOL_POLL_SECONDS
            if stalled >= _POOL_STALL_TIMEOUT:
                raise AnalysisError(
                    f"worker pool produced no result for {stalled:.0f}s "
                    "with all workers alive; assuming a wedged pool"
                )


def run_tasks(
    tasks: List[_ShardTask],
    workers: int,
    targets: Dict[object, Sequence[Accumulator]],
) -> None:
    """Scan tasks across a process pool; merge results in task order.

    Each task's scanned accumulators merge into ``targets[tag]`` — which
    may already hold state (the incremental pipeline seeds the targets with
    checkpointed prefix state before fanning a catch-up scan out here), so
    merging strictly in task order is what preserves the serial replay
    guarantee.
    """
    if not tasks:
        return
    processes = min(workers, len(tasks))
    context = multiprocessing.get_context()
    with context.Pool(processes=processes) as pool:
        # ``imap`` yields in task order regardless of completion order, so
        # merging here preserves shard order — the determinism requirement.
        for tag, shipped in _drain_imap(pool, pool.imap(_scan_shard, tasks)):
            _restore_into(targets[tag], shipped)



def parallel_full_report(
    source: FrameLike,
    oracle=None,
    clusterer=None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    top_limit: int = 10,
    block_rows: int = BLOCK_ROWS,
) -> FullReport:
    """The full figure set for every chain, fanned out over a process pool.

    Produces the same :class:`~repro.analysis.report.FullReport` as
    :func:`~repro.analysis.report.full_report`: chains × shards are scanned
    concurrently by one shared pool, then each chain's shard states merge in
    shard order and finalise against the parent frame.  ``shards`` counts
    shards *per chain* (default: one per worker).
    """
    workers = default_workers() if workers is None else workers
    shard_count = shards if shards is not None else max(workers, 1)
    coerced = as_frame(source)
    frame = coerced.frame if isinstance(coerced, TxView) else coerced
    report = FullReport()
    bases: Dict[ChainId, Tuple[List[Accumulator], int]] = {}
    tasks: List[_ShardTask] = []
    for chain in frame.chains():
        view = coerced.chain_view(chain)
        if not len(view):
            continue
        factory = partial(
            figure_accumulators,
            chain,
            chain_window(coerced, view, chain),
            oracle,
            clusterer,
            bin_seconds,
            top_limit,
            stats=statsmode.active_mode(),
        )
        if workers <= 1:
            result = run_sharded(
                view, factory, shards=shard_count, block_rows=block_rows
            )
            report.chains[chain] = figures_from_result(chain, result)
            continue
        bases[chain] = (_bound_base(factory, frame), len(view))
        for shard_view in view.shard(shard_count):
            if not len(shard_view):
                continue
            # Each payload carries the frame's full string pools: shipping
            # them whole is what keeps shard codes identical to the parent
            # frame's (subsetting pools would renumber codes and break the
            # merge contract).
            tasks.append(
                (
                    chain,
                    frame.to_payload(shard_view.rows, arrays=True),
                    factory,
                    block_rows,
                )
            )
    if tasks:
        run_tasks(tasks, workers, {chain: base for chain, (base, _) in bases.items()})
    for chain, (base, row_count) in bases.items():
        result = EngineResult(
            {accumulator.name: accumulator.finalize() for accumulator in base},
            rows_processed=row_count,
        )
        report.chains[chain] = figures_from_result(chain, result)
    return report


# -- out-of-core chunk scanning --------------------------------------------------------


def chunk_ranges(chunk_count: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal ``[start, stop)`` partitions of a chunk index space."""
    parts = max(1, min(parts, chunk_count))
    base, extra = divmod(chunk_count, parts)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def row_balanced_ranges(
    row_counts: Sequence[int], parts: int
) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunk partitions balanced by row count.

    :func:`chunk_ranges` splits by chunk *count*, which skews worker
    wall-clock when chunk sizes are ragged (a tail of small flush chunks
    behind full-size ones).  This splits the same index space at cumulative
    row boundaries instead: each part's target is an equal share of the
    rows still unassigned, and a chunk joins the current part when at
    least half of it fits under the target.  Every part gets at least one
    chunk; concatenating the ranges always reproduces ``range(len(row_counts))``
    exactly, so the fold-order (and therefore figure) guarantees of
    :func:`run_chunk_tasks` are untouched — only the cut points move.
    """
    chunk_count = len(row_counts)
    parts = max(1, min(parts, chunk_count))
    total = sum(row_counts)
    if parts <= 1 or total <= 0:
        return chunk_ranges(chunk_count, parts)
    ranges: List[Tuple[int, int]] = []
    start = 0
    covered = 0.0
    for index in range(parts):
        remaining_parts = parts - index
        if remaining_parts == 1:
            ranges.append((start, chunk_count))
            break
        # Leave at least one chunk for every later part.
        max_stop = chunk_count - (remaining_parts - 1)
        target = covered + (total - covered) / remaining_parts
        stop = start + 1
        covered += row_counts[start]
        while stop < max_stop and covered + row_counts[stop] / 2 <= target:
            covered += row_counts[stop]
            stop += 1
        ranges.append((start, stop))
        start = stop
    return ranges


def _store_skeleton(store) -> TxFrame:
    """Empty frame adopting the store's global string pools.

    Every chunk frame a worker rehydrates — and the parent's merge-target
    accumulators — bind against pools built from the same
    :meth:`~repro.collection.store.FrameStore.pool_values`, so interned
    codes in exported accumulator state mean the same strings in every
    process without shipping pools per chunk.
    """
    pools = store.pool_values()
    return TxFrame.with_pools(
        StringPool(pools["types"]),
        StringPool(pools["accounts"]),
        StringPool(pools["currencies"]),
        StringPool(pools["errors"]),
    )


def _fold_cached_states(
    loaded: ChainStates,
    factories: Dict[str, AccumulatorFactory],
    skeleton: TxFrame,
    carry: Dict[str, List[Accumulator]],
) -> bool:
    """Validate one cached entry, then fold it straight into the carry.

    ``restore_state`` is a delta-apply (the parent fold restores successive
    shipped worker states into the same targets), so a cached chunk's
    payloads fold directly into the carry accumulators — no intermediate
    fresh set, no extra ``merge`` pass.  Every chain is validated (length
    and qualname sequence against the factory's accumulators) before *any*
    state is touched, so a mismatched entry is rejected whole — ``False``
    means miss, rescan the chunk, and the carry is untouched.  A payload
    that passes the entry checksum and this validation and still makes
    ``restore_state`` raise is a code bug (a payload schema change without
    an :data:`~repro.analysis.statecache.ENTRY_MAGIC` bump), not disk
    corruption, and propagates as such.
    """
    prepared = []
    for chain_key, shipped in loaded.items():
        factory = factories.get(chain_key)
        if factory is None:
            continue
        base = carry.get(chain_key)
        if base is None:
            base = _bound_base(factory, skeleton)
        if len(base) != len(shipped) or any(
            type(target).__qualname__ != qualname
            for target, (qualname, _payload) in zip(base, shipped)
        ):
            return False
        prepared.append((chain_key, base, shipped))
    for chain_key, base, shipped in prepared:
        carry[chain_key] = base
        for target, (_qualname, payload) in zip(base, shipped):
            target.restore_state(payload)
    return True


def _scan_chunk_range(task: ChunkScanTask):
    """Worker entry point: stream one chunk range from disk, ship the state.

    Returns ``(tag, {chain value: [(qualname, state payload), ...]},
    cache info)`` for each chain the range contained.  Memory high-water
    mark is one decompressed chunk plus carry accumulator state: each chunk
    is rehydrated into a throwaway frame (sharing the store's pools),
    scanned per chain with fresh accumulators, merged into the per-chain
    carry set, and dropped before the next chunk is touched.

    With a cache context, each chunk is first looked up in the chunk-state
    cache: a hit folds the memoized states (restored into fresh
    accumulators, then merged — still in chunk order) and skips the
    rehydrate-and-scan entirely; a miss (absent, corrupt, or unrestorable
    entry) degrades to the plain scan, and the freshly exported per-chunk
    states travel back in the cache info for the parent to persist.
    ``cache info`` is ``None`` without a context, else ``{"hits", "misses",
    "fresh"}`` where ``fresh`` is ``[(EntryKey, chain states), ...]``.
    """
    from repro.collection.store import FrameStore

    tag, directory, start, stop, factories, block_rows = task[:6]
    context: Optional[CacheContext] = task[6] if len(task) > 6 else None
    action = faults.check("worker.chunk_task")
    if action is not None and action.mode == faults.MODE_KILL:
        os._exit(17)  # hard worker death: no exception, no cleanup
    store = FrameStore.open(directory)
    skeleton = _store_skeleton(store)
    cache = ChunkStateCache(context.directory) if context is not None else None
    carry: Dict[str, List[Accumulator]] = {}
    hits = misses = 0
    fresh: List[Tuple[EntryKey, ChainStates]] = []
    for index in range(start, stop):
        key: Optional[EntryKey] = None
        if cache is not None:
            checksum, chunk_format = store.chunk_identity(index)
            key = context.key(checksum, chunk_format)
            loaded = cache.load(key)
            if loaded is not None and _fold_cached_states(
                loaded, factories, skeleton, carry
            ):
                hits += 1
                continue
            misses += 1
        chunk = TxFrame.with_pools(
            skeleton.types, skeleton.accounts, skeleton.currencies, skeleton.errors
        )
        chunk.extend_from_payload(store.chunk_payload(index))
        chunk_states: ChainStates = {}
        for chain in chunk.chains():
            factory = factories.get(chain.value)
            if factory is None:
                continue
            scanned = list(factory())
            AnalysisEngine(scanned).run(chunk.chain_view(chain), block_rows)
            if key is not None:
                chunk_states[chain.value] = [
                    (type(accumulator).__qualname__, accumulator.export_state())
                    for accumulator in scanned
                ]
            base = carry.get(chain.value)
            if base is None:
                carry[chain.value] = base = _bound_base(factory, skeleton)
            _merge_into(base, scanned)
        if key is not None:
            fresh.append((key, chunk_states))
    cache_info = (
        {"hits": hits, "misses": misses, "fresh": fresh}
        if context is not None
        else None
    )
    return tag, {
        key: [
            (type(accumulator).__qualname__, accumulator.export_state())
            for accumulator in base
        ]
        for key, base in carry.items()
    }, cache_info


def chunk_scan_tasks(
    directory: str,
    chunk_count: int,
    factories: Dict[str, AccumulatorFactory],
    parts: int,
    block_rows: int = BLOCK_ROWS,
    row_counts: Optional[Sequence[int]] = None,
    cache: Optional[CacheContext] = None,
) -> List[ChunkScanTask]:
    """Partition a store's committed chunks into ``parts`` contiguous tasks.

    Task tags are the partition indices, so feeding the list to
    :func:`run_chunk_tasks` folds results in chunk order.  With
    ``row_counts`` (one entry per committed chunk, from the manifest) the
    cut points balance cumulative *rows* instead of chunk counts — see
    :func:`row_balanced_ranges`.  ``cache`` attaches a chunk-state cache
    context every worker consults before scanning.
    """
    if row_counts is not None and len(row_counts) == chunk_count:
        ranges = row_balanced_ranges(row_counts, parts)
    else:
        ranges = chunk_ranges(chunk_count, parts)
    return [
        (index, directory, start, stop, factories, block_rows, cache)
        for index, (start, stop) in enumerate(ranges)
        if stop > start
    ]


def run_chunk_tasks(
    tasks: List[ChunkScanTask],
    workers: int,
    targets: Dict[str, Sequence[Accumulator]],
    cache: Optional[ChunkStateCache] = None,
) -> Dict[str, int]:
    """Scan chunk tasks (a pool when ``workers > 1``), fold in chunk order.

    ``targets`` maps chain value strings to merge-target accumulator sets;
    they may already hold state (the pipeline's cold catch-up seeds them
    before fanning out).  ``imap`` yields in task order regardless of
    completion order, and tasks are contiguous chunk ranges, so each
    chain's state is folded in exact chunk — i.e. row — order.

    ``cache`` is the parent-side :class:`ChunkStateCache`: workers consult
    (and report on) the cache via the context inside each task, but only
    the parent *persists* — freshly scanned per-chunk states travel back in
    the task results and are written here, single-writer, behind the atomic
    entry commit.  Returns the aggregated ``{"hits", "misses"}`` counters
    (also folded into ``cache``'s own counters when given).
    """
    stats = {"hits": 0, "misses": 0}
    if not tasks:
        return stats

    def fold(results) -> None:
        for _tag, shipped_by_chain, cache_info in results:
            for key, shipped in shipped_by_chain.items():
                _restore_into(targets[key], shipped)
            if cache_info is not None:
                stats["hits"] += cache_info["hits"]
                stats["misses"] += cache_info["misses"]
                if cache is not None:
                    for entry_key, states in cache_info["fresh"]:
                        cache.store(entry_key, states)

    if workers <= 1:
        fold(map(_scan_chunk_range, tasks))
    else:
        processes = min(workers, len(tasks))
        context = multiprocessing.get_context()
        with context.Pool(processes=processes) as pool:
            fold(_drain_imap(pool, pool.imap(_scan_chunk_range, tasks)))
    if cache is not None:
        cache.hits += stats["hits"]
        cache.misses += stats["misses"]
    return stats


def chunk_scan_states(
    directory: str,
    oracle=None,
    clusterer=None,
    workers: Optional[int] = None,
    tasks: Optional[int] = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    top_limit: int = 10,
    block_rows: int = BLOCK_ROWS,
    cache: Optional[ChunkStateCache] = None,
    store=None,
) -> Tuple[Dict[str, int], Dict[str, List[Accumulator]]]:
    """Scan a store's committed chunks out-of-core into accumulator state.

    Returns ``(chain_row_totals, bases)`` where ``bases`` maps each chain
    value to its fully-folded figure accumulators — not yet finalized, so
    callers can also checkpoint the state (the pipeline's cold catch-up
    does exactly that).  No process ever materialises the full frame: the
    parent reads only the manifest, workers stream contiguous chunk
    ranges.  ``tasks`` sets the partition count (default: one per worker);
    ``workers <= 1`` streams the same tasks in-process, still out-of-core.

    ``cache`` enables the chunk-state aggregate cache: already-memoized
    chunks fold their cached states instead of being rescanned, fresh
    chunks populate the cache, and the instance's hit/miss counters say
    which happened.  ``store`` reuses an already-open
    :class:`~repro.collection.store.FrameStore` for ``directory`` instead
    of re-validating the manifest (callers that just opened the store —
    the CLI's single-validation path — pass it straight through).
    """
    from repro.collection.store import FrameStore

    workers = default_workers() if workers is None else workers
    if store is None:
        store = FrameStore.open(directory)
    # Backfill + commit chunk metadata once in the parent so every worker's
    # reopen is manifest-only.
    store.ensure_chunk_stats()
    totals = store.chain_row_counts()
    chains = [chain for chain in ChainId if chain.value in totals]
    chunk_count = store.committed_chunk_count
    if not chunk_count or not chains:
        return totals, {}
    factories: Dict[str, AccumulatorFactory] = {
        chain.value: partial(
            figure_accumulators,
            chain,
            store.time_bounds(chain),
            oracle,
            clusterer,
            bin_seconds,
            top_limit,
            stats=statsmode.active_mode(),
        )
        for chain in chains
    }
    context = None
    if cache is not None:
        # Digest + mode are pinned here in the parent: the key must match
        # the factories actually shipped, not a worker's ambient mode.
        context = cache.context(
            factories_digest(factories), statsmode.active_mode()
        )
    task_count = tasks if tasks is not None else max(workers, 1)
    chunk_tasks = chunk_scan_tasks(
        directory,
        chunk_count,
        factories,
        task_count,
        block_rows,
        row_counts=store.chunk_row_counts(),
        cache=context,
    )
    skeleton = _store_skeleton(store)
    bases: Dict[str, List[Accumulator]] = {
        chain.value: _bound_base(factories[chain.value], skeleton)
        for chain in chains
    }
    run_chunk_tasks(chunk_tasks, workers, bases, cache=cache)
    return totals, bases


def parallel_report_from_store(
    directory: str,
    oracle=None,
    clusterer=None,
    workers: Optional[int] = None,
    tasks: Optional[int] = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    top_limit: int = 10,
    block_rows: int = BLOCK_ROWS,
    cache: Optional[ChunkStateCache] = None,
    store=None,
) -> FullReport:
    """The full figure set computed out-of-core from an on-disk store.

    Produces the same :class:`~repro.analysis.report.FullReport` as
    :func:`~repro.analysis.report.full_report` over the store's committed
    rows (staged, unflushed rows are excluded) — see
    :func:`chunk_scan_states` for the execution model and the ``cache`` /
    ``store`` parameters.  With a warm cache and an unchanged store this is
    the O(new-data) report path: no chunk is decompressed at all.
    """
    totals, bases = chunk_scan_states(
        directory,
        oracle=oracle,
        clusterer=clusterer,
        workers=workers,
        tasks=tasks,
        bin_seconds=bin_seconds,
        top_limit=top_limit,
        block_rows=block_rows,
        cache=cache,
        store=store,
    )
    report = FullReport()
    for chain in ChainId:
        accumulators = bases.get(chain.value)
        if accumulators is None:
            continue
        result = EngineResult(
            {
                accumulator.name: accumulator.finalize()
                for accumulator in accumulators
            },
            rows_processed=totals[chain.value],
        )
        report.chains[chain] = figures_from_result(chain, result)
    return report
