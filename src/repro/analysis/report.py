"""End-to-end summary report.

Pulls together the headline findings of the paper for a set of crawled
record streams: per-chain TPS, the dominant category share (EIDOS transfers
on EOS, endorsements on Tezos, zero-value traffic on XRP), and the
value-bearing share of XRP throughput.  This is what the quickstart example
prints and what the integration tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.clock import timestamp_from_iso
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.classify import (
    category_distribution,
    tezos_category_distribution,
    type_distribution,
)
from repro.analysis.throughput import transactions_per_second
from repro.analysis.value import ExchangeRateOracle, XrpValueAnalyzer


@dataclass(frozen=True)
class ChainSummary:
    """Headline statistics for one chain."""

    chain: ChainId
    transaction_count: int
    action_count: int
    duration_seconds: float
    tps: float
    dominant_label: str
    dominant_share: float
    value_share: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "chain": self.chain.value,
            "transactions": self.transaction_count,
            "actions": self.action_count,
            "tps": round(self.tps, 4),
            "dominant_label": self.dominant_label,
            "dominant_share": round(self.dominant_share, 4),
        }
        if self.value_share is not None:
            row["value_share"] = round(self.value_share, 4)
        return row


@dataclass
class SummaryReport:
    """The cross-chain summary (the paper's "Summary of Findings")."""

    chains: Dict[ChainId, ChainSummary] = field(default_factory=dict)

    def to_rows(self) -> List[Dict[str, object]]:
        return [summary.to_dict() for summary in self.chains.values()]

    def format_text(self) -> str:
        """Human-readable multi-line summary, used by the examples."""
        lines = ["Summary of findings (reproduced):"]
        for summary in self.chains.values():
            line = (
                f"  {summary.chain.value.upper():5s}  "
                f"{summary.transaction_count:>10,d} transactions, "
                f"{summary.tps:8.3f} TPS, "
                f"dominant: {summary.dominant_label} ({summary.dominant_share:.1%})"
            )
            if summary.value_share is not None:
                line += f", value-bearing share: {summary.value_share:.1%}"
            lines.append(line)
        return "\n".join(lines)


def _duration(records: Sequence[TransactionRecord]) -> float:
    timestamps = [record.timestamp for record in records]
    if not timestamps:
        return 0.0
    return max(timestamps) - min(timestamps)


def _count_transactions(records: Sequence[TransactionRecord]) -> int:
    return len({record.transaction_id for record in records})


def summarize_eos(
    records: Sequence[TransactionRecord], eidos_launch_date: str = "2019-11-01"
) -> ChainSummary:
    """Headline EOS summary: transfer dominance driven by the EIDOS airdrop."""
    eos_records = [record for record in records if record.chain is ChainId.EOS]
    categories = category_distribution(eos_records)
    dominant = max(categories.items(), key=lambda item: item[1]) if categories else ("", 0.0)
    duration = _duration(eos_records)
    tx_count = _count_transactions(eos_records)
    return ChainSummary(
        chain=ChainId.EOS,
        transaction_count=tx_count,
        action_count=len(eos_records),
        duration_seconds=duration,
        tps=transactions_per_second(tx_count, duration) if duration else 0.0,
        dominant_label=f"category:{dominant[0]}",
        dominant_share=dominant[1],
    )


def summarize_tezos(records: Sequence[TransactionRecord]) -> ChainSummary:
    """Headline Tezos summary: endorsement (consensus) dominance."""
    tezos_records = [record for record in records if record.chain is ChainId.TEZOS]
    categories = tezos_category_distribution(tezos_records)
    dominant = max(categories.items(), key=lambda item: item[1]) if categories else ("", 0.0)
    duration = _duration(tezos_records)
    tx_count = len(tezos_records)
    return ChainSummary(
        chain=ChainId.TEZOS,
        transaction_count=tx_count,
        action_count=tx_count,
        duration_seconds=duration,
        tps=transactions_per_second(tx_count, duration) if duration else 0.0,
        dominant_label=f"category:{dominant[0]}",
        dominant_share=dominant[1],
    )


def summarize_xrp(
    records: Sequence[TransactionRecord], oracle: ExchangeRateOracle
) -> ChainSummary:
    """Headline XRP summary: the ~2 % economic-value share."""
    xrp_records = [record for record in records if record.chain is ChainId.XRP]
    analyzer = XrpValueAnalyzer(oracle)
    decomposition = analyzer.decompose(xrp_records)
    duration = _duration(xrp_records)
    tx_count = len(xrp_records)
    dominant_type = ""
    dominant_share = 0.0
    rows = type_distribution(xrp_records)
    for row in rows:
        if row.chain is ChainId.XRP and row.share > dominant_share:
            dominant_type, dominant_share = row.type_name, row.share
    return ChainSummary(
        chain=ChainId.XRP,
        transaction_count=tx_count,
        action_count=tx_count,
        duration_seconds=duration,
        tps=transactions_per_second(tx_count, duration) if duration else 0.0,
        dominant_label=f"type:{dominant_type}",
        dominant_share=dominant_share,
        value_share=decomposition.economic_value_share,
    )


def build_summary_report(
    eos_records: Optional[Iterable[TransactionRecord]] = None,
    tezos_records: Optional[Iterable[TransactionRecord]] = None,
    xrp_records: Optional[Iterable[TransactionRecord]] = None,
    xrp_oracle: Optional[ExchangeRateOracle] = None,
) -> SummaryReport:
    """Build the cross-chain summary from whichever record streams are given."""
    report = SummaryReport()
    if eos_records is not None:
        eos_list = list(eos_records)
        if eos_list:
            report.chains[ChainId.EOS] = summarize_eos(eos_list)
    if tezos_records is not None:
        tezos_list = list(tezos_records)
        if tezos_list:
            report.chains[ChainId.TEZOS] = summarize_tezos(tezos_list)
    if xrp_records is not None:
        xrp_list = list(xrp_records)
        if xrp_list:
            oracle = xrp_oracle or ExchangeRateOracle()
            report.chains[ChainId.XRP] = summarize_xrp(xrp_list, oracle)
    return report
