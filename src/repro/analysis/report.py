"""End-to-end summary report, computed in one pass per chain.

Pulls together the headline findings of the paper for a set of crawled
record streams: per-chain TPS, the dominant category share (EIDOS transfers
on EOS, endorsements on Tezos, zero-value traffic on XRP), and the
value-bearing share of XRP throughput.  This is what the quickstart example
prints and what the integration tests assert on.

Two entry points:

* :func:`build_summary_report` — the seed-compatible builder.  It now runs
  the analysis engine with exactly the accumulators each summary needs, so
  every chain costs **one** iteration instead of one per statistic.
* :func:`full_report` / :func:`compute_chain_figures` — the engine
  showcase: Figure 1 (type distribution), Figure 2 statistics (counts,
  window, headline TPS), Figure 3 (binned throughput), the top-account
  tables, the Figure 7 decomposition, the Figure 12 value flows and the
  wash-trading case study, all from a single pass per chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.common.columns import FrameLike, TxFrame, TxView, as_frame, view_of
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.accounts import AccountActivity, AccountActivityAccumulator
from repro.analysis.classify import (
    CategoryDistributionAccumulator,
    TezosCategoryAccumulator,
    TypeDistributionAccumulator,
    TypeDistributionRow,
    eos_category_lookup,
)
from repro.analysis.clustering import AccountClusterer
from repro.analysis.engine import (
    Accumulator,
    AnalysisEngine,
    TxStats,
    TxStatsAccumulator,
)
from repro.analysis.flows import ValueFlowAccumulator, ValueFlowReport
from repro.analysis.throughput import (
    DEFAULT_BIN_SECONDS,
    ThroughputSeries,
    ThroughputSeriesAccumulator,
    transactions_per_second,
)
from repro.analysis.value import (
    ExchangeRateOracle,
    ThroughputDecomposition,
    ValueDistribution,
    ValueDistributionAccumulator,
    XrpDecompositionAccumulator,
)
from repro.analysis.washtrading import WashTradeAccumulator, WashTradingReport

RecordSource = Union[FrameLike, Iterable[TransactionRecord]]


@dataclass(frozen=True)
class ChainSummary:
    """Headline statistics for one chain."""

    chain: ChainId
    transaction_count: int
    action_count: int
    duration_seconds: float
    tps: float
    dominant_label: str
    dominant_share: float
    value_share: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "chain": self.chain.value,
            "transactions": self.transaction_count,
            "actions": self.action_count,
            "tps": round(self.tps, 4),
            "dominant_label": self.dominant_label,
            "dominant_share": round(self.dominant_share, 4),
        }
        if self.value_share is not None:
            row["value_share"] = round(self.value_share, 4)
        return row


@dataclass
class SummaryReport:
    """The cross-chain summary (the paper's "Summary of Findings")."""

    chains: Dict[ChainId, ChainSummary] = field(default_factory=dict)

    def to_rows(self) -> List[Dict[str, object]]:
        return [summary.to_dict() for summary in self.chains.values()]

    def format_text(self) -> str:
        """Human-readable multi-line summary, used by the examples."""
        lines = ["Summary of findings (reproduced):"]
        for summary in self.chains.values():
            line = (
                f"  {summary.chain.value.upper():5s}  "
                f"{summary.transaction_count:>10,d} transactions, "
                f"{summary.tps:8.3f} TPS, "
                f"dominant: {summary.dominant_label} ({summary.dominant_share:.1%})"
            )
            if summary.value_share is not None:
                line += f", value-bearing share: {summary.value_share:.1%}"
            lines.append(line)
        return "\n".join(lines)


def _chain_view(source: RecordSource, chain: ChainId) -> TxView:
    return as_frame(source).chain_view(chain)


def summarize_eos(
    records: RecordSource, eidos_launch_date: str = "2019-11-01"
) -> ChainSummary:
    """Headline EOS summary: transfer dominance driven by the EIDOS airdrop."""
    view = _chain_view(records, ChainId.EOS)
    result = AnalysisEngine(
        [CategoryDistributionAccumulator(), TxStatsAccumulator()]
    ).run(view)
    categories: Dict[str, float] = result["category_distribution"]
    stats: TxStats = result["tx_stats"]
    dominant = max(categories.items(), key=lambda item: item[1]) if categories else ("", 0.0)
    duration = stats.duration_seconds
    return ChainSummary(
        chain=ChainId.EOS,
        transaction_count=stats.transaction_count,
        action_count=stats.action_count,
        duration_seconds=duration,
        tps=transactions_per_second(stats.transaction_count, duration) if duration else 0.0,
        dominant_label=f"category:{dominant[0]}",
        dominant_share=dominant[1],
    )


def summarize_tezos(records: RecordSource) -> ChainSummary:
    """Headline Tezos summary: endorsement (consensus) dominance."""
    view = _chain_view(records, ChainId.TEZOS)
    result = AnalysisEngine(
        [TezosCategoryAccumulator(), TxStatsAccumulator()]
    ).run(view)
    categories: Dict[str, float] = result["tezos_category_distribution"]
    stats: TxStats = result["tx_stats"]
    dominant = max(categories.items(), key=lambda item: item[1]) if categories else ("", 0.0)
    duration = stats.duration_seconds
    tx_count = stats.action_count
    return ChainSummary(
        chain=ChainId.TEZOS,
        transaction_count=tx_count,
        action_count=tx_count,
        duration_seconds=duration,
        tps=transactions_per_second(tx_count, duration) if duration else 0.0,
        dominant_label=f"category:{dominant[0]}",
        dominant_share=dominant[1],
    )


def _dominant_xrp_type(rows: Sequence[TypeDistributionRow]) -> tuple:
    dominant_type = ""
    dominant_share = 0.0
    for row in rows:
        if row.chain is ChainId.XRP and row.share > dominant_share:
            dominant_type, dominant_share = row.type_name, row.share
    return dominant_type, dominant_share


def summarize_xrp(
    records: RecordSource, oracle: ExchangeRateOracle
) -> ChainSummary:
    """Headline XRP summary: the ~2 % economic-value share."""
    view = _chain_view(records, ChainId.XRP)
    result = AnalysisEngine(
        [
            XrpDecompositionAccumulator(oracle),
            TypeDistributionAccumulator(),
            TxStatsAccumulator(),
        ]
    ).run(view)
    decomposition: ThroughputDecomposition = result["xrp_decomposition"]
    stats: TxStats = result["tx_stats"]
    dominant_type, dominant_share = _dominant_xrp_type(result["type_distribution"])
    duration = stats.duration_seconds
    tx_count = stats.action_count
    return ChainSummary(
        chain=ChainId.XRP,
        transaction_count=tx_count,
        action_count=tx_count,
        duration_seconds=duration,
        tps=transactions_per_second(tx_count, duration) if duration else 0.0,
        dominant_label=f"type:{dominant_type}",
        dominant_share=dominant_share,
        value_share=decomposition.economic_value_share,
    )


def build_summary_report(
    eos_records: Optional[RecordSource] = None,
    tezos_records: Optional[RecordSource] = None,
    xrp_records: Optional[RecordSource] = None,
    xrp_oracle: Optional[ExchangeRateOracle] = None,
) -> SummaryReport:
    """Build the cross-chain summary from whichever record streams are given.

    Each stream is coerced into a columnar frame (no-op when already a frame
    or view) and summarised in a single engine pass per chain.
    """
    report = SummaryReport()
    if eos_records is not None:
        eos_frame = as_frame(eos_records)
        if len(view_of(eos_frame)):
            report.chains[ChainId.EOS] = summarize_eos(eos_frame)
    if tezos_records is not None:
        tezos_frame = as_frame(tezos_records)
        if len(view_of(tezos_frame)):
            report.chains[ChainId.TEZOS] = summarize_tezos(tezos_frame)
    if xrp_records is not None:
        xrp_frame = as_frame(xrp_records)
        if len(view_of(xrp_frame)):
            oracle = xrp_oracle or ExchangeRateOracle()
            report.chains[ChainId.XRP] = summarize_xrp(xrp_frame, oracle)
    return report


# -- the full single-pass figure set ---------------------------------------------------
def eos_figure3_key_columns(frame: TxFrame):
    """Key-column categorizer for Figure 3a: EOS application categories."""
    lookup = eos_category_lookup(frame)
    return (frame.contract_code,), lookup.__getitem__


def tezos_figure3_key_columns(frame: TxFrame):
    """Key-column categorizer for Figure 3b: the operation kind."""
    return (frame.type_code,), frame.types.values.__getitem__


def xrp_figure3_key_columns(frame: TxFrame):
    """Key-column categorizer for Figure 3c: Payment / OfferCreate / failed."""
    type_values = frame.types.values
    payment = frame.types.code("Payment")
    offer = frame.types.code("OfferCreate")

    def label(key) -> str:
        success, type_code = key
        if not success:
            return "Unsuccessful"
        if type_code == payment or type_code == offer:
            return type_values[type_code]
        return "Others"

    return (frame.success, frame.type_code), label


#: Figure 3 key-column categorizer factory per chain.
FIGURE3_CATEGORIZERS = {
    ChainId.EOS: eos_figure3_key_columns,
    ChainId.TEZOS: tezos_figure3_key_columns,
    ChainId.XRP: xrp_figure3_key_columns,
}


@dataclass
class ChainFigures:
    """Every figure statistic of one chain, produced by a single pass."""

    chain: ChainId
    type_rows: List[TypeDistributionRow]
    stats: TxStats
    throughput: ThroughputSeries
    top_senders: List[AccountActivity]
    categories: Optional[Dict[str, float]] = None
    top_receivers: Optional[List[AccountActivity]] = None
    wash_trading: Optional[WashTradingReport] = None
    decomposition: Optional[ThroughputDecomposition] = None
    value_flows: Optional[ValueFlowReport] = None
    value_distribution: Optional[ValueDistribution] = None

    @property
    def tps(self) -> float:
        """Headline TPS (distinct transactions for EOS, rows otherwise)."""
        return self.stats.tps(count_actions=self.chain is not ChainId.EOS)

    def to_summary(self) -> ChainSummary:
        duration = self.stats.duration_seconds
        if self.chain is ChainId.XRP:
            dominant_type, dominant_share = _dominant_xrp_type(self.type_rows)
            label, share = f"type:{dominant_type}", dominant_share
        else:
            categories = self.categories or {}
            dominant = (
                max(categories.items(), key=lambda item: item[1])
                if categories
                else ("", 0.0)
            )
            label, share = f"category:{dominant[0]}", dominant[1]
        count = (
            self.stats.transaction_count
            if self.chain is ChainId.EOS
            else self.stats.action_count
        )
        return ChainSummary(
            chain=self.chain,
            transaction_count=count,
            action_count=self.stats.action_count,
            duration_seconds=duration,
            tps=transactions_per_second(count, duration) if duration else 0.0,
            dominant_label=label,
            dominant_share=share,
            value_share=(
                self.decomposition.economic_value_share if self.decomposition else None
            ),
        )


def chain_window(
    coerced: FrameLike, view: TxView, chain: ChainId
) -> Optional[tuple]:
    """(min, max) timestamp of the chain's rows within ``coerced``."""
    if isinstance(coerced, TxFrame):
        # Whole-frame source: the per-chain bounds are tracked at append
        # time, so anchoring the Figure 3 series costs nothing.
        return coerced.chain_bounds(chain)
    # Sub-view source (e.g. a time window): anchor to the view's own
    # window, not the full frame's, so the series has no phantom bins.
    low = view.min_timestamp()
    return (low, view.max_timestamp()) if low is not None else None


def compute_chain_figures(
    source: RecordSource,
    chain: ChainId,
    oracle: Optional[ExchangeRateOracle] = None,
    clusterer: Optional[AccountClusterer] = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    top_limit: int = 10,
) -> ChainFigures:
    """Compute Figure 1/2/3 statistics, headline TPS and the chain's case
    studies in **one** iteration over the chain's rows."""
    coerced = as_frame(source)
    view = coerced.chain_view(chain)
    return _figures_for_view(
        view,
        chain,
        chain_window(coerced, view, chain),
        oracle=oracle,
        clusterer=clusterer,
        bin_seconds=bin_seconds,
        top_limit=top_limit,
    )


def figure_accumulators(
    chain: ChainId,
    bounds: Optional[tuple],
    oracle: Optional[ExchangeRateOracle] = None,
    clusterer: Optional[AccountClusterer] = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    top_limit: int = 10,
    stats: Optional[str] = None,
) -> List[Accumulator]:
    """Fresh accumulator set producing one chain's full figure slate.

    ``bounds`` is the (min, max) timestamp window anchoring the Figure 3
    series.  This factory is what the parallel execution layer ships to
    worker processes (everything it closes over is picklable), so serial and
    sharded runs are guaranteed to configure identical accumulators.
    ``stats`` pins the statistics mode (exact vs sketch) for every
    mode-aware accumulator; ``None`` resolves the constructing process's
    active mode — callers shipping this factory across a process boundary
    pass :func:`repro.common.statsmode.active_mode` explicitly so an
    in-process override survives the hop.
    """
    start = bounds[0] if bounds else 0.0
    end = bounds[1] if bounds else None
    accumulators: List[Accumulator] = [
        TypeDistributionAccumulator(),
        TxStatsAccumulator(stats=stats),
        ThroughputSeriesAccumulator(
            key_columns=FIGURE3_CATEGORIZERS[chain],
            bin_seconds=bin_seconds,
            start=start,
            end=end,
        ),
        AccountActivityAccumulator("sender", top_limit, stats=stats),
    ]
    if chain is ChainId.EOS:
        accumulators.append(CategoryDistributionAccumulator())
        accumulators.append(
            AccountActivityAccumulator("receiver", top_limit, stats=stats)
        )
        accumulators.append(WashTradeAccumulator())
    elif chain is ChainId.TEZOS:
        accumulators.append(TezosCategoryAccumulator())
    else:
        if oracle is not None:
            accumulators.append(XrpDecompositionAccumulator(oracle))
            accumulators.append(ValueDistributionAccumulator(oracle, stats=stats))
            if clusterer is not None:
                accumulators.append(ValueFlowAccumulator(clusterer, oracle))
    return accumulators


def figures_from_result(chain: ChainId, result) -> ChainFigures:
    """Assemble one chain's :class:`ChainFigures` from an engine result."""
    return ChainFigures(
        chain=chain,
        type_rows=result["type_distribution"],
        stats=result["tx_stats"],
        throughput=result["throughput_series"],
        top_senders=result["top_senders"],
        categories=result.get("category_distribution")
        or result.get("tezos_category_distribution"),
        top_receivers=result.get("top_receivers"),
        wash_trading=result.get("wash_trading"),
        decomposition=result.get("xrp_decomposition"),
        value_flows=result.get("value_flows"),
        value_distribution=result.get("value_distribution"),
    )


def _figures_for_view(
    view: TxView,
    chain: ChainId,
    bounds: Optional[tuple],
    oracle: Optional[ExchangeRateOracle],
    clusterer: Optional[AccountClusterer],
    bin_seconds: float,
    top_limit: int,
) -> ChainFigures:
    accumulators = figure_accumulators(
        chain, bounds, oracle, clusterer, bin_seconds, top_limit
    )
    result = AnalysisEngine(accumulators).run(view)
    return figures_from_result(chain, result)


@dataclass
class FullReport:
    """The complete figure set for every chain present in a frame."""

    chains: Dict[ChainId, ChainFigures] = field(default_factory=dict)

    def summary(self) -> SummaryReport:
        report = SummaryReport()
        for chain, figures in self.chains.items():
            report.chains[chain] = figures.to_summary()
        return report


def full_report(
    source: RecordSource,
    oracle: Optional[ExchangeRateOracle] = None,
    clusterer: Optional[AccountClusterer] = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    top_limit: int = 10,
) -> FullReport:
    """Every figure for every chain in ``source``, one pass per chain."""
    coerced = as_frame(source)
    frame = coerced.frame if isinstance(coerced, TxView) else coerced
    report = FullReport()
    for chain in frame.chains():
        view = coerced.chain_view(chain)
        # Only report chains actually present in the source: a view may
        # deliberately exclude chains the underlying frame contains.
        if not len(view):
            continue
        report.chains[chain] = _figures_for_view(
            view,
            chain,
            chain_window(coerced, view, chain),
            oracle=oracle,
            clusterer=clusterer,
            bin_seconds=bin_seconds,
            top_limit=top_limit,
        )
    return report
