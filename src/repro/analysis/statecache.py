"""Chunk-state aggregate cache: memoized per-chunk accumulator states.

Every committed :class:`~repro.collection.store.FrameStore` chunk is
immutable and checksummed, and every figure accumulator speaks
``export_state`` / ``restore_state`` / ``merge`` — which makes a chunk's
folded accumulator state a *materialized partial aggregate*: computed once,
reusable by every later report over the same chunk.  This module is that
cache.  A report over an unchanged store folds cached states instead of
rescanning, so repeated reports cost O(new data), not O(history).

Layout
------

Entries live in a ``cache/`` directory beside the store's chunk files
(:data:`~repro.collection.store.STATE_CACHE_DIR`), one file per
(chunk, configuration) pair.  The **key** — embedded in the file name, so
a lookup is one ``open`` — is the tuple:

* the chunk's content checksum (adler32 of the raw on-disk blob);
* a digest of every chain's accumulator ``config_signature`` tuples;
* the statistics mode (``exact`` / ``sketch``);
* the chunk's serialisation format (``v1`` / ``v2``).

Any drift — a rewritten chunk, a different oracle or clusterer, a mode or
format switch — changes the key, so incompatible state can never be
*found*, let alone merged.  Invalidation is therefore mostly free: stale
entries are dead files, cleared wholesale by format migration
(:func:`~repro.collection.store.invalidate_state_cache`), quarantined by
``fsck --repair``, or simply left to miss.

Entry encoding mirrors the checkpoint snapshot idiom: a
:mod:`~repro.common.statecodec` body carrying each chain's
``(qualname, export_state())`` pairs, framed by magic bytes and an adler32
of the body, written atomically (temp file + ``os.replace``).  A failed
checksum, a codec error, an unexpected shape, or a qualname mismatch all
degrade to a **miss** — the consumer rescans that one chunk and overwrites
the bad entry; corruption never surfaces as an error and never changes a
figure.  The ``store.cache_read`` / ``store.cache_write`` faultpoints
(:mod:`repro.common.faults`) exercise exactly those paths.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import config_digest
from repro.common import faults, statecodec

#: Entry framing magic; bump the trailing byte when the body layout changes
#: (old entries then fail the shape check and degrade to misses).
ENTRY_MAGIC = b"RCS\x01"

#: Body schema version inside the codec payload.
ENTRY_VERSION = 1

#: Cache entry file extension.
ENTRY_SUFFIX = ".state"

_CHECKSUM = struct.Struct(">I")

#: Per-chain shipped accumulator states, exactly as the out-of-core workers
#: ship them: ``{chain value: [(accumulator qualname, state payload), ...]}``.
ChainStates = Dict[str, List[Tuple[str, dict]]]


@dataclass(frozen=True)
class EntryKey:
    """The full cache key of one chunk's folded state (all filename-safe)."""

    chunk_checksum: str
    config: str
    stats: str
    chunk_format: str

    def filename(self) -> str:
        return (
            f"state-{self.chunk_checksum}-{self.config}"
            f"-{self.stats}-{self.chunk_format}{ENTRY_SUFFIX}"
        )


@dataclass(frozen=True)
class CacheContext:
    """The chunk-independent half of a key, shipped to worker processes.

    The config digest and stats mode are captured once in the parent (the
    worker's ambient mode may differ from the factories it was handed —
    ``--stats`` is a parent-side context, not an environment variable), so
    every process keys entries identically.
    """

    directory: str
    config: str
    stats: str

    def key(self, chunk_checksum: str, chunk_format: str) -> EntryKey:
        return EntryKey(chunk_checksum, self.config, self.stats, chunk_format)


def parse_entry_name(name: str) -> Optional[EntryKey]:
    """Recover an :class:`EntryKey` from an entry file name, or ``None``.

    ``None`` means the file is not a recognisable cache entry (a crash
    leftover ``.tmp``, a foreign file) — fsck flags those as orphaned.
    """
    if not (name.startswith("state-") and name.endswith(ENTRY_SUFFIX)):
        return None
    parts = name[len("state-") : -len(ENTRY_SUFFIX)].split("-")
    if len(parts) != 4 or not all(parts):
        return None
    return EntryKey(*parts)


def factories_digest(factories: Dict) -> str:
    """Digest of every chain factory's accumulator configuration.

    Instantiates each factory once and digests the sorted per-chain
    ``config_signature`` tuples — the exact compatibility gate ``merge`` /
    ``restore_state`` define, so two runs share cache entries if and only
    if folding state between them would be well-defined.
    """
    signatures = []
    for chain_key in sorted(factories):
        accumulators = list(factories[chain_key]())
        signatures.append(
            (
                chain_key,
                tuple(
                    accumulator.config_signature()
                    for accumulator in accumulators
                ),
            )
        )
    return config_digest(signatures)


def encode_entry(states: ChainStates) -> bytes:
    """Frame one chunk's per-chain states as a durable cache entry blob."""
    body = statecodec.encode({"version": ENTRY_VERSION, "chains": states})
    return ENTRY_MAGIC + _CHECKSUM.pack(zlib.adler32(body) & 0xFFFFFFFF) + body


def decode_entry(blob: bytes) -> Optional[ChainStates]:
    """The per-chain states inside an entry blob, or ``None`` if unusable.

    Every failure mode — short blob, wrong magic, checksum mismatch, codec
    error, unexpected shape — returns ``None``: the cache contract is that
    a bad entry is indistinguishable from an absent one.
    """
    prefix = len(ENTRY_MAGIC) + _CHECKSUM.size
    if len(blob) < prefix or not blob.startswith(ENTRY_MAGIC):
        return None
    (expected,) = _CHECKSUM.unpack(blob[len(ENTRY_MAGIC) : prefix])
    body = blob[prefix:]
    if zlib.adler32(body) & 0xFFFFFFFF != expected:
        return None
    try:
        payload = statecodec.decode(body)
    except statecodec.CodecError:
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != ENTRY_VERSION
        or not isinstance(payload.get("chains"), dict)
    ):
        return None
    chains = payload["chains"]
    for shipped in chains.values():
        if not isinstance(shipped, (list, tuple)):
            return None
        for pair in shipped:
            if not (
                isinstance(pair, (list, tuple))
                and len(pair) == 2
                and isinstance(pair[0], str)
                and isinstance(pair[1], dict)
            ):
                return None
    return {key: [tuple(pair) for pair in shipped] for key, shipped in chains.items()}


class ChunkStateCache:
    """Reader/writer for one store's chunk-state cache directory.

    Instances carry ``hits`` / ``misses`` counters for the lookups they
    performed (or that workers reported back through them), so callers can
    assert and surface exactly how much history a report skipped.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    @classmethod
    def for_store(cls, store_directory: str) -> "ChunkStateCache":
        from repro.collection.store import state_cache_dir

        return cls(state_cache_dir(store_directory))

    def context(self, config: str, stats: str) -> CacheContext:
        return CacheContext(self.directory, config, stats)

    def entry_path(self, key: EntryKey) -> str:
        return os.path.join(self.directory, key.filename())

    def load(self, key: EntryKey) -> Optional[ChainStates]:
        """One keyed entry's states, or ``None`` (miss; never raises).

        Does not touch the hit/miss counters — the consumer counts, because
        a decodable entry can still fail the restore step and must then be
        recounted as a miss (see the scan loop in
        :mod:`repro.analysis.parallel`).
        """
        try:
            with open(self.entry_path(key), "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        action = faults.check("store.cache_read")
        if action is not None:
            blob = action.corrupt(blob)
        return decode_entry(blob)

    def store(self, key: EntryKey, states: ChainStates) -> None:
        """Atomically persist one chunk's states; best-effort, never raises.

        Rides the manifest-commit idiom: full write to a unique temp file,
        then one ``os.replace`` — a reader sees either the old entry or the
        new one, never a torn half.  Real I/O errors are swallowed (the
        cache is an optimisation; a read-only disk must not fail the
        report).  An injected ``crash`` propagates as
        :class:`~repro.common.faults.InjectedCrash` — the simulated process
        death the soak harness recovers from.
        """
        blob = encode_entry(states)
        action = faults.check("store.cache_write")
        disk_blob = blob
        if action is not None and action.mode in (
            faults.MODE_TORN,
            faults.MODE_BITFLIP,
            faults.MODE_TRUNCATE,
        ):
            disk_blob = action.corrupt(blob)
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                prefix=key.filename() + ".", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(disk_blob)
                if action is not None and action.mode == faults.MODE_CRASH:
                    raise faults.InjectedCrash(
                        "injected crash before cache entry rename"
                    )
                os.replace(temp_path, self.entry_path(key))
            except faults.InjectedCrash:
                raise
            except OSError:
                try:
                    os.remove(temp_path)
                except OSError:
                    pass
        except faults.InjectedCrash:
            raise
        except OSError:
            return

    def clear(self) -> int:
        """Remove every entry (and temp leftover); returns files removed."""
        if not os.path.isdir(self.directory):
            return 0
        removed = 0
        for name in os.listdir(self.directory):
            path = os.path.join(self.directory, name)
            if os.path.isfile(path):
                try:
                    os.remove(path)
                except OSError:
                    continue
                removed += 1
        return removed

    def stat(self) -> Dict[str, object]:
        """On-disk accounting: entry count, total bytes, leftovers."""
        entries = 0
        entry_bytes = 0
        other_files = 0
        if os.path.isdir(self.directory):
            for name in os.listdir(self.directory):
                path = os.path.join(self.directory, name)
                if not os.path.isfile(path):
                    continue
                if parse_entry_name(name) is not None:
                    entries += 1
                    entry_bytes += os.path.getsize(path)
                else:
                    other_files += 1
        return {
            "directory": self.directory,
            "entries": entries,
            "bytes": entry_bytes,
            "other_files": other_files,
        }
