"""Throughput time series and TPS (Figure 3 and the headline numbers).

Figure 3 plots, for each chain, the number of transactions per 6-hour bin
broken down by category; the introduction quotes the average throughput as
20 TPS for EOS, 0.08 TPS for Tezos and 19 TPS for XRP.  Both views are
computed here from a stream of canonical transaction records.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.clock import SECONDS_PER_HOUR
from repro.common.errors import AnalysisError
from repro.common.records import TransactionRecord

#: Figure 3 uses 6-hour bins.
DEFAULT_BIN_SECONDS = 6 * SECONDS_PER_HOUR


@dataclass
class ThroughputSeries:
    """Per-category transaction counts over consecutive time bins."""

    bin_seconds: float
    start: float
    categories: Tuple[str, ...]
    bins: List[Dict[str, int]] = field(default_factory=list)

    @property
    def bin_count(self) -> int:
        return len(self.bins)

    def bin_start(self, index: int) -> float:
        """Timestamp at which bin ``index`` begins."""
        return self.start + index * self.bin_seconds

    def totals(self) -> Dict[str, int]:
        """Total count per category across all bins."""
        totals: Dict[str, int] = {category: 0 for category in self.categories}
        for bin_counts in self.bins:
            for category, count in bin_counts.items():
                totals[category] = totals.get(category, 0) + count
        return totals

    def series_for(self, category: str) -> List[int]:
        """Counts of one category across bins (a single plotted line)."""
        return [bin_counts.get(category, 0) for bin_counts in self.bins]

    def total_series(self) -> List[int]:
        """Total counts per bin across every category."""
        return [sum(bin_counts.values()) for bin_counts in self.bins]

    def peak_bin(self) -> Tuple[int, int]:
        """(bin index, total count) of the busiest bin."""
        totals = self.total_series()
        if not totals:
            raise AnalysisError("throughput series has no bins")
        index = max(range(len(totals)), key=totals.__getitem__)
        return index, totals[index]

    def average_per_bin(self, category: Optional[str] = None) -> float:
        if not self.bins:
            return 0.0
        if category is None:
            return sum(self.total_series()) / len(self.bins)
        return sum(self.series_for(category)) / len(self.bins)


def bin_throughput(
    records: Iterable[TransactionRecord],
    categorizer: Callable[[TransactionRecord], str],
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> ThroughputSeries:
    """Build a Figure 3-style series: counts per ``bin_seconds`` per category.

    ``categorizer`` maps a record to its plotted category (an application
    category for EOS, the operation kind for Tezos, the transaction type and
    success flag for XRP).
    """
    if bin_seconds <= 0:
        raise AnalysisError("bin_seconds must be positive")
    materialized = list(records)
    if not materialized:
        raise AnalysisError("cannot bin an empty record stream")
    timestamps = [record.timestamp for record in materialized]
    series_start = start if start is not None else min(timestamps)
    series_end = end if end is not None else max(timestamps)
    if series_end < series_start:
        raise AnalysisError("end must not precede start")
    bin_count = int((series_end - series_start) // bin_seconds) + 1
    bins: List[Dict[str, int]] = [defaultdict(int) for _ in range(bin_count)]
    categories: Dict[str, None] = {}
    for record in materialized:
        if record.timestamp < series_start or record.timestamp > series_end:
            continue
        index = int((record.timestamp - series_start) // bin_seconds)
        category = categorizer(record)
        categories[category] = None
        bins[index][category] += 1
    return ThroughputSeries(
        bin_seconds=bin_seconds,
        start=series_start,
        categories=tuple(categories),
        bins=[dict(bin_counts) for bin_counts in bins],
    )


def transactions_per_second(
    transaction_count: int, duration_seconds: float
) -> float:
    """Average TPS over a window (the paper's headline metric)."""
    if duration_seconds <= 0:
        raise AnalysisError("duration must be positive")
    return transaction_count / duration_seconds


def scaled_tps(
    transaction_count: int, duration_seconds: float, scale_factor: float
) -> float:
    """TPS extrapolated to the paper's full traffic scale.

    The workloads generate a configurable fraction of the real per-day
    volume; dividing the measured TPS by that fraction yields the number to
    compare against the paper's 20 / 0.08 / 19 TPS.
    """
    if scale_factor <= 0:
        raise AnalysisError("scale_factor must be positive")
    return transactions_per_second(transaction_count, duration_seconds) / scale_factor


def spike_ratio(series: ThroughputSeries, split_timestamp: float) -> float:
    """Ratio of average per-bin traffic after vs before ``split_timestamp``.

    Used to verify the ">10x traffic increase after the EIDOS launch"
    observation (§4.1) and the XRP spam-wave amplitudes (§4.3).
    """
    before: List[int] = []
    after: List[int] = []
    for index, total in enumerate(series.total_series()):
        if series.bin_start(index) < split_timestamp:
            before.append(total)
        else:
            after.append(total)
    if not before or not after:
        raise AnalysisError("split timestamp leaves one side of the series empty")
    before_avg = sum(before) / len(before)
    after_avg = sum(after) / len(after)
    if before_avg == 0:
        return float("inf")
    return after_avg / before_avg
