"""Throughput time series and TPS (Figure 3 and the headline numbers).

Figure 3 plots, for each chain, the number of transactions per 6-hour bin
broken down by category; the introduction quotes the average throughput as
20 TPS for EOS, 0.08 TPS for Tezos and 19 TPS for XRP.  Both views are
computed here from the columnar transaction frame: the binning is a
single-pass :class:`ThroughputSeriesAccumulator` so it can share the
engine's one iteration with every other figure, and the public
:func:`bin_throughput` stays a backward-compatible wrapper.
"""

from __future__ import annotations

import functools
import uuid
from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from array import array

from repro.common import kernels
from repro.common.clock import SECONDS_PER_HOUR
from repro.common.columns import FrameLike, TxFrame, as_frame, as_ndarray, view_of
from repro.common.errors import AnalysisError
from repro.common.records import TransactionRecord
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, gather
from repro.analysis.vectorized import block_columns, pack_codes, unique_counts_ordered
from repro.common.statecodec import pack_str_table, restore_str_table

#: Figure 3 uses 6-hour bins.
DEFAULT_BIN_SECONDS = 6 * SECONDS_PER_HOUR

#: A categorizer factory: given the bound frame, returns a row → category
#: label function.  Working on row indexes (codes) instead of materialised
#: records is what keeps the binning cheap inside the shared pass.
RowCategorizerFactory = Callable[[TxFrame], Callable[[int], str]]

#: A key-column categorizer factory: given the bound frame, returns the
#: integer column(s) whose values identify a category plus a labeler mapping
#: a column value (or tuple of values) to its display label.  This is the
#: vectorised form — bins are counted with bulk ``Counter.update`` over
#: column slices and labels are resolved once per distinct key.
KeyColumnsFactory = Callable[[TxFrame], Tuple[Tuple[Sequence, ...], Callable]]


@dataclass
class ThroughputSeries:
    """Per-category transaction counts over consecutive time bins."""

    bin_seconds: float
    start: float
    categories: Tuple[str, ...]
    bins: List[Dict[str, int]] = field(default_factory=list)

    @property
    def bin_count(self) -> int:
        return len(self.bins)

    def bin_start(self, index: int) -> float:
        """Timestamp at which bin ``index`` begins."""
        return self.start + index * self.bin_seconds

    def totals(self) -> Dict[str, int]:
        """Total count per category across all bins."""
        totals: Dict[str, int] = {category: 0 for category in self.categories}
        for bin_counts in self.bins:
            for category, count in bin_counts.items():
                totals[category] = totals.get(category, 0) + count
        return totals

    def series_for(self, category: str) -> List[int]:
        """Counts of one category across bins (a single plotted line)."""
        return [bin_counts.get(category, 0) for bin_counts in self.bins]

    def total_series(self) -> List[int]:
        """Total counts per bin across every category."""
        return [sum(bin_counts.values()) for bin_counts in self.bins]

    def peak_bin(self) -> Tuple[int, int]:
        """(bin index, total count) of the busiest bin."""
        totals = self.total_series()
        if not totals:
            raise AnalysisError("throughput series has no bins")
        index = max(range(len(totals)), key=totals.__getitem__)
        return index, totals[index]

    def average_per_bin(self, category: Optional[str] = None) -> float:
        if not self.bins:
            return 0.0
        if category is None:
            return sum(self.total_series()) / len(self.bins)
        return sum(self.series_for(category)) / len(self.bins)


#: Session-unique token embedded in unprovable factory identities, so a
#: checkpoint written by another process can never accidentally match one.
_SESSION_TOKEN = uuid.uuid4().hex


def _categorizer_id(factory) -> str:
    """Identity of a categorizer factory for config signatures.

    Order of preference: an explicit ``signature_id`` attribute (set by
    wrappers like :func:`record_categorizer`), a ``functools.partial``
    expanded into its wrapped function plus arguments, then — for plain
    module-level functions only — the module-qualified name.

    Closures (and anything else whose behaviour the name cannot prove:
    two closures returned by the same maker share one ``__qualname__``
    while behaving differently) get a session-unique identity instead.
    That makes them deliberately *unmergeable* across checkpoints — a
    restore falls back to a rescan, which is over-conservative but never
    silently wrong.  Attach a ``signature_id`` to a closure factory to
    opt into cross-session checkpoint reuse.
    """
    explicit = getattr(factory, "signature_id", None)
    if explicit is not None:
        return str(explicit)
    if isinstance(factory, functools.partial):
        inner = _categorizer_id(factory.func)
        keywords = tuple(sorted(factory.keywords.items())) if factory.keywords else ()
        return f"partial({inner}, args={factory.args!r}, keywords={keywords!r})"
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", None)
    if (
        module
        and qualname
        and "<locals>" not in qualname
        and not getattr(factory, "__closure__", None)
    ):
        return f"{module}.{qualname}"
    return f"unprovable:{module}.{qualname}@{id(factory):x}:{_SESSION_TOKEN}"


def record_categorizer(
    categorizer: Callable[[TransactionRecord], str]
) -> RowCategorizerFactory:
    """Adapt a legacy record-level categorizer to the row-level protocol.

    The compatibility path materialises one record per row, so prefer a
    native row categorizer (e.g. :func:`type_name_categorizer`) in new code.
    """

    def factory(frame: TxFrame) -> Callable[[int], str]:
        record = frame.record
        return lambda row: categorizer(record(row))

    # Distinct wrapped categorizers must yield distinct config signatures;
    # the closure's own __qualname__ is shared by every wrap.
    factory.signature_id = f"record_categorizer({_categorizer_id(categorizer)})"
    return factory


def type_name_categorizer(frame: TxFrame) -> Callable[[int], str]:
    """Row categorizer: the record's type string (Tezos operation kinds)."""
    type_codes = frame.type_code
    type_values = frame.types.values
    return lambda row: type_values[type_codes[row]]


class ThroughputSeriesAccumulator(Accumulator):
    """Single-pass Figure 3 binning: counts per time bin per category.

    ``start`` anchors bin 0.  The engine's callers know the window before
    the pass starts (the frame tracks per-chain timestamp bounds at append
    time), so the accumulator never needs a pre-scan of its own.

    Two categorizer forms are accepted: a ``categorizer`` factory producing
    a row → label callable (the flexible form, used by the
    :func:`bin_throughput` compatibility wrapper) or ``key_columns``
    producing integer key column(s) plus a labeler.  With key columns the
    batch path is vectorised: on a sorted contiguous scan the bin
    boundaries are located by bisection and each bin's categories counted
    with one bulk ``Counter.update`` over the column slice.
    """

    name = "throughput_series"

    #: ``_labeler`` is a closure over the bound frame's columns; the merging
    #: side resolves labels with its own frame-derived labeler instead.
    _TRANSIENT = ("_frame", "_labeler")

    def __init__(
        self,
        categorizer: Optional[RowCategorizerFactory] = None,
        bin_seconds: float = DEFAULT_BIN_SECONDS,
        start: float = 0.0,
        end: Optional[float] = None,
        key_columns: Optional[KeyColumnsFactory] = None,
    ):
        if bin_seconds <= 0:
            raise AnalysisError("bin_seconds must be positive")
        if end is not None and end < start:
            raise AnalysisError("end must not precede start")
        if categorizer is None and key_columns is None:
            raise AnalysisError("a categorizer or key_columns factory is required")
        self.categorizer = categorizer
        self.key_columns = key_columns
        self.bin_seconds = bin_seconds
        self.start = start
        self.end = end

    def bind(self, frame: TxFrame) -> Step:
        bins = self._bins = {}
        categories = self._categories = {}
        self._raw_bins = None
        if self.categorizer is not None:
            categorize = self.categorizer(frame)
        else:
            columns, labeler = self.key_columns(frame)
            if len(columns) == 1:
                column = columns[0]
                categorize = lambda row: labeler(column[row])
            else:
                categorize = lambda row: labeler(
                    tuple(column[row] for column in columns)
                )
        timestamps = frame.timestamp
        start = self.start
        end = self.end
        bin_seconds = self.bin_seconds

        def step(row: int) -> None:
            timestamp = timestamps[row]
            if timestamp < start or (end is not None and timestamp > end):
                return
            index = int((timestamp - start) // bin_seconds)
            category = categorize(row)
            categories[category] = None
            bin_counts = bins.get(index)
            if bin_counts is None:
                bin_counts = bins[index] = {}
            bin_counts[category] = bin_counts.get(category, 0) + 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if self.key_columns is None:
            return super().bind_batch(frame)
        # The factory may build per-frame lookups (e.g. the EOS category
        # table), so it runs once and feeds whichever kernel binds.
        columns, labeler = self.key_columns(frame)
        if kernels.use_numpy():
            consume = self._bind_batch_numpy(frame, columns, labeler)
            if consume is not None:
                return consume
        self._bins = {}
        self._categories = {}
        raw_bins = self._raw_bins = {}
        self._labeler = labeler
        single = columns[0] if len(columns) == 1 else None
        timestamps = frame.timestamp
        sorted_scan = frame.timestamps_sorted
        start = self.start
        end = self.end
        bin_seconds = self.bin_seconds

        def consume(rows: RowIndices) -> None:
            if (
                sorted_scan
                and isinstance(rows, range)
                and rows.step == 1
                and len(rows)
            ):
                # Sorted contiguous scan: locate each bin boundary by
                # bisection and count the bin's slice in one C call.
                lo = bisect_left(timestamps, start, rows.start, rows.stop)
                hi = (
                    bisect_right(timestamps, end, lo, rows.stop)
                    if end is not None
                    else rows.stop
                )
                while lo < hi:
                    index = int((timestamps[lo] - start) // bin_seconds)
                    boundary = start + (index + 1) * bin_seconds
                    split = bisect_left(timestamps, boundary, lo, hi)
                    counter = raw_bins.get(index)
                    if counter is None:
                        counter = raw_bins[index] = Counter()
                    if single is not None:
                        counter.update(single[lo:split])
                    else:
                        counter.update(
                            zip(*(column[lo:split] for column in columns))
                        )
                    lo = split
                return
            # Unsorted or filtered rows: per-row binning over gathered slices.
            gathered_ts = gather(timestamps, rows)
            if single is not None:
                keys = gather(single, rows)
            else:
                keys = list(zip(*(gather(column, rows) for column in columns)))
            for timestamp, key in zip(gathered_ts, keys):
                if timestamp < start or (end is not None and timestamp > end):
                    continue
                index = int((timestamp - start) // bin_seconds)
                counter = raw_bins.get(index)
                if counter is None:
                    counter = raw_bins[index] = Counter()
                counter[key] += 1

        return consume

    def _bind_batch_numpy(
        self, frame: TxFrame, columns, labeler
    ) -> Optional[BatchStep]:
        """Vectorized binning: one packed (bin, key) histogram per block.

        The bin index, the window mask and the key packing are all ndarray
        operations; labels still resolve once per *distinct* key at
        finalisation.  Returns ``None`` when a key column is not
        buffer-backed (a custom factory yielding a plain list) — the python
        block kernel handles that case.
        """
        np = kernels.numpy_module()
        nd_columns = []
        for column in columns:
            if isinstance(column, np.ndarray):
                nd_columns.append(column)
            elif isinstance(column, array):
                nd_columns.append(as_ndarray(column))
            else:
                return None
        self._bins = {}
        self._categories = {}
        raw_bins = self._raw_bins = {}
        self._labeler = labeler
        single = len(nd_columns) == 1
        timestamps = frame.ndarray("timestamp")
        start = self.start
        end = self.end
        bin_seconds = self.bin_seconds

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            blocks = block_columns(rows, timestamps, *nd_columns)
            block_ts, keys = blocks[0], blocks[1:]
            mask = block_ts >= start
            if end is not None:
                mask &= block_ts <= end
            if not mask.all():
                block_ts = block_ts[mask]
                if not len(block_ts):
                    return
                keys = tuple(key[mask] for key in keys)
            bin_indices = ((block_ts - start) // bin_seconds).astype(np.int64)
            sizes = [int(bin_indices.max()) + 1]
            sizes.extend(int(key.max()) + 1 if len(key) else 1 for key in keys)
            packed = pack_codes((bin_indices,) + keys, sizes)
            if packed is None:  # pragma: no cover - int64 key-space overflow
                key_lists = [key.tolist() for key in keys]
                row_keys = key_lists[0] if single else list(zip(*key_lists))
                for bin_index, key in zip(bin_indices.tolist(), row_keys):
                    counter = raw_bins.get(bin_index)
                    if counter is None:
                        counter = raw_bins[bin_index] = Counter()
                    counter[key] += 1
                return
            uniques, counts = unique_counts_ordered(packed)
            # Decode (bin index, key columns) back out of the packed key.
            parts: list = []
            rest = uniques
            for size in reversed(sizes[1:]):
                rest, part = np.divmod(rest, max(size, 1))
                parts.append(part)
            parts.reverse()
            if single:
                decoded = parts[0].tolist()
            else:
                decoded = list(zip(*(part.tolist() for part in parts)))
            for bin_index, key, count in zip(
                rest.tolist(), decoded, counts.tolist()
            ):
                counter = raw_bins.get(bin_index)
                if counter is None:
                    counter = raw_bins[bin_index] = Counter()
                counter[key] += count

        return consume

    def merge(self, other: "ThroughputSeriesAccumulator") -> None:
        # Raw (key-columns) state: per-bin Counters of unresolved keys.
        other_raw = getattr(other, "_raw_bins", None)
        if other_raw:
            mine = self._raw_bins
            if mine is None:
                mine = self._raw_bins = {}
            for index, counter in other_raw.items():
                target = mine.get(index)
                if target is None:
                    mine[index] = counter.copy()
                else:
                    target.update(counter)
        # Labelled (row-mode) state.
        for index, counts in other._bins.items():
            target = self._bins.get(index)
            if target is None:
                target = self._bins[index] = {}
            for category, count in counts.items():
                target[category] = target.get(category, 0) + count
        for category in other._categories:
            self._categories[category] = None

    def export_state(self) -> Dict:
        """Columnar snapshot of the binning state.

        The raw (key-columns) bins flatten into whole int64 columns — bin
        indices and per-bin entry counts plus the concatenated key/count
        columns — so export cost is a handful of C ``extend`` calls per
        bin, not per entry.  Labelled (row-mode) bins export as string
        tables.  Both keep insertion order, because :meth:`finalize`
        derives the category tuple from first-seen order within
        time-sorted bins.
        """
        raw = getattr(self, "_raw_bins", None)
        raw_payload = None
        if raw is not None:
            # Key shape is fixed by the key-columns factory: scalar ints
            # for a single column, tuples of a fixed width otherwise.
            width = 1
            for counter in raw.values():
                for key in counter:
                    width = len(key) if isinstance(key, tuple) else 1
                    break
                else:
                    continue
                break
            key_columns = [array("q") for _ in range(width)]
            counts = array("q")
            if width == 1:
                column = key_columns[0]
                for counter in raw.values():
                    column.extend(counter.keys())
                    counts.extend(counter.values())
            else:
                for counter in raw.values():
                    for column, values in zip(key_columns, zip(*counter.keys())):
                        column.extend(values)
                    counts.extend(counter.values())
            raw_payload = {
                "w": width,
                "indices": array("q", raw.keys()),
                "sizes": array("q", map(len, raw.values())),
                "keys": key_columns,
                "counts": counts,
            }
        return {
            "raw": raw_payload,
            "bins": [
                [index, pack_str_table(counts)] for index, counts in self._bins.items()
            ],
            "categories": list(self._categories),
        }

    def restore_state(self, payload: Dict) -> None:
        raw_payload = payload["raw"]
        if raw_payload is not None:
            mine = self._raw_bins
            if mine is None:
                mine = self._raw_bins = {}
            width = raw_payload["w"]
            key_columns = raw_payload["keys"]
            counts = raw_payload["counts"]
            position = 0
            for index, size in zip(raw_payload["indices"], raw_payload["sizes"]):
                chunk = slice(position, position + size)
                position += size
                if width == 1:
                    pairs = zip(key_columns[0][chunk], counts[chunk])
                else:
                    pairs = zip(
                        zip(*(column[chunk] for column in key_columns)),
                        counts[chunk],
                    )
                counter = mine.get(index)
                if counter is None:
                    mine[index] = Counter(dict(pairs))
                    continue
                get = counter.get
                for key, count in pairs:
                    counter[key] = get(key, 0) + count
        for index, table in payload["bins"]:
            target = self._bins.get(index)
            if target is None:
                target = self._bins[index] = {}
            restore_str_table(target, table)
        for category in payload["categories"]:
            self._categories[category] = None

    def config_signature(self) -> tuple:
        """Bin geometry plus the categorizer identity.

        ``end`` is deliberately excluded: an incremental update legitimately
        extends the series window, and the binning state (bin index →
        counter) is anchored solely by ``start`` and ``bin_seconds``.  A
        *smaller* start (rows older than the checkpointed anchor) does
        change the signature, which is what forces the incremental reporter
        to fall back to a full rescan in that case.
        """
        factory = self.key_columns if self.key_columns is not None else self.categorizer
        return (
            type(self).__qualname__,
            self.name,
            self.bin_seconds,
            self.start,
            _categorizer_id(factory),
        )

    def finalize(self) -> ThroughputSeries:
        bins = self._bins
        categories = self._categories
        if self._raw_bins is not None:
            # Resolve raw keys to labels once per distinct key per bin,
            # scanning bins in time order so the category tuple keeps the
            # first-seen order a row-at-a-time pass would produce.
            labeler = self._labeler
            label_cache: Dict = {}
            for index in sorted(self._raw_bins):
                merged: Dict[str, int] = {}
                for key, count in self._raw_bins[index].items():
                    label = label_cache.get(key)
                    if label is None:
                        label = label_cache[key] = labeler(key)
                    merged[label] = merged.get(label, 0) + count
                    categories[label] = None
                bins[index] = merged
        if self.end is not None:
            bin_count = int((self.end - self.start) // self.bin_seconds) + 1
        else:
            bin_count = (max(bins) + 1) if bins else 0
        return ThroughputSeries(
            bin_seconds=self.bin_seconds,
            start=self.start,
            categories=tuple(categories),
            bins=[dict(bins.get(index, {})) for index in range(bin_count)],
        )


def bin_throughput(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    categorizer: Callable[[TransactionRecord], str],
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> ThroughputSeries:
    """Build a Figure 3-style series: counts per ``bin_seconds`` per category.

    ``categorizer`` maps a record to its plotted category (an application
    category for EOS, the operation kind for Tezos, the transaction type and
    success flag for XRP).  Thin wrapper over
    :class:`ThroughputSeriesAccumulator`.
    """
    if bin_seconds <= 0:
        raise AnalysisError("bin_seconds must be positive")
    view = view_of(as_frame(records))
    if len(view) == 0:
        raise AnalysisError("cannot bin an empty record stream")
    series_start = start if start is not None else view.min_timestamp()
    series_end = end if end is not None else view.max_timestamp()
    if series_end < series_start:
        raise AnalysisError("end must not precede start")
    accumulator = ThroughputSeriesAccumulator(
        record_categorizer(categorizer),
        bin_seconds=bin_seconds,
        start=series_start,
        end=series_end,
    )
    return accumulator.run(view)


def transactions_per_second(
    transaction_count: int, duration_seconds: float
) -> float:
    """Average TPS over a window (the paper's headline metric)."""
    if duration_seconds <= 0:
        raise AnalysisError("duration must be positive")
    return transaction_count / duration_seconds


def scaled_tps(
    transaction_count: int, duration_seconds: float, scale_factor: float
) -> float:
    """TPS extrapolated to the paper's full traffic scale.

    The workloads generate a configurable fraction of the real per-day
    volume; dividing the measured TPS by that fraction yields the number to
    compare against the paper's 20 / 0.08 / 19 TPS.
    """
    if scale_factor <= 0:
        raise AnalysisError("scale_factor must be positive")
    return transactions_per_second(transaction_count, duration_seconds) / scale_factor


def spike_ratio(series: ThroughputSeries, split_timestamp: float) -> float:
    """Ratio of average per-bin traffic after vs before ``split_timestamp``.

    Used to verify the ">10x traffic increase after the EIDOS launch"
    observation (§4.1) and the XRP spam-wave amplitudes (§4.3).
    """
    before: List[int] = []
    after: List[int] = []
    for index, total in enumerate(series.total_series()):
        if series.bin_start(index) < split_timestamp:
            before.append(total)
        else:
            after.append(total)
    if not before or not after:
        raise AnalysisError("split timestamp leaves one side of the series empty")
    before_avg = sum(before) / len(before)
    after_avg = sum(after) / len(after)
    if before_avg == 0:
        return float("inf")
    return after_avg / before_avg
