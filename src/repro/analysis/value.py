"""XRP value-transfer analysis (Figure 7, Figure 11, §4.3).

The paper's central XRP finding is that only ~2 % of the ledger's throughput
carries economic value.  Establishing that requires three ingredients, all
implemented here:

* a **decomposition** of throughput into failed transactions, payments and
  offers (Figure 7's sunburst);
* a **price oracle**: an IOU token is only considered valuable if it has a
  positive executed exchange rate against XRP on the ledger's own DEX
  (issuer-specific — "BTC" from a random account is worth nothing);
* **offer outcome accounting**: an offer only moves value if it was filled
  to some extent (merely 0.2 % of offers are).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.records import ChainId, TransactionRecord
from repro.xrp.amounts import XRP_CURRENCY
from repro.xrp.orderbook import OrderBook


class ExchangeRateOracle:
    """Issuer-specific IOU → XRP exchange rates, derived from DEX executions.

    Mirrors the Ripple Data API the paper queries: the rate of
    ``(currency, issuer)`` is the average rate of its executed exchanges
    against XRP; tokens that never traded have a rate of zero and are deemed
    valueless (§4.3).
    """

    def __init__(self, rates: Optional[Mapping[Tuple[str, str], float]] = None):
        self._rates: Dict[Tuple[str, str], float] = dict(rates or {})

    @classmethod
    def from_orderbook(cls, orderbook: OrderBook) -> "ExchangeRateOracle":
        """Build the oracle from every asset seen in the book's executions."""
        assets = set()
        for execution in orderbook.executions:
            assets.add(execution.sold.asset_key)
            assets.add(execution.bought.asset_key)
        rates: Dict[Tuple[str, str], float] = {}
        for currency, issuer in assets:
            if currency == XRP_CURRENCY:
                continue
            rates[(currency, issuer)] = orderbook.average_rate_vs_xrp(currency, issuer)
        return cls(rates)

    def rate(self, currency: str, issuer: str) -> float:
        """XRP per unit of the asset; native XRP has rate 1 by definition."""
        if currency == XRP_CURRENCY:
            return 1.0
        return self._rates.get((currency, issuer), 0.0)

    def has_value(self, currency: str, issuer: str) -> bool:
        return self.rate(currency, issuer) > 0.0

    def xrp_value(self, currency: str, issuer: str, amount: float) -> float:
        """Value of ``amount`` of the asset, denominated in XRP."""
        return amount * self.rate(currency, issuer)

    def known_assets(self) -> List[Tuple[str, str]]:
        return sorted(self._rates)


@dataclass(frozen=True)
class ThroughputDecomposition:
    """Figure 7: the full decomposition of XRP ledger throughput."""

    total: int
    failed: int
    successful: int
    payments: int
    payments_with_value: int
    payments_without_value: int
    offers: int
    offers_exchanged: int
    offers_not_exchanged: int
    others: int

    @property
    def failed_share(self) -> float:
        return self.failed / self.total if self.total else 0.0

    @property
    def payment_value_share(self) -> float:
        """Share of *all* throughput that is a value-bearing payment (~2.1 %)."""
        return self.payments_with_value / self.total if self.total else 0.0

    @property
    def offer_exchange_share(self) -> float:
        """Share of *all* throughput that is an offer leading to an exchange."""
        return self.offers_exchanged / self.total if self.total else 0.0

    @property
    def economic_value_share(self) -> float:
        """The paper's 2.3 % headline: value payments plus exchanged offers."""
        return self.payment_value_share + self.offer_exchange_share

    @property
    def value_bearing_payment_fraction(self) -> float:
        """Among successful payments, the fraction with value (1 in 19)."""
        return self.payments_with_value / self.payments if self.payments else 0.0

    @property
    def offer_fill_fraction(self) -> float:
        """Among successful offers, the fraction fulfilled to some extent (0.2 %)."""
        return self.offers_exchanged / self.offers if self.offers else 0.0


class XrpValueAnalyzer:
    """Computes the Figure 7 decomposition and related value statistics."""

    def __init__(self, oracle: ExchangeRateOracle):
        self.oracle = oracle

    # -- record-level predicates ------------------------------------------------------
    def payment_has_value(self, record: TransactionRecord) -> bool:
        """A successful payment carries value iff its asset has an XRP rate."""
        if record.type != "Payment" or not record.success:
            return False
        if record.amount <= 0:
            return False
        return self.oracle.has_value(record.currency, record.issuer)

    def payment_xrp_value(self, record: TransactionRecord) -> float:
        """XRP-denominated value moved by a payment (0 for valueless tokens)."""
        if not self.payment_has_value(record):
            return 0.0
        return self.oracle.xrp_value(record.currency, record.issuer, record.amount)

    @staticmethod
    def offer_was_exchanged(record: TransactionRecord) -> bool:
        """Whether an OfferCreate led to at least a partial execution."""
        return record.type == "OfferCreate" and bool(record.metadata.get("executed"))

    # -- Figure 7 --------------------------------------------------------------------
    def decompose(self, records: Iterable[TransactionRecord]) -> ThroughputDecomposition:
        total = failed = payments = payments_value = 0
        offers = offers_exchanged = others = 0
        for record in records:
            if record.chain is not ChainId.XRP:
                continue
            total += 1
            if not record.success:
                failed += 1
                continue
            if record.type == "Payment":
                payments += 1
                if self.payment_has_value(record):
                    payments_value += 1
            elif record.type == "OfferCreate":
                offers += 1
                if self.offer_was_exchanged(record):
                    offers_exchanged += 1
            else:
                others += 1
        successful = total - failed
        return ThroughputDecomposition(
            total=total,
            failed=failed,
            successful=successful,
            payments=payments,
            payments_with_value=payments_value,
            payments_without_value=payments - payments_value,
            offers=offers,
            offers_exchanged=offers_exchanged,
            offers_not_exchanged=offers - offers_exchanged,
            others=others,
        )

    # -- error codes (§3.2) ---------------------------------------------------------
    @staticmethod
    def failure_code_distribution(
        records: Iterable[TransactionRecord],
    ) -> Dict[str, Dict[str, int]]:
        """Error-code counts per transaction type for failed transactions."""
        table: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for record in records:
            if record.chain is ChainId.XRP and not record.success and record.error_code:
                table[record.type][record.error_code] += 1
        return {tx_type: dict(codes) for tx_type, codes in table.items()}


@dataclass(frozen=True)
class IouRateRow:
    """One row of Figure 11a: an issuer and its average IOU rate vs XRP."""

    currency: str
    issuer: str
    issuer_name: str
    average_rate: float

    @property
    def is_valueless(self) -> bool:
        return self.average_rate <= 0.0


def iou_rate_table(
    orderbook: OrderBook,
    issuers: Iterable[Tuple[str, str, str]],
) -> List[IouRateRow]:
    """Figure 11a: average executed rate per (currency, issuer).

    ``issuers`` is an iterable of (currency, issuer_address, display_name).
    Issuers whose IOU never traded get a zero rate, reproducing the paper's
    contrast between Bitstamp's BTC (36,050 XRP) and the spammer's BTC (0).
    """
    rows = [
        IouRateRow(
            currency=currency,
            issuer=issuer,
            issuer_name=name,
            average_rate=orderbook.average_rate_vs_xrp(currency, issuer),
        )
        for currency, issuer, name in issuers
    ]
    rows.sort(key=lambda row: -row.average_rate)
    return rows


def rate_history(
    orderbook: OrderBook, currency: str, issuer: str
) -> List[Tuple[float, float]]:
    """Figure 11b: the executed-rate history of one IOU (its rate collapse)."""
    return orderbook.executed_rates_vs_xrp(currency, issuer)


def detect_self_dealing(
    records: Iterable[TransactionRecord], orderbook: OrderBook
) -> List[Dict[str, object]]:
    """Flag IOU issuers whose DEX counterparties received the IOU from them.

    This reproduces the §4.3 Myrone Bagalay finding: the account buying the
    BTC IOU for XRP had itself received the tokens directly from the issuer,
    so the "price" was set between accounts under common control.
    """
    # Who received which IOU directly from its issuer via a Payment?
    received_from_issuer: Dict[Tuple[str, str], set] = defaultdict(set)
    for record in records:
        if record.chain is not ChainId.XRP or record.type != "Payment" or not record.success:
            continue
        if record.currency and record.currency != XRP_CURRENCY and record.sender == record.issuer:
            received_from_issuer[(record.currency, record.issuer)].add(record.receiver)
    findings: List[Dict[str, object]] = []
    for execution in orderbook.executions:
        for amount, buyer in ((execution.sold, execution.buyer), (execution.bought, execution.buyer)):
            key = amount.asset_key
            if amount.currency == XRP_CURRENCY:
                continue
            if buyer in received_from_issuer.get(key, set()):
                findings.append(
                    {
                        "currency": amount.currency,
                        "issuer": amount.issuer,
                        "buyer": buyer,
                        "timestamp": execution.timestamp,
                        "rate": execution.rate,
                        "reason": "buyer previously received this IOU directly from its issuer",
                    }
                )
    return findings
