"""XRP value-transfer analysis (Figure 7, Figure 11, §4.3).

The paper's central XRP finding is that only ~2 % of the ledger's throughput
carries economic value.  Establishing that requires three ingredients, all
implemented here:

* a **decomposition** of throughput into failed transactions, payments and
  offers (Figure 7's sunburst);
* a **price oracle**: an IOU token is only considered valuable if it has a
  positive executed exchange rate against XRP on the ledger's own DEX
  (issuer-specific — "BTC" from a random account is worth nothing);
* **offer outcome accounting**: an offer only moves value if it was filled
  to some extent (merely 0.2 % of offers are).
"""

from __future__ import annotations

import math
from array import array
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.common import kernels, statsmode
from repro.common.columns import CHAIN_CODES, CHAIN_ORDER, FrameLike, TxFrame, as_frame
from repro.common.records import ChainId, TransactionRecord
from repro.common.sketches import DEFAULT_QUANTILE_ALPHA, QuantileSketch
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, config_digest, gather
from repro.analysis.vectorized import block_columns, count_codes, matched_rows
from repro.common.errors import AnalysisError
from repro.common.statecodec import pack_code_table, restore_code_table
from repro.xrp.amounts import XRP_CURRENCY
from repro.xrp.orderbook import OrderBook


class ExchangeRateOracle:
    """Issuer-specific IOU → XRP exchange rates, derived from DEX executions.

    Mirrors the Ripple Data API the paper queries: the rate of
    ``(currency, issuer)`` is the average rate of its executed exchanges
    against XRP; tokens that never traded have a rate of zero and are deemed
    valueless (§4.3).
    """

    def __init__(self, rates: Optional[Mapping[Tuple[str, str], float]] = None):
        self._rates: Dict[Tuple[str, str], float] = dict(rates or {})

    @classmethod
    def from_orderbook(cls, orderbook: OrderBook) -> "ExchangeRateOracle":
        """Build the oracle from every asset seen in the book's executions."""
        assets = set()
        for execution in orderbook.executions:
            assets.add(execution.sold.asset_key)
            assets.add(execution.bought.asset_key)
        rates: Dict[Tuple[str, str], float] = {}
        for currency, issuer in assets:
            if currency == XRP_CURRENCY:
                continue
            rates[(currency, issuer)] = orderbook.average_rate_vs_xrp(currency, issuer)
        return cls(rates)

    def rate(self, currency: str, issuer: str) -> float:
        """XRP per unit of the asset; native XRP has rate 1 by definition."""
        if currency == XRP_CURRENCY:
            return 1.0
        return self._rates.get((currency, issuer), 0.0)

    def has_value(self, currency: str, issuer: str) -> bool:
        return self.rate(currency, issuer) > 0.0

    def xrp_value(self, currency: str, issuer: str, amount: float) -> float:
        """Value of ``amount`` of the asset, denominated in XRP."""
        return amount * self.rate(currency, issuer)

    def known_assets(self) -> List[Tuple[str, str]]:
        return sorted(self._rates)

    def signature(self) -> str:
        """Stable digest of the rate table (checkpoint compatibility key)."""
        return config_digest(self._rates)


@dataclass(frozen=True)
class ThroughputDecomposition:
    """Figure 7: the full decomposition of XRP ledger throughput."""

    total: int
    failed: int
    successful: int
    payments: int
    payments_with_value: int
    payments_without_value: int
    offers: int
    offers_exchanged: int
    offers_not_exchanged: int
    others: int

    @property
    def failed_share(self) -> float:
        return self.failed / self.total if self.total else 0.0

    @property
    def payment_value_share(self) -> float:
        """Share of *all* throughput that is a value-bearing payment (~2.1 %)."""
        return self.payments_with_value / self.total if self.total else 0.0

    @property
    def offer_exchange_share(self) -> float:
        """Share of *all* throughput that is an offer leading to an exchange."""
        return self.offers_exchanged / self.total if self.total else 0.0

    @property
    def economic_value_share(self) -> float:
        """The paper's 2.3 % headline: value payments plus exchanged offers."""
        return self.payment_value_share + self.offer_exchange_share

    @property
    def value_bearing_payment_fraction(self) -> float:
        """Among successful payments, the fraction with value (1 in 19)."""
        return self.payments_with_value / self.payments if self.payments else 0.0

    @property
    def offer_fill_fraction(self) -> float:
        """Among successful offers, the fraction fulfilled to some extent (0.2 %)."""
        return self.offers_exchanged / self.offers if self.offers else 0.0


class XrpDecompositionAccumulator(Accumulator):
    """Single-pass Figure 7 decomposition, including the zero-value counters.

    The per-row work is integer comparisons plus one cached oracle lookup
    per distinct (currency, issuer) pair, so the decomposition rides along
    in the engine's shared pass at negligible cost.
    """

    name = "xrp_decomposition"

    def __init__(self, oracle: ExchangeRateOracle):
        self.oracle = oracle

    def bind(self, frame: TxFrame) -> Step:
        # total, failed, payments, payments_value, offers, offers_exchanged, others
        counters = self._counters = [0, 0, 0, 0, 0, 0, 0]
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        success = frame.success
        amounts = frame.amount
        currency_codes = frame.currency_code
        issuer_codes = frame.issuer_code
        metadata = frame.metadata
        currency_values = frame.currencies.values
        account_values = frame.accounts.values
        xrp = CHAIN_CODES[ChainId.XRP]
        payment_code = frame.types.code("Payment")
        offer_code = frame.types.code("OfferCreate")
        has_value = self.oracle.has_value
        value_cache: Dict[Tuple[int, int], bool] = {}

        def step(row: int) -> None:
            if chain_codes[row] != xrp:
                return
            counters[0] += 1
            if not success[row]:
                counters[1] += 1
                return
            type_code = type_codes[row]
            if type_code == payment_code:
                counters[2] += 1
                if amounts[row] > 0:
                    key = (currency_codes[row], issuer_codes[row])
                    valued = value_cache.get(key)
                    if valued is None:
                        valued = value_cache[key] = has_value(
                            currency_values[key[0]], account_values[key[1]]
                        )
                    if valued:
                        counters[3] += 1
            elif type_code == offer_code:
                counters[4] += 1
                meta = metadata[row]
                if meta and meta.get("executed"):
                    counters[5] += 1
            else:
                counters[6] += 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        counters = self._counters = [0, 0, 0, 0, 0, 0, 0]
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        success = frame.success
        amounts = frame.amount
        currency_codes = frame.currency_code
        issuer_codes = frame.issuer_code
        metadata = frame.metadata
        currency_values = frame.currencies.values
        account_values = frame.accounts.values
        xrp = CHAIN_CODES[ChainId.XRP]
        payment_code = frame.types.code("Payment")
        offer_code = frame.types.code("OfferCreate")
        has_value = self.oracle.has_value
        value_cache: Dict[Tuple[int, int], bool] = {}
        # The bulk of the decomposition (total/failed/payments/offers/others)
        # is a Counter over (chain, success, type) triples — one C call per
        # block; only the oracle check for successful payments and the
        # "executed" metadata flag for offers need a per-row sub-loop.
        bulk = self._bulk = Counter()
        self._payment_code = payment_code
        self._offer_code = offer_code
        self._xrp_code = xrp

        def consume(rows: RowIndices) -> None:
            block_chains = gather(chain_codes, rows)
            block_success = gather(success, rows)
            block_types = gather(type_codes, rows)
            bulk.update(zip(block_chains, block_success, block_types))
            for row, chain, ok, type_code in zip(
                rows, block_chains, block_success, block_types
            ):
                if chain != xrp or not ok:
                    continue
                if type_code == payment_code:
                    if amounts[row] > 0:
                        key = (currency_codes[row], issuer_codes[row])
                        valued = value_cache.get(key)
                        if valued is None:
                            valued = value_cache[key] = has_value(
                                currency_values[key[0]], account_values[key[1]]
                            )
                        if valued:
                            counters[3] += 1
                elif type_code == offer_code:
                    meta = metadata[row]
                    if meta and meta.get("executed"):
                        counters[5] += 1

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: packed (chain, success, type) histogram plus
        boolean-mask reductions for the value and executed-offer counters.

        Only two per-row tails survive: the oracle check runs once per
        *distinct* (currency, issuer) pair, and the ``executed`` metadata
        flag is read only on the (thin) successful-offer slice.
        """
        counters = self._counters = [0, 0, 0, 0, 0, 0, 0]
        chain_codes = frame.ndarray("chain_code")
        type_codes = frame.ndarray("type_code")
        success = frame.ndarray("success")
        amounts = frame.ndarray("amount")
        currency_codes = frame.ndarray("currency_code")
        issuer_codes = frame.ndarray("issuer_code")
        metadata = frame.metadata
        currency_values = frame.currencies.values
        account_values = frame.accounts.values
        xrp = CHAIN_CODES[ChainId.XRP]
        payment_code = frame.types.code("Payment")
        offer_code = frame.types.code("OfferCreate")
        has_value = self.oracle.has_value
        value_cache: Dict[Tuple[int, int], bool] = {}
        bulk = self._bulk = Counter()
        self._payment_code = payment_code
        self._offer_code = offer_code
        self._xrp_code = xrp
        payment = -1 if payment_code is None else payment_code
        offer = -1 if offer_code is None else offer_code
        sizes = (len(CHAIN_ORDER), 2, len(frame.types))
        np = kernels.numpy_module()
        account_count = max(len(frame.accounts), 1)

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            chain, ok, types = block_columns(rows, chain_codes, success, type_codes)
            count_codes(bulk, (chain, ok, types), sizes)
            successful_xrp = (chain == xrp) & (ok != 0)
            if not successful_xrp.any():
                return
            payment_mask = successful_xrp & (types == payment)
            if payment_mask.any():
                block_amounts, block_currencies, block_issuers = block_columns(
                    rows, amounts, currency_codes, issuer_codes
                )
                payment_mask &= block_amounts > 0
                if payment_mask.any():
                    pairs = (
                        block_currencies[payment_mask].astype(np.int64) * account_count
                        + block_issuers[payment_mask]
                    )
                    uniques, counts = np.unique(pairs, return_counts=True)
                    valued_rows = 0
                    for pair, count in zip(uniques.tolist(), counts.tolist()):
                        key = divmod(pair, account_count)
                        valued = value_cache.get(key)
                        if valued is None:
                            valued = value_cache[key] = has_value(
                                currency_values[key[0]], account_values[key[1]]
                            )
                        if valued:
                            valued_rows += count
                    counters[3] += valued_rows
            offer_mask = successful_xrp & (types == offer)
            if offer_mask.any():
                executed = 0
                for row in matched_rows(rows, offer_mask).tolist():
                    meta = metadata[row]
                    if meta and meta.get("executed"):
                        executed += 1
                counters[5] += executed

        return consume

    def config_signature(self) -> tuple:
        return (type(self).__qualname__, self.name, self.oracle.signature())

    def merge(self, other: "XrpDecompositionAccumulator") -> None:
        counters = self._counters
        for index, value in enumerate(other._counters):
            counters[index] += value
        other_bulk = getattr(other, "_bulk", None)
        if other_bulk:
            mine = getattr(self, "_bulk", None)
            if mine is None:
                mine = self._bulk = Counter()
                for attr in ("_payment_code", "_offer_code", "_xrp_code"):
                    if not hasattr(self, attr):
                        setattr(self, attr, getattr(other, attr))
            mine.update(other_bulk)

    def export_state(self) -> Dict:
        bulk = getattr(self, "_bulk", None)
        return {
            "counters": list(self._counters),
            "bulk": pack_code_table(bulk, 3) if bulk else None,
        }

    def restore_state(self, payload: Dict) -> None:
        counters = self._counters
        for index, value in enumerate(payload["counters"]):
            counters[index] += value
        bulk = payload["bulk"]
        if bulk is not None:
            mine = getattr(self, "_bulk", None)
            if mine is None:
                # The bulk histogram is decoded against the binding frame's
                # type codes, so a restore target must be batch-bound (a
                # payload, unlike a merge source, carries no codes).
                if not hasattr(self, "_payment_code"):
                    raise AnalysisError(
                        "XrpDecompositionAccumulator.restore_state requires "
                        "a batch-bound accumulator"
                    )
                mine = self._bulk = Counter()
            restore_code_table(mine, bulk)

    def finalize(self) -> ThroughputDecomposition:
        bulk = getattr(self, "_bulk", None)
        if bulk is not None:
            counters = self._counters
            for (chain, ok, type_code), count in bulk.items():
                if chain != self._xrp_code:
                    continue
                counters[0] += count
                if not ok:
                    counters[1] += count
                elif type_code == self._payment_code:
                    counters[2] += count
                elif type_code == self._offer_code:
                    counters[4] += count
                else:
                    counters[6] += count
            self._bulk = None
        return self._finalize_counters()

    def _finalize_counters(self) -> ThroughputDecomposition:
        total, failed, payments, payments_value, offers, offers_exchanged, others = (
            self._counters
        )
        return ThroughputDecomposition(
            total=total,
            failed=failed,
            successful=total - failed,
            payments=payments,
            payments_with_value=payments_value,
            payments_without_value=payments - payments_value,
            offers=offers,
            offers_exchanged=offers_exchanged,
            offers_not_exchanged=offers - offers_exchanged,
            others=others,
        )


@dataclass(frozen=True)
class ValueDistribution:
    """§4.3 summary of the XRP value actually moved by payments.

    Values are XRP-denominated (IOU amounts convert through the oracle
    rate); only successful payments of positively-rated assets count, the
    same population Figure 7's ``payments_with_value`` slice tallies.
    ``approximate`` is ``True`` when the numbers come from the sketch-mode
    quantile summary, in which case every field except ``count`` carries
    the sketch's relative error bound (``alpha``, 1 % by default).
    """

    count: int
    total_xrp: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    approximate: bool

    @property
    def mean(self) -> float:
        return self.total_xrp / self.count if self.count else 0.0


class ValueDistributionAccumulator(Accumulator):
    """Single-pass distribution of XRP-denominated payment values (§4.3).

    In exact mode every value lands in a flat ``array('d')`` and the
    distribution is computed from the sorted column at finalize — O(values)
    state.  In sketch mode the column is replaced by a
    :class:`~repro.common.sketches.QuantileSketch` whose quantiles carry a
    1 % relative error — O(1) state.  Both finalizers are functions of the
    value *multiset* (sorted fold, exact float summation), so shard order
    never changes the figure.
    """

    name = "value_distribution"

    #: Quantiles the finalized distribution reports.
    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self, oracle: ExchangeRateOracle, stats: Optional[str] = None):
        self.oracle = oracle
        self.stats_mode = statsmode.resolve(stats)

    def _reset(self, frame: TxFrame) -> None:
        self._frame = frame
        if self.stats_mode == statsmode.SKETCH:
            self._values: Optional[array] = None
            self._sketch: Optional[QuantileSketch] = QuantileSketch()
        else:
            self._values = array("d")
            self._sketch = None

    def _rate_cache(self, frame: TxFrame):
        currency_values = frame.currencies.values
        account_values = frame.accounts.values
        oracle_rate = self.oracle.rate
        cache: Dict[Tuple[int, int], float] = {}

        def rate(currency_code: int, issuer_code: int) -> float:
            key = (currency_code, issuer_code)
            value = cache.get(key)
            if value is None:
                value = cache[key] = oracle_rate(
                    currency_values[currency_code], account_values[issuer_code]
                )
            return value

        return rate

    def _add_value(self, value: float) -> None:
        if self._sketch is not None:
            self._sketch.add(value)
        else:
            self._values.append(value)

    def bind(self, frame: TxFrame) -> Step:
        self._reset(frame)
        add_value = self._add_value
        chain_codes = frame.chain_code
        type_codes = frame.type_code
        success = frame.success
        amounts = frame.amount
        currency_codes = frame.currency_code
        issuer_codes = frame.issuer_code
        xrp = CHAIN_CODES[ChainId.XRP]
        payment_code = frame.types.code("Payment")
        rate = self._rate_cache(frame)

        def step(row: int) -> None:
            if (
                chain_codes[row] != xrp
                or type_codes[row] != payment_code
                or not success[row]
            ):
                return
            amount = amounts[row]
            if amount <= 0:
                return
            asset_rate = rate(currency_codes[row], issuer_codes[row])
            if asset_rate > 0.0:
                add_value(amount * asset_rate)

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        step = self.bind(frame)

        def consume(rows: RowIndices) -> None:
            for row in rows:
                step(row)

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: mask value-bearing payments, rate per distinct
        asset pair, one multiply for the whole block.

        The oracle is consulted once per distinct (currency, issuer) pair;
        row values come from a vectorized gather of the block's pair rates.
        The per-value Python work that remains in sketch mode is the
        ``math.log`` binning — kept scalar deliberately so both backends
        bin bit-identically.
        """
        self._reset(frame)
        np = kernels.numpy_module()
        chain_codes = frame.ndarray("chain_code")
        type_codes = frame.ndarray("type_code")
        success = frame.ndarray("success")
        amounts = frame.ndarray("amount")
        currency_codes = frame.ndarray("currency_code")
        issuer_codes = frame.ndarray("issuer_code")
        xrp = CHAIN_CODES[ChainId.XRP]
        payment_code = frame.types.code("Payment")
        payment = -1 if payment_code is None else payment_code
        rate = self._rate_cache(frame)
        account_count = max(len(frame.accounts), 1)
        sketch = self._sketch
        values_column = self._values

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            chain, ok, types = block_columns(rows, chain_codes, success, type_codes)
            mask = (chain == xrp) & (ok != 0) & (types == payment)
            if not mask.any():
                return
            block_amounts, block_currencies, block_issuers = block_columns(
                rows, amounts, currency_codes, issuer_codes
            )
            mask &= block_amounts > 0
            if not mask.any():
                return
            pairs = (
                block_currencies[mask].astype(np.int64) * account_count
                + block_issuers[mask]
            )
            uniques = np.unique(pairs)
            pair_rates = np.array(
                [rate(*divmod(pair, account_count)) for pair in uniques.tolist()],
                dtype=np.float64,
            )
            row_rates = pair_rates[np.searchsorted(uniques, pairs)]
            valued = row_rates > 0.0
            if not valued.any():
                return
            block_values = block_amounts[mask][valued] * row_rates[valued]
            if sketch is not None:
                sketch.extend(block_values.tolist())
            else:
                values_column.frombytes(
                    np.ascontiguousarray(block_values, dtype=np.float64).tobytes()
                )

        return consume

    def merge(self, other: "ValueDistributionAccumulator") -> None:
        if self.stats_mode != other.stats_mode:
            raise AnalysisError(
                f"cannot merge {other.stats_mode!r}-mode value_distribution "
                f"state into an {self.stats_mode!r}-mode accumulator"
            )
        if self._sketch is not None:
            self._sketch.merge(other._sketch)
        else:
            self._values.extend(other._values)

    def export_state(self) -> Dict:
        if self._sketch is not None:
            return {"qs": self._sketch.export_state()}
        return {"values": self._values}

    def restore_state(self, payload: Dict) -> None:
        if self._sketch is not None:
            if "qs" not in payload:
                raise AnalysisError(
                    "value_distribution payload has exact-mode state; "
                    "sketch-mode restore requires a rescan"
                )
            self._sketch.restore_state(payload["qs"])
            return
        if "qs" in payload:
            raise AnalysisError(
                "value_distribution payload has sketch-mode state; "
                "exact-mode restore requires a rescan"
            )
        values = payload["values"]
        if not isinstance(values, array) or values.typecode != "d":
            raise AnalysisError("value_distribution payload is malformed")
        self._values.extend(values)

    def config_signature(self) -> tuple:
        base = (type(self).__qualname__, self.name, self.oracle.signature())
        if self.stats_mode == statsmode.SKETCH:
            sketch = getattr(self, "_sketch", None) or QuantileSketch()
            return base + (("sketch", "qs", sketch.alpha),)
        return base

    def finalize(self) -> ValueDistribution:
        q50, q90, q99 = self.QUANTILES
        if self._sketch is not None:
            sketch = self._sketch
            return ValueDistribution(
                count=sketch.total,
                total_xrp=sketch.sum(),
                minimum=sketch.min_value(),
                maximum=sketch.max_value(),
                p50=sketch.quantile(q50),
                p90=sketch.quantile(q90),
                p99=sketch.quantile(q99),
                approximate=True,
            )
        values = sorted(self._values)
        count = len(values)
        if not count:
            return ValueDistribution(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, False)

        def quantile(q: float) -> float:
            return values[min(count - 1, int(q * (count - 1)))]

        return ValueDistribution(
            count=count,
            total_xrp=math.fsum(values),
            minimum=values[0],
            maximum=values[-1],
            p50=quantile(q50),
            p90=quantile(q90),
            p99=quantile(q99),
            approximate=False,
        )


def value_distribution(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    oracle: ExchangeRateOracle,
) -> ValueDistribution:
    """§4.3 distribution of XRP-denominated payment values (one pass)."""
    return ValueDistributionAccumulator(oracle).run(as_frame(records))


class FailureCodeAccumulator(Accumulator):
    """Single-pass §3.2 error-code table for failed XRP transactions."""

    name = "xrp_failure_codes"

    def bind(self, frame: TxFrame) -> Step:
        table = self._table = {}
        self._frame = frame
        chain_codes = frame.chain_code
        success = frame.success
        type_codes = frame.type_code
        error_codes = frame.error_code
        empty_error = frame.errors.code("")
        xrp = CHAIN_CODES[ChainId.XRP]

        def step(row: int) -> None:
            if chain_codes[row] != xrp or success[row]:
                return
            error = error_codes[row]
            if error == empty_error:
                return
            key = (type_codes[row], error)
            table[key] = table.get(key, 0) + 1

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        step = self.bind(frame)
        chain_codes = frame.chain_code
        success = frame.success
        xrp = CHAIN_CODES[ChainId.XRP]

        def consume(rows: RowIndices) -> None:
            for row, chain, ok in zip(
                rows, gather(chain_codes, rows), gather(success, rows)
            ):
                if chain == xrp and not ok:
                    step(row)

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Vectorized kernel: mask failed XRP rows, histogram (type, error)."""
        table = self._table = {}
        self._frame = frame
        chain_codes = frame.ndarray("chain_code")
        success = frame.ndarray("success")
        type_codes = frame.ndarray("type_code")
        error_codes = frame.ndarray("error_code")
        empty_error = frame.errors.code("")
        xrp = CHAIN_CODES[ChainId.XRP]
        sizes = (len(frame.types), len(frame.errors))

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            chain, ok, types, errors = block_columns(
                rows, chain_codes, success, type_codes, error_codes
            )
            mask = (chain == xrp) & (ok == 0)
            if empty_error is not None:
                mask &= errors != empty_error
            if mask.any():
                count_codes(table, (types[mask], errors[mask]), sizes)

        return consume

    def merge(self, other: "FailureCodeAccumulator") -> None:
        table = self._table
        for key, count in other._table.items():
            table[key] = table.get(key, 0) + count

    def export_state(self) -> Dict:
        return {"table": pack_code_table(self._table, 2)}

    def restore_state(self, payload: Dict) -> None:
        restore_code_table(self._table, payload["table"])

    def finalize(self) -> Dict[str, Dict[str, int]]:
        type_values = self._frame.types.values
        error_values = self._frame.errors.values
        result: Dict[str, Dict[str, int]] = {}
        for (type_code, error_code), count in self._table.items():
            result.setdefault(type_values[type_code], {})[error_values[error_code]] = count
        return result


class XrpValueAnalyzer:
    """Computes the Figure 7 decomposition and related value statistics."""

    def __init__(self, oracle: ExchangeRateOracle):
        self.oracle = oracle

    # -- record-level predicates ------------------------------------------------------
    def payment_has_value(self, record: TransactionRecord) -> bool:
        """A successful payment carries value iff its asset has an XRP rate."""
        if record.type != "Payment" or not record.success:
            return False
        if record.amount <= 0:
            return False
        return self.oracle.has_value(record.currency, record.issuer)

    def payment_xrp_value(self, record: TransactionRecord) -> float:
        """XRP-denominated value moved by a payment (0 for valueless tokens)."""
        if not self.payment_has_value(record):
            return 0.0
        return self.oracle.xrp_value(record.currency, record.issuer, record.amount)

    @staticmethod
    def offer_was_exchanged(record: TransactionRecord) -> bool:
        """Whether an OfferCreate led to at least a partial execution."""
        return record.type == "OfferCreate" and bool(record.metadata.get("executed"))

    # -- Figure 7 --------------------------------------------------------------------
    def decompose(
        self, records: Union[FrameLike, Iterable[TransactionRecord]]
    ) -> ThroughputDecomposition:
        """Thin wrapper over :class:`XrpDecompositionAccumulator` (one pass)."""
        return XrpDecompositionAccumulator(self.oracle).run(as_frame(records))

    # -- error codes (§3.2) ---------------------------------------------------------
    @staticmethod
    def failure_code_distribution(
        records: Union[FrameLike, Iterable[TransactionRecord]],
    ) -> Dict[str, Dict[str, int]]:
        """Error-code counts per transaction type for failed transactions."""
        return FailureCodeAccumulator().run(as_frame(records))


@dataclass(frozen=True)
class IouRateRow:
    """One row of Figure 11a: an issuer and its average IOU rate vs XRP."""

    currency: str
    issuer: str
    issuer_name: str
    average_rate: float

    @property
    def is_valueless(self) -> bool:
        return self.average_rate <= 0.0


def iou_rate_table(
    orderbook: OrderBook,
    issuers: Iterable[Tuple[str, str, str]],
) -> List[IouRateRow]:
    """Figure 11a: average executed rate per (currency, issuer).

    ``issuers`` is an iterable of (currency, issuer_address, display_name).
    Issuers whose IOU never traded get a zero rate, reproducing the paper's
    contrast between Bitstamp's BTC (36,050 XRP) and the spammer's BTC (0).
    """
    rows = [
        IouRateRow(
            currency=currency,
            issuer=issuer,
            issuer_name=name,
            average_rate=orderbook.average_rate_vs_xrp(currency, issuer),
        )
        for currency, issuer, name in issuers
    ]
    rows.sort(key=lambda row: -row.average_rate)
    return rows


def rate_history(
    orderbook: OrderBook, currency: str, issuer: str
) -> List[Tuple[float, float]]:
    """Figure 11b: the executed-rate history of one IOU (its rate collapse)."""
    return orderbook.executed_rates_vs_xrp(currency, issuer)


def detect_self_dealing(
    records: Iterable[TransactionRecord], orderbook: OrderBook
) -> List[Dict[str, object]]:
    """Flag IOU issuers whose DEX counterparties received the IOU from them.

    This reproduces the §4.3 Myrone Bagalay finding: the account buying the
    BTC IOU for XRP had itself received the tokens directly from the issuer,
    so the "price" was set between accounts under common control.
    """
    # Who received which IOU directly from its issuer via a Payment?
    received_from_issuer: Dict[Tuple[str, str], set] = defaultdict(set)
    for record in records:
        if record.chain is not ChainId.XRP or record.type != "Payment" or not record.success:
            continue
        if record.currency and record.currency != XRP_CURRENCY and record.sender == record.issuer:
            received_from_issuer[(record.currency, record.issuer)].add(record.receiver)
    findings: List[Dict[str, object]] = []
    for execution in orderbook.executions:
        for amount, buyer in ((execution.sold, execution.buyer), (execution.bought, execution.buyer)):
            key = amount.asset_key
            if amount.currency == XRP_CURRENCY:
                continue
            if buyer in received_from_issuer.get(key, set()):
                findings.append(
                    {
                        "currency": amount.currency,
                        "issuer": amount.issuer,
                        "buyer": buyer,
                        "timestamp": execution.timestamp,
                        "rate": execution.rate,
                        "reason": "buyer previously received this IOU directly from its issuer",
                    }
                )
    return findings
