"""Shared NumPy kernel primitives for the vectorized accumulator backend.

Every hot accumulator counts small-integer code tuples — (chain, type,
contract) triples, (sender, receiver) pairs, single account codes — or
filters rows with boolean masks before a thin per-row tail.  This module
factors those patterns into a handful of primitives so each accumulator's
``_bind_batch_numpy`` stays a few lines:

* :func:`block_columns` — slice or fancy-index a block out of zero-copy
  column views (ranges slice for free; index ndarrays gather in one C call);
* :func:`pack_codes` — combine parallel code columns into one ``int64`` key
  per row (mixed-radix, exclusive bound per column — the ``np.bincount``
  trick generalised to keys too sparse to bincount directly);
* :func:`count_codes` — the packed-key histogram: one ``np.unique`` per
  block, **replayed in first-seen order** into the accumulator's existing
  Counter/dict state;
* :func:`matched_rows` — boolean mask → global row indices, for kernels
  whose tail work (metadata lookups, oracle checks) is inherently per-row.

The first-seen replay is the load-bearing subtlety: the reference python
kernels insert counter keys in row order, and several finalizers resolve
ties by insertion order (``Counter.most_common``, the throughput category
tuple).  ``np.unique`` returns keys sorted by value, so :func:`count_codes`
re-orders them by each key's first block position before touching the
counter — making the numpy backend's counter state (content *and*
iteration order) indistinguishable from the reference backend's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.common import kernels
from repro.common.columns import RowIndices, as_index_rows

Counts = Union[Dict, "Counter"]  # noqa: F821 - Counter duck-typed via .get

#: Ceiling on the packed-key space for the dense-histogram kernel: the
#: per-bind count vector costs 8 bytes per *possible* key (32 MiB at this
#: bound), so sparser key spaces take the ``np.unique`` path instead.
DENSE_KEYSPACE_MAX = 1 << 22


def dense_space(sizes: Sequence[int]) -> int:
    """The packed-key space of the given column bounds (product, min 1)."""
    space = 1
    for size in sizes:
        space *= max(int(size), 1)
    return space


def fold_dense(target: Counts, dense, sizes: Sequence[int]) -> None:
    """Materialise a dense packed-key count vector into Counter/dict state.

    Keys fold in packed-key (ascending code) order, **not** first-seen row
    order — only accumulators whose finalizers are insertion-order
    independent may use the dense kernel (see
    :class:`~repro.analysis.accounts.AccountActivityAccumulator`); anything
    that tie-breaks via ``Counter.most_common`` must stay on
    :func:`count_codes`.
    """
    np = kernels.numpy_module()
    keys = np.nonzero(dense)[0]
    if not len(keys):
        return
    counts = dense[keys].tolist()
    if len(sizes) == 1:
        add_counts(target, keys.tolist(), counts)
        return
    parts = []
    rest = keys
    for size in reversed([max(int(size), 1) for size in sizes[1:]]):
        rest, part = np.divmod(rest, size)
        parts.append(part)
    parts.append(rest)
    parts.reverse()
    add_counts(
        target,
        list(zip(*(part.tolist() for part in parts))),
        counts,
    )


def block_columns(rows: RowIndices, *views) -> Tuple:
    """The block's values of each ndarray column view.

    Ranges become slices (zero-copy views); anything else is normalised to
    an index ndarray and gathered with one fancy-indexing call per column.
    """
    if isinstance(rows, range):
        window = slice(rows.start, rows.stop, rows.step)
        return tuple(view[window] for view in views)
    indices = as_index_rows(rows)
    return tuple(view[indices] for view in views)


def matched_rows(rows: RowIndices, mask):
    """Global row indices of the block positions where ``mask`` is true."""
    np = kernels.numpy_module()
    positions = np.nonzero(mask)[0]
    if isinstance(rows, range):
        if rows.step == 1:
            return positions + rows.start if rows.start else positions
        return rows.start + positions * rows.step
    return as_index_rows(rows)[positions]


def pack_codes(blocks: Sequence, sizes: Sequence[int]):
    """Mixed-radix packing of parallel code columns into one ``int64`` key.

    ``sizes[i]`` is an exclusive upper bound on ``blocks[i]``'s values (a
    string pool's length, ``len(CHAIN_ORDER)``, 2 for a boolean column).
    Returns ``None`` when the key space cannot fit an ``int64`` — callers
    fall back to per-row counting in that (pathological) case.
    """
    np = kernels.numpy_module()
    space = 1
    for size in sizes:
        space *= max(int(size), 1)
    if space >= 2**62:  # pragma: no cover - needs >2^62 distinct keys
        return None
    key = blocks[0].astype(np.int64)
    for block, size in zip(blocks[1:], sizes[1:]):
        key *= max(int(size), 1)
        key += block
    return key


def unique_counts_ordered(keys) -> Tuple:
    """Distinct keys and their counts, in first-seen (row) order."""
    np = kernels.numpy_module()
    uniques, first_index, counts = np.unique(
        keys, return_index=True, return_counts=True
    )
    order = np.argsort(first_index, kind="stable")
    return uniques[order], counts[order]


def add_counts(target: Counts, keys: List, counts: List[int]) -> None:
    """Fold (key, count) pairs into a Counter/dict, preserving key order.

    Assignment order is insertion order, so folding first-seen-ordered keys
    replays exactly the insertion order a per-row reference scan produces.
    """
    get = target.get
    for key, count in zip(keys, counts):
        target[key] = get(key, 0) + count


def count_codes(target: Counts, blocks: Sequence, sizes: Sequence[int]) -> None:
    """One block's packed-key histogram, folded into ``target``.

    ``target`` keys are plain ints for a single column and tuples of ints
    for several — identical to what the reference python kernels produce.
    """
    if len(blocks) == 1:
        uniques, counts = unique_counts_ordered(blocks[0])
        add_counts(target, uniques.tolist(), counts.tolist())
        return
    keys = pack_codes(blocks, sizes)
    if keys is None:  # pragma: no cover - int64 key-space overflow
        get = target.get
        for key in zip(*(block.tolist() for block in blocks)):
            target[key] = get(key, 0) + 1
        return
    np = kernels.numpy_module()
    uniques, counts = unique_counts_ordered(keys)
    parts = []
    rest = uniques
    for size in reversed([max(int(size), 1) for size in sizes[1:]]):
        rest, part = np.divmod(rest, size)
        parts.append(part)
    parts.append(rest)
    parts.reverse()
    add_counts(
        target,
        list(zip(*(part.tolist() for part in parts))),
        counts.tolist(),
    )
