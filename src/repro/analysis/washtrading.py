"""WhaleEx wash-trading detection (§4.1).

The paper inspects the ``verifytrade2`` actions of the WhaleEx DEX contract
and finds that (1) the top five trading accounts are involved in over 70 % of
all settled trades, (2) each of those accounts is both buyer and seller in
more than 85 % of its trades, and (3) the net balance change of the traded
currencies is essentially zero — the signature of wash trading.  The
detector computes exactly those three statistics; the trade extraction is a
single-pass accumulator (the matching rows are a thin slice of the stream,
so the per-row filter is two integer comparisons inside the shared pass).
"""

from __future__ import annotations

from array import array
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.common import kernels
from repro.common.columns import CHAIN_CODES, FrameLike, TxFrame, as_frame
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.engine import Accumulator, BatchStep, RowIndices, Step, gather
from repro.analysis.vectorized import block_columns, matched_rows
from repro.common.statecodec import pack_strings, unpack_strings

#: Default contract and action analysed by the case study.
WHALEEX_CONTRACT = "whaleextrust"
TRADE_ACTION = "verifytrade2"


@dataclass(frozen=True)
class TradeObservation:
    """One settled DEX trade extracted from the record stream."""

    buyer: str
    seller: str
    symbol: str
    amount: float
    timestamp: float

    @property
    def is_self_trade(self) -> bool:
        return self.buyer == self.seller


@dataclass(frozen=True)
class WashTradingReport:
    """Findings of the wash-trading analysis for one DEX contract."""

    contract: str
    trade_count: int
    top_accounts: Tuple[str, ...]
    top_accounts_trade_share: float
    self_trade_share_overall: float
    self_trade_share_by_account: Dict[str, float]
    net_balance_change_by_account: Dict[str, Dict[str, float]]

    def is_wash_trading_suspected(
        self,
        share_threshold: float = 0.5,
        self_trade_threshold: float = 0.5,
    ) -> bool:
        """Paper-style verdict: concentrated traffic dominated by self-trades."""
        if self.trade_count == 0:
            return False
        concentrated = self.top_accounts_trade_share >= share_threshold
        selfish = all(
            share >= self_trade_threshold
            for share in self.self_trade_share_by_account.values()
        )
        return concentrated and selfish


class TradeExtractionAccumulator(Accumulator):
    """Single-pass extraction of one DEX contract's settled trades."""

    name = "dex_trades"

    def __init__(self, contract: str = WHALEEX_CONTRACT):
        self.contract = contract

    def bind(self, frame: TxFrame) -> Step:
        trades = self._trades = []
        chain_codes = frame.chain_code
        receiver_codes = frame.receiver_code
        type_codes = frame.type_code
        sender_codes = frame.sender_code
        currency_codes = frame.currency_code
        amounts = frame.amount
        timestamps = frame.timestamp
        metadata = frame.metadata
        currency_values = frame.currencies.values
        account_values = frame.accounts.values
        eos = CHAIN_CODES[ChainId.EOS]
        contract_code = frame.accounts.code(self.contract)
        trade_code = frame.types.code(TRADE_ACTION)
        append = trades.append

        if contract_code is None or trade_code is None:
            def step(row: int) -> None:  # the contract never traded here
                return
            return step

        def step(row: int) -> None:
            if (
                chain_codes[row] != eos
                or receiver_codes[row] != contract_code
                or type_codes[row] != trade_code
            ):
                return
            meta = metadata[row] or {}
            sender = account_values[sender_codes[row]]
            buyer = str(meta.get("buyer", sender))
            seller = str(meta.get("seller", sender))
            append(
                TradeObservation(
                    buyer=buyer,
                    seller=seller,
                    symbol=currency_values[currency_codes[row]]
                    or str(meta.get("symbol", "")),
                    amount=amounts[row],
                    timestamp=timestamps[row],
                )
            )

        return step

    def bind_batch(self, frame: TxFrame) -> BatchStep:
        if kernels.use_numpy():
            return self._bind_batch_numpy(frame)
        step = self.bind(frame)
        chain_codes = frame.chain_code
        receiver_codes = frame.receiver_code
        contract_code = frame.accounts.code(self.contract)
        eos = CHAIN_CODES[ChainId.EOS]
        if contract_code is None or frame.types.code(TRADE_ACTION) is None:
            return lambda rows: None

        def consume(rows: RowIndices) -> None:
            # Vectorised pre-filter: the DEX contract's rows are a thin
            # slice of the stream, so only they pay the extraction cost.
            for row, chain, receiver in zip(
                rows, gather(chain_codes, rows), gather(receiver_codes, rows)
            ):
                if chain == eos and receiver == contract_code:
                    step(row)

        return consume

    def _bind_batch_numpy(self, frame: TxFrame) -> BatchStep:
        """Boolean-mask kernel: only the contract's trade rows pay extraction."""
        step = self.bind(frame)
        contract_code = frame.accounts.code(self.contract)
        trade_code = frame.types.code(TRADE_ACTION)
        if contract_code is None or trade_code is None:
            return lambda rows: None
        chain_codes = frame.ndarray("chain_code")
        receiver_codes = frame.ndarray("receiver_code")
        type_codes = frame.ndarray("type_code")
        eos = CHAIN_CODES[ChainId.EOS]

        def consume(rows: RowIndices) -> None:
            if not len(rows):
                return
            chain, receiver, types = block_columns(
                rows, chain_codes, receiver_codes, type_codes
            )
            mask = (chain == eos) & (receiver == contract_code) & (types == trade_code)
            if not mask.any():
                return
            for row in matched_rows(rows, mask).tolist():
                step(row)

        return consume

    def merge(self, other: "TradeExtractionAccumulator") -> None:
        self._trades.extend(other._trades)

    def export_state(self) -> Dict:
        trades = self._trades
        return {
            "buyers": pack_strings([trade.buyer for trade in trades]),
            "sellers": pack_strings([trade.seller for trade in trades]),
            "symbols": pack_strings([trade.symbol for trade in trades]),
            "amounts": array("d", (trade.amount for trade in trades)),
            "timestamps": array("d", (trade.timestamp for trade in trades)),
        }

    def restore_state(self, payload: Dict) -> None:
        self._trades.extend(
            TradeObservation(buyer, seller, symbol, amount, timestamp)
            for buyer, seller, symbol, amount, timestamp in zip(
                unpack_strings(payload["buyers"]),
                unpack_strings(payload["sellers"]),
                unpack_strings(payload["symbols"]),
                payload["amounts"],
                payload["timestamps"],
            )
        )

    def config_signature(self) -> tuple:
        return (type(self).__qualname__, self.name, self.contract)

    def finalize(self) -> List[TradeObservation]:
        return self._trades


class WashTradeAccumulator(TradeExtractionAccumulator):
    """Single-pass §4.1 wash-trading statistics for one DEX contract."""

    name = "wash_trading"

    def __init__(self, contract: str = WHALEEX_CONTRACT, top_n: int = 5):
        super().__init__(contract)
        self.top_n = top_n

    def config_signature(self) -> tuple:
        return (type(self).__qualname__, self.name, self.contract, self.top_n)

    def finalize(self) -> WashTradingReport:
        return _report_from_trades(self._trades, self.contract, self.top_n)


def extract_trades(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    contract: str = WHALEEX_CONTRACT,
) -> List[TradeObservation]:
    """Pull the settled trades of ``contract`` out of an EOS record stream."""
    return TradeExtractionAccumulator(contract).run(as_frame(records))


def _report_from_trades(
    trades: List[TradeObservation], contract: str, top_n: int
) -> WashTradingReport:
    """Compute the §4.1 statistics from an extracted trade list."""
    if not trades:
        return WashTradingReport(
            contract=contract,
            trade_count=0,
            top_accounts=(),
            top_accounts_trade_share=0.0,
            self_trade_share_overall=0.0,
            self_trade_share_by_account={},
            net_balance_change_by_account={},
        )
    involvement: Counter = Counter()
    for trade in trades:
        involvement[trade.buyer] += 1
        if trade.seller != trade.buyer:
            involvement[trade.seller] += 1
    top_accounts = tuple(account for account, _ in involvement.most_common(top_n))
    top_set = set(top_accounts)
    involved_in_top = sum(
        1 for trade in trades if trade.buyer in top_set or trade.seller in top_set
    )
    self_share_overall = sum(1 for trade in trades if trade.is_self_trade) / len(trades)
    self_by_account: Dict[str, float] = {}
    for account in top_accounts:
        own = [
            trade for trade in trades if trade.buyer == account or trade.seller == account
        ]
        if own:
            self_by_account[account] = sum(1 for trade in own if trade.is_self_trade) / len(own)
        else:
            self_by_account[account] = 0.0
    net_changes = net_balance_changes(trades, top_accounts)
    return WashTradingReport(
        contract=contract,
        trade_count=len(trades),
        top_accounts=top_accounts,
        top_accounts_trade_share=involved_in_top / len(trades),
        self_trade_share_overall=self_share_overall,
        self_trade_share_by_account=self_by_account,
        net_balance_change_by_account=net_changes,
    )


def analyze_wash_trading(
    records: Union[FrameLike, Iterable[TransactionRecord]],
    contract: str = WHALEEX_CONTRACT,
    top_n: int = 5,
) -> WashTradingReport:
    """Compute the §4.1 wash-trading statistics for ``contract`` (one pass)."""
    return WashTradeAccumulator(contract, top_n).run(as_frame(records))


def net_balance_changes(
    trades: Iterable[TradeObservation], accounts: Iterable[str]
) -> Dict[str, Dict[str, float]]:
    """Net amount of each traded symbol moved into (+) or out of (-) an account.

    Wash-traded currencies show a net change close to zero: the account buys
    and sells the same quantity of the same token.
    """
    tracked = set(accounts)
    changes: Dict[str, Dict[str, float]] = {account: defaultdict(float) for account in tracked}
    for trade in trades:
        if trade.is_self_trade:
            # Buying from yourself moves nothing.
            continue
        if trade.buyer in tracked:
            changes[trade.buyer][trade.symbol] += trade.amount
        if trade.seller in tracked:
            changes[trade.seller][trade.symbol] -= trade.amount
    return {account: dict(symbols) for account, symbols in changes.items()}


def relative_balance_change(
    net_change: float, gross_traded: float
) -> float:
    """|net| / gross traded volume — the paper's "balance change of over 0.7%"."""
    if gross_traded <= 0:
        return 0.0
    return abs(net_change) / gross_traded
