"""WhaleEx wash-trading detection (§4.1).

The paper inspects the ``verifytrade2`` actions of the WhaleEx DEX contract
and finds that (1) the top five trading accounts are involved in over 70 % of
all settled trades, (2) each of those accounts is both buyer and seller in
more than 85 % of its trades, and (3) the net balance change of the traded
currencies is essentially zero — the signature of wash trading.  The
detector below computes exactly those three statistics from the canonical
EOS records.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.records import ChainId, TransactionRecord

#: Default contract and action analysed by the case study.
WHALEEX_CONTRACT = "whaleextrust"
TRADE_ACTION = "verifytrade2"


@dataclass(frozen=True)
class TradeObservation:
    """One settled DEX trade extracted from the record stream."""

    buyer: str
    seller: str
    symbol: str
    amount: float
    timestamp: float

    @property
    def is_self_trade(self) -> bool:
        return self.buyer == self.seller


@dataclass(frozen=True)
class WashTradingReport:
    """Findings of the wash-trading analysis for one DEX contract."""

    contract: str
    trade_count: int
    top_accounts: Tuple[str, ...]
    top_accounts_trade_share: float
    self_trade_share_overall: float
    self_trade_share_by_account: Dict[str, float]
    net_balance_change_by_account: Dict[str, Dict[str, float]]

    def is_wash_trading_suspected(
        self,
        share_threshold: float = 0.5,
        self_trade_threshold: float = 0.5,
    ) -> bool:
        """Paper-style verdict: concentrated traffic dominated by self-trades."""
        if self.trade_count == 0:
            return False
        concentrated = self.top_accounts_trade_share >= share_threshold
        selfish = all(
            share >= self_trade_threshold
            for share in self.self_trade_share_by_account.values()
        )
        return concentrated and selfish


def extract_trades(
    records: Iterable[TransactionRecord], contract: str = WHALEEX_CONTRACT
) -> List[TradeObservation]:
    """Pull the settled trades of ``contract`` out of an EOS record stream."""
    trades: List[TradeObservation] = []
    for record in records:
        if record.chain is not ChainId.EOS:
            continue
        if record.receiver != contract or record.type != TRADE_ACTION:
            continue
        buyer = str(record.metadata.get("buyer", record.sender))
        seller = str(record.metadata.get("seller", record.sender))
        trades.append(
            TradeObservation(
                buyer=buyer,
                seller=seller,
                symbol=record.currency or str(record.metadata.get("symbol", "")),
                amount=record.amount,
                timestamp=record.timestamp,
            )
        )
    return trades


def analyze_wash_trading(
    records: Iterable[TransactionRecord],
    contract: str = WHALEEX_CONTRACT,
    top_n: int = 5,
) -> WashTradingReport:
    """Compute the §4.1 wash-trading statistics for ``contract``."""
    materialized = list(records)
    # The workload stores buyer/seller in the record metadata; fall back to
    # recomputing from the DEX contract's trade log when unavailable.
    trades = extract_trades(materialized, contract)
    if not trades:
        return WashTradingReport(
            contract=contract,
            trade_count=0,
            top_accounts=(),
            top_accounts_trade_share=0.0,
            self_trade_share_overall=0.0,
            self_trade_share_by_account={},
            net_balance_change_by_account={},
        )
    involvement: Counter = Counter()
    for trade in trades:
        involvement[trade.buyer] += 1
        if trade.seller != trade.buyer:
            involvement[trade.seller] += 1
    top_accounts = tuple(account for account, _ in involvement.most_common(top_n))
    top_set = set(top_accounts)
    involved_in_top = sum(
        1 for trade in trades if trade.buyer in top_set or trade.seller in top_set
    )
    self_share_overall = sum(1 for trade in trades if trade.is_self_trade) / len(trades)
    self_by_account: Dict[str, float] = {}
    for account in top_accounts:
        own = [
            trade for trade in trades if trade.buyer == account or trade.seller == account
        ]
        if own:
            self_by_account[account] = sum(1 for trade in own if trade.is_self_trade) / len(own)
        else:
            self_by_account[account] = 0.0
    net_changes = net_balance_changes(trades, top_accounts)
    return WashTradingReport(
        contract=contract,
        trade_count=len(trades),
        top_accounts=top_accounts,
        top_accounts_trade_share=involved_in_top / len(trades),
        self_trade_share_overall=self_share_overall,
        self_trade_share_by_account=self_by_account,
        net_balance_change_by_account=net_changes,
    )


def net_balance_changes(
    trades: Iterable[TradeObservation], accounts: Iterable[str]
) -> Dict[str, Dict[str, float]]:
    """Net amount of each traded symbol moved into (+) or out of (-) an account.

    Wash-traded currencies show a net change close to zero: the account buys
    and sells the same quantity of the same token.
    """
    tracked = set(accounts)
    changes: Dict[str, Dict[str, float]] = {account: defaultdict(float) for account in tracked}
    for trade in trades:
        if trade.is_self_trade:
            # Buying from yourself moves nothing.
            continue
        if trade.buyer in tracked:
            changes[trade.buyer][trade.symbol] += trade.amount
        if trade.seller in tracked:
            changes[trade.seller][trade.symbol] -= trade.amount
    return {account: dict(symbols) for account, symbols in changes.items()}


def relative_balance_change(
    net_change: float, gross_traded: float
) -> float:
    """|net| / gross traded volume — the paper's "balance change of over 0.7%"."""
    if gross_traded <= 0:
        return 0.0
    return abs(net_change) / gross_traded
