"""Command-line interface: ``python -m repro <command>``.

The CLI is the operational front door to the reproduction pipeline:

* ``list`` — the scenario registry (names + one-line descriptions);
* ``scenario NAME`` — one scenario's per-chain configuration and scale
  factors;
* ``report`` — generate (or load from cache) a scenario's dataset and print
  the paper's full figure report, serially or across worker processes;
* ``bench`` — time the kernel backends (pure-python reference vs vectorized
  NumPy) and the parallel sharded engine on the same dataset; ``--json``
  writes a machine-readable ``BENCH_<rev>.json`` trajectory point (figure
  timings, rows/sec, speedup vs the reference kernels) for regression
  tracking across revisions;
* ``migrate-store`` — rewrite a frame store's chunks (or a pipeline's
  ``frames/`` store) to another chunk serialisation format in place,
  behind the store's atomic-manifest commit point;
* ``cache`` — inspect (``stat``) or drop (``clear``) a store's chunk-state
  aggregate cache, the memoized per-chunk accumulator states that make
  repeat ``report --out-of-core`` runs O(new data)
  (:mod:`repro.analysis.statecache`);
* ``ingest`` — append the next timed batches of a scenario's block stream
  to a durable pipeline directory (resumable; nothing is recomputed);
* ``update`` — refresh every figure incrementally: merge the checkpointed
  accumulator state and scan only the rows past the watermark (``--workers``
  shards a large catch-up across processes);
* ``watch`` — the live loop: ingest a batch, update, print the moving
  headline figures, repeat — driven by the simulation clock.

Dataset caching: with ``--cache DIR`` a generated dataset is chunk-compressed
into a :class:`~repro.collection.store.FrameStore` directory together with a
``meta.json`` carrying the exchange-rate oracle and the frozen account
cluster map.  Repeat runs with the same scenario + seed rehydrate the frame
from the store and skip workload generation entirely.

Pipeline directories (``--data DIR``) are the incremental superset of that
cache: chunked rows plus a checkpoint of scanned accumulator state, so
figures refresh in time proportional to what arrived, not to history.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import pickle
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.accounts import AccountActivityAccumulator
from repro.analysis.classify import TypeDistributionAccumulator
from repro.analysis.clustering import AccountClusterer, StaticAccountClusterer
from repro.analysis.engine import TxStatsAccumulator
from repro.analysis.parallel import (
    default_workers,
    parallel_full_report,
    parallel_report_from_store,
)
from repro.analysis.statecache import ChunkStateCache
from repro.analysis.report import (
    FullReport,
    figure_accumulators,
    full_report,
    tezos_figure3_key_columns,
)
from repro.analysis.throughput import ThroughputSeriesAccumulator
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import (
    CHUNK_FORMAT_V1,
    CHUNK_FORMAT_V2,
    CHUNK_FORMATS,
    DEFAULT_CHUNK_FORMAT,
    MANIFEST_NAME,
    FrameStore,
)
from repro.common import faults, kernels, statsmode
from repro.common.clock import SECONDS_PER_HOUR, SimulationClock, iso_from_timestamp
from repro.common.columns import TxFrame
from repro.common.errors import ReproError
from repro.common.records import ChainId
from repro.eos.workload import EosWorkloadGenerator
from repro.pipeline import (
    CheckpointStore,
    LiveTailRunner,
    Pipeline,
    PipelineCheckpoint,
    frozen_analysis_config,
    pending_batches,
    run_fsck,
    run_soak,
    scenario_generators,
)
from repro.scenarios import PaperScenario, get_scenario
from repro.scenarios.registry import _REGISTRY as _SCENARIO_REGISTRY
from repro.tezos.workload import TezosWorkloadGenerator
from repro.xrp.workload import XrpWorkloadGenerator

#: Cache layout version; bump when the payload or meta schema changes.
CACHE_VERSION = 1


@dataclass
class Dataset:
    """A ready-to-analyse dataset: the frame plus its analysis companions."""

    scenario: PaperScenario
    frame: TxFrame
    oracle: ExchangeRateOracle
    clusterer: object
    from_cache: bool
    build_seconds: float


@dataclass
class StoredDataset:
    """An on-disk dataset: the store directory plus analysis companions.

    The out-of-core analysis path: no process ever holds the full frame,
    so the only materialised state here is the metadata.  ``store`` is the
    already-validated open handle — consumers reuse it instead of
    re-running ``FrameStore.open``'s manifest validation per report path.
    """

    scenario: PaperScenario
    directory: str
    rows: int
    oracle: ExchangeRateOracle
    clusterer: object
    from_cache: bool
    build_seconds: float
    store: Optional[FrameStore] = None


def generate_dataset(scenario: PaperScenario) -> Tuple[TxFrame, ExchangeRateOracle, AccountClusterer]:
    """Stream all three workloads into one frame; derive oracle + clusters."""
    generators = {
        "eos": EosWorkloadGenerator(scenario.eos),
        "tezos": TezosWorkloadGenerator(scenario.tezos),
        "xrp": XrpWorkloadGenerator(scenario.xrp),
    }
    frame = TxFrame()
    for generator in generators.values():
        frame.extend(generator.stream_records())
    xrp_ledger = generators["xrp"].ledger
    oracle = ExchangeRateOracle.from_orderbook(xrp_ledger.orderbook)
    clusterer = AccountClusterer(xrp_ledger.accounts)
    return frame, oracle, clusterer


def _xrp_addresses(frame: TxFrame) -> List[str]:
    """Every address appearing as sender or receiver on an XRP row."""
    view = frame.chain_view(ChainId.XRP)
    senders = frame.sender_code
    receivers = frame.receiver_code
    codes = set()
    for row in view.rows:
        codes.add(senders[row])
        codes.add(receivers[row])
    values = frame.accounts.values
    return [values[code] for code in sorted(codes)]


def _cache_directory(cache_root: str, scale: str, seed: int) -> str:
    return os.path.join(cache_root, f"{scale}-seed{seed}")


def _clear_stale_store(directory: str) -> None:
    """Clear chunks (and shard leftovers) before rewriting a cache directory.

    FrameStore.open globs every chunk file (any format), so leftovers from
    a previous layout would silently append rows to later rehydrations; a
    crashed sharded generation can also leave shard sub-directories behind.
    """
    import shutil

    if not os.path.isdir(directory):
        return
    for pattern in ("frame-chunk-*.json.gz", "frame-chunk-*.bin"):
        for stale in glob.glob(os.path.join(directory, pattern)):
            os.remove(stale)
    for stale in glob.glob(os.path.join(directory, "shard-*")):
        if os.path.isdir(stale):
            shutil.rmtree(stale)


def _write_cache_meta(
    meta_path: str, scale: str, seed: int, rows: int, oracle_rates, clusters
) -> None:
    meta = {
        "version": CACHE_VERSION,
        "scenario": scale,
        "seed": seed,
        "rows": rows,
        "oracle_rates": oracle_rates,
        "clusters": clusters,
    }
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle)


def _load_cache_meta(meta_path: str) -> Optional[Dict]:
    if not os.path.exists(meta_path):
        return None
    with open(meta_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    return meta if meta.get("version") == CACHE_VERSION else None


def _meta_companions(meta: Dict) -> Tuple[ExchangeRateOracle, StaticAccountClusterer]:
    oracle = ExchangeRateOracle(
        {
            (currency, issuer): rate
            for currency, issuer, rate in meta["oracle_rates"]
        }
    )
    return oracle, StaticAccountClusterer(meta["clusters"])


def ensure_store(
    scale: str,
    seed: int,
    cache_root: str,
    gen_workers: Optional[int] = None,
) -> StoredDataset:
    """Materialise (or reuse) a scenario's dataset as an on-disk FrameStore.

    The out-of-core complement of :func:`load_or_generate`: the result is a
    store *directory*, never a resident frame.  Scenarios with
    ``generation_windows > 1`` generate shard-parallel across
    ``gen_workers`` processes (content is worker-count independent); cache
    hits validate against the manifest only, so reusing a tens-of-millions
    row dataset costs one small JSON read.
    """
    from repro.collection.generate import generate_sharded

    scenario = get_scenario(scale, seed=seed)
    directory = _cache_directory(cache_root, scale, seed)
    meta_path = os.path.join(directory, "meta.json")
    started = time.perf_counter()
    meta = _load_cache_meta(meta_path)
    if meta is not None:
        store = FrameStore.open(directory)
        if store.row_count == meta.get("rows"):
            oracle, clusterer = _meta_companions(meta)
            return StoredDataset(
                scenario=scenario,
                directory=directory,
                rows=store.row_count,
                oracle=oracle,
                clusterer=clusterer,
                from_cache=True,
                build_seconds=time.perf_counter() - started,
                store=store,
            )
    started = time.perf_counter()
    _clear_stale_store(directory)
    if scenario.generation_windows > 1:
        generated = generate_sharded(scenario, directory, workers=gen_workers)
        rows = generated.rows
        oracle_rates = generated.oracle_rates
        clusters = generated.clusters
        store = FrameStore.open(directory)
    else:
        frame, oracle, clusterer = generate_dataset(scenario)
        store = FrameStore(directory=directory)
        store.add_frame(frame)
        rows = len(frame)
        oracle_rates = [
            [currency, issuer, oracle.rate(currency, issuer)]
            for currency, issuer in oracle.known_assets()
        ]
        clusters = StaticAccountClusterer.from_clusterer(
            clusterer, _xrp_addresses(frame)
        ).to_mapping()
    _write_cache_meta(meta_path, scale, seed, rows, oracle_rates, clusters)
    oracle, clusterer = _meta_companions(
        {"oracle_rates": oracle_rates, "clusters": clusters}
    )
    return StoredDataset(
        scenario=scenario,
        directory=directory,
        rows=rows,
        oracle=oracle,
        clusterer=clusterer,
        from_cache=False,
        build_seconds=time.perf_counter() - started,
        store=store,
    )


def load_or_generate(
    scale: str,
    seed: int,
    cache_root: Optional[str] = None,
    gen_workers: Optional[int] = None,
) -> Dataset:
    """Build the dataset for a registered scenario, cache-aware.

    With ``cache_root`` set, the first build persists the frame (FrameStore
    chunks) and its analysis companions (``meta.json``); later calls with
    the same scale + seed rehydrate from disk and skip generation.
    Scenarios with ``generation_windows > 1`` generate shard-parallel (via
    :func:`ensure_store`) before rehydrating.
    """
    scenario = get_scenario(scale, seed=seed)
    directory = meta_path = None
    if cache_root:
        directory = _cache_directory(cache_root, scale, seed)
        meta_path = os.path.join(directory, "meta.json")
        started = time.perf_counter()
        meta = _load_cache_meta(meta_path)
        if meta is not None:
            frame = FrameStore.open(directory).to_frame()
            # Guard against a corrupted cache (e.g. stale chunk files):
            # a row-count mismatch falls through to regeneration.
            if len(frame) == meta.get("rows"):
                oracle, clusterer = _meta_companions(meta)
                return Dataset(
                    scenario=scenario,
                    frame=frame,
                    oracle=oracle,
                    clusterer=clusterer,
                    from_cache=True,
                    build_seconds=time.perf_counter() - started,
                )
    if scenario.generation_windows > 1:
        # Windowed scenarios are *defined* by their sharded generation;
        # build the store (cache dir or a scratch dir) and rehydrate.
        scratch = None
        if cache_root is None:
            scratch = tempfile.mkdtemp(prefix="repro-dataset-")
        try:
            stored = ensure_store(
                scale, seed, cache_root or scratch, gen_workers=gen_workers
            )
            started = time.perf_counter()
            frame = FrameStore.open(stored.directory).to_frame()
            return Dataset(
                scenario=scenario,
                frame=frame,
                oracle=stored.oracle,
                clusterer=stored.clusterer,
                from_cache=False,
                build_seconds=stored.build_seconds
                + (time.perf_counter() - started),
            )
        finally:
            if scratch is not None:
                import shutil

                shutil.rmtree(scratch, ignore_errors=True)
    started = time.perf_counter()
    frame, oracle, clusterer = generate_dataset(scenario)
    elapsed = time.perf_counter() - started
    if directory is not None:
        _clear_stale_store(directory)
        store = FrameStore(directory=directory)
        store.add_frame(frame)
        static = StaticAccountClusterer.from_clusterer(
            clusterer, _xrp_addresses(frame)
        )
        _write_cache_meta(
            meta_path,
            scale,
            seed,
            len(frame),
            [
                [currency, issuer, oracle.rate(currency, issuer)]
                for currency, issuer in oracle.known_assets()
            ],
            static.to_mapping(),
        )
    return Dataset(
        scenario=scenario,
        frame=frame,
        oracle=oracle,
        clusterer=clusterer,
        from_cache=False,
        build_seconds=elapsed,
    )


def _run_report(dataset: Dataset, workers: int, shards: Optional[int]) -> FullReport:
    if workers > 1:
        return parallel_full_report(
            dataset.frame,
            oracle=dataset.oracle,
            clusterer=dataset.clusterer,
            workers=workers,
            shards=shards,
        )
    return full_report(
        dataset.frame, oracle=dataset.oracle, clusterer=dataset.clusterer
    )


def _report_to_dict(report: FullReport) -> Dict[str, object]:
    payload: Dict[str, object] = {}
    for chain, figures in report.chains.items():
        entry: Dict[str, object] = figures.to_summary().to_dict()
        entry["type_distribution"] = [
            {
                "group": row.group,
                "type": row.type_name,
                "count": row.count,
                "share": round(row.share, 6),
            }
            for row in figures.type_rows
        ]
        entry["throughput_bins"] = figures.throughput.bin_count
        if figures.decomposition is not None:
            decomposition = figures.decomposition
            entry["decomposition"] = {
                "total": decomposition.total,
                "failed": decomposition.failed,
                "payments_with_value": decomposition.payments_with_value,
                "offers_exchanged": decomposition.offers_exchanged,
                "economic_value_share": round(
                    decomposition.economic_value_share, 6
                ),
            }
        if figures.wash_trading is not None and figures.wash_trading.trade_count:
            wash = figures.wash_trading
            entry["wash_trading"] = {
                "trade_count": wash.trade_count,
                "top_accounts_trade_share": round(wash.top_accounts_trade_share, 6),
                "self_trade_share_overall": round(wash.self_trade_share_overall, 6),
            }
        if figures.value_distribution is not None and figures.value_distribution.count:
            dist = figures.value_distribution
            entry["value_distribution"] = {
                "count": dist.count,
                "total_xrp": round(dist.total_xrp, 6),
                "mean": round(dist.mean, 6),
                "min": round(dist.minimum, 6),
                "max": round(dist.maximum, 6),
                "p50": round(dist.p50, 6),
                "p90": round(dist.p90, 6),
                "p99": round(dist.p99, 6),
                "approximate": dist.approximate,
            }
        payload[chain.value] = entry
    return payload


def _print_report(report: FullReport, out) -> None:
    for chain, figures in report.chains.items():
        print(
            f"\n[{chain.value.upper()}]  {figures.stats.action_count:,} rows, "
            f"{figures.tps:.3f} TPS, {figures.throughput.bin_count} throughput bins",
            file=out,
        )
        for row in figures.type_rows[:4]:
            print(
                f"    {row.group:18s} {row.type_name:22s} {row.share:6.1%}",
                file=out,
            )
        if figures.wash_trading is not None and figures.wash_trading.trade_count:
            wash = figures.wash_trading
            print(
                f"    wash trading: top-5 involved in "
                f"{wash.top_accounts_trade_share:.0%} of {wash.trade_count} trades",
                file=out,
            )
        if figures.decomposition is not None:
            print(
                f"    economic value share: "
                f"{figures.decomposition.economic_value_share:.2%} (paper: ~2.3%)",
                file=out,
            )
        if figures.value_distribution is not None and figures.value_distribution.count:
            dist = figures.value_distribution
            approx = "~" if dist.approximate else ""
            print(
                f"    payment values: {dist.count:,} payments, median "
                f"{approx}{dist.p50:,.2f} XRP, p99 {approx}{dist.p99:,.2f} XRP",
                file=out,
            )
    print("\n" + report.summary().format_text(), file=out)


# -- commands --------------------------------------------------------------------------
def cmd_list(args: argparse.Namespace, out) -> int:
    print("Registered scenarios:", file=out)
    for name in sorted(_SCENARIO_REGISTRY):
        factory = _SCENARIO_REGISTRY[name]
        doc = (factory.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:14s} {summary}", file=out)
    return 0


def cmd_scenario(args: argparse.Namespace, out) -> int:
    scenario = get_scenario(args.name, seed=args.seed)
    print(f"Scenario {args.name!r} (instantiated as {scenario.name!r}):", file=out)
    for label, config in (
        ("eos", scenario.eos),
        ("tezos", scenario.tezos),
        ("xrp", scenario.xrp),
    ):
        print(f"  [{label}]", file=out)
        for field_name, value in sorted(vars(config).items()):
            print(f"    {field_name} = {value!r}", file=out)
    print("  scale factors (fraction of the paper's real daily volume):", file=out)
    for chain, factor in scenario.scale_factors.items():
        print(f"    {chain:6s} {factor:.6f}", file=out)
    return 0


def cmd_report(args: argparse.Namespace, out) -> int:
    # In JSON mode only the payload goes to ``out`` (pipe-friendly); the
    # progress lines move to stderr.
    info = sys.stderr if args.json else out
    if args.out_of_core:
        if not args.cache:
            raise ReproError("--out-of-core requires --cache DIR (the store lives there)")
        stored = ensure_store(
            args.scale, args.seed, args.cache, gen_workers=args.gen_workers
        )
        source = "cache" if stored.from_cache else "generated"
        print(
            f"Dataset {args.scale!r} seed {args.seed}: {stored.rows:,} rows "
            f"({source} in {stored.build_seconds:.2f}s; out-of-core store)",
            file=info,
        )
        workers = args.workers if args.workers >= 1 else default_workers()
        cache = (
            None if args.no_cache else ChunkStateCache.for_store(stored.directory)
        )
        started = time.perf_counter()
        report = parallel_report_from_store(
            stored.directory,
            oracle=stored.oracle,
            clusterer=stored.clusterer,
            workers=workers,
            tasks=args.shards,
            cache=cache,
            store=stored.store,
        )
        elapsed = time.perf_counter() - started
        cache_text = (
            f"; state cache {cache.hits} hit(s) / {cache.misses} miss(es)"
            if cache is not None
            else ""
        )
        print(
            f"Report computed by the out-of-core chunk engine "
            f"({workers} workers) in {elapsed:.2f}s{cache_text}",
            file=info,
        )
        if args.json:
            print(
                json.dumps(_report_to_dict(report), indent=2, sort_keys=True),
                file=out,
            )
        else:
            _print_report(report, out)
        return 0
    dataset = load_or_generate(
        args.scale, args.seed, cache_root=args.cache, gen_workers=args.gen_workers
    )
    source = "cache" if dataset.from_cache else "generated"
    print(
        f"Dataset {args.scale!r} seed {args.seed}: {len(dataset.frame):,} rows "
        f"({source} in {dataset.build_seconds:.2f}s)",
        file=info,
    )
    started = time.perf_counter()
    report = _run_report(dataset, args.workers, args.shards)
    elapsed = time.perf_counter() - started
    engine = (
        f"parallel engine ({args.workers} workers)"
        if args.workers > 1
        else "serial single-pass engine"
    )
    print(f"Report computed by the {engine} in {elapsed:.2f}s", file=info)
    if args.json:
        print(json.dumps(_report_to_dict(report), indent=2, sort_keys=True), file=out)
    else:
        _print_report(report, out)
    return 0


def _git_revision() -> str:
    """Short revision of the repro checkout, or ``unknown`` when installed.

    Anchored to this module's directory (not the invoking shell's cwd), so
    a trajectory point is never stamped with some unrelated repository's
    revision.
    """
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return result.stdout.strip() if result.returncode == 0 else "unknown"


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _figure_benches(dataset: Dataset) -> List[Tuple[str, Callable[[], object]]]:
    """The heaviest per-accumulator kernels, as standalone engine passes."""
    frame = dataset.frame
    bounds = (frame.min_timestamp() or 0.0, frame.max_timestamp() or 0.0)
    return [
        ("type_distribution", lambda: TypeDistributionAccumulator().run(frame)),
        ("top_senders", lambda: AccountActivityAccumulator("sender").run(frame)),
        (
            "throughput_series",
            lambda: ThroughputSeriesAccumulator(
                key_columns=tezos_figure3_key_columns,
                start=bounds[0],
                end=bounds[1],
            ).run(frame),
        ),
        ("tx_stats", lambda: TxStatsAccumulator().run(frame)),
    ]


def bench_checkpoint_roundtrip(
    frame: TxFrame,
    oracle,
    clusterer,
    repeat: int,
    workdir: str,
    delta_fraction: float = 0.02,
) -> Dict[str, object]:
    """Time the snapshot codec round-trip against the legacy pickle baseline.

    Measures the real checkpoint cost of one steady-state ``repro update``
    tick: each chain's figure accumulators restore the previous snapshot
    and scan a small fresh batch (``delta_fraction`` of the chain's rows),
    then the persistence round-trip is timed — export + encode + atomic
    save of that state, and load + decode + restore into freshly bound
    accumulators.  The delta-aware layering means the codec side persists
    O(delta); the version-1 baseline (pickled accumulator lists per chain,
    exactly as the old ``capture_chain`` + ``save`` wrote them) re-pickles
    the full state, exactly as it did every update.

    Shared by ``repro bench`` and the ≥3x CI gate in
    ``benchmarks/test_bench_incremental_update.py`` so both always measure
    the same scenario.
    """
    from repro.analysis.engine import BLOCK_ROWS, scan_blocks

    def fresh_accumulators() -> Dict[str, List]:
        by_chain: Dict[str, List] = {}
        for chain in frame.chains():
            if not len(frame.chain_view(chain)):
                continue
            accumulators = figure_accumulators(
                chain, frame.chain_bounds(chain), oracle, clusterer
            )
            by_chain[chain.value] = accumulators
        return by_chain

    def bound_accumulators() -> Dict[str, List]:
        by_chain = fresh_accumulators()
        for accumulators in by_chain.values():
            for accumulator in accumulators:
                accumulator.bind_batch(frame)
        return by_chain

    # The previous tick's snapshot: every chain scanned up to a watermark
    # leaving ``delta_fraction`` of its rows as the fresh batch.
    delta_rows: Dict[str, object] = {}
    prefix_state: Dict[str, List] = {}
    for chain in frame.chains():
        view = frame.chain_view(chain)
        if not len(view):
            continue
        rows = view.rows
        split = int(len(rows) * (1.0 - delta_fraction))
        accumulators = figure_accumulators(
            chain, frame.chain_bounds(chain), oracle, clusterer
        )
        consumers = [accumulator.bind_batch(frame) for accumulator in accumulators]
        for block in scan_blocks(rows[:split], BLOCK_ROWS):
            for consume in consumers:
                consume(block)
        prefix_state[chain.value] = accumulators
        delta_rows[chain.value] = rows[split:]
    previous = PipelineCheckpoint.capture(len(frame), prefix_state)

    def restored_plus_delta() -> Dict[str, List]:
        """Accumulator state exactly as an update holds it at capture time."""
        by_chain = fresh_accumulators()
        for chain_value, accumulators in by_chain.items():
            consumers = [
                accumulator.bind_batch(frame) for accumulator in accumulators
            ]
            for accumulator, payload in zip(
                accumulators, previous.restore_payloads(chain_value)
            ):
                accumulator.restore_state(payload)
            for block in scan_blocks(delta_rows[chain_value], BLOCK_ROWS):
                for consume in consumers:
                    consume(block)
        return by_chain

    # Independent instances of the same logical state for each format, so
    # pickle's full-set materialisation never flattens the codec side's
    # layered columns.
    scanned = restored_plus_delta()
    pickle_scanned = restored_plus_delta()
    store = CheckpointStore(workdir)
    targets = bound_accumulators()
    legacy_path = os.path.join(workdir, "legacy-checkpoint.pkl")

    def snapshot() -> None:
        store.save(PipelineCheckpoint.capture(len(frame), scanned))

    def restore() -> None:
        loaded = store.load()
        for chain_value, accumulators in targets.items():
            payloads = loaded.restore_payloads(chain_value)
            for accumulator, payload in zip(accumulators, payloads):
                accumulator.bind_batch(frame)  # reset state between rounds
                accumulator.restore_state(payload)

    def pickle_snapshot() -> None:
        # Exactly what v1's capture_chain + save produced per update:
        # pickled accumulator lists plus the config-signature gate.
        blob = {
            chain_value: pickle.dumps(list(accumulators))
            for chain_value, accumulators in pickle_scanned.items()
        }
        signatures = {
            chain_value: [
                accumulator.config_signature() for accumulator in accumulators
            ]
            for chain_value, accumulators in pickle_scanned.items()
        }
        with open(legacy_path, "wb") as handle:
            pickle.dump(
                {
                    "watermark_rows": len(frame),
                    "chains": blob,
                    "signatures": signatures,
                },
                handle,
            )

    def pickle_restore() -> None:
        with open(legacy_path, "rb") as handle:
            payload = pickle.load(handle)
        for chain_value, accumulators in targets.items():
            restored = pickle.loads(payload["chains"][chain_value])
            for accumulator, part in zip(accumulators, restored):
                accumulator.bind_batch(frame)
                accumulator.merge(part)

    # Interleave the four stages round by round, so machine noise (another
    # process stealing a core, a slow disk window) lands on both formats
    # rather than skewing one side's best-of; minima are taken per stage.
    stages = [snapshot, pickle_snapshot, restore, pickle_restore]
    best = [float("inf")] * len(stages)
    for _ in range(max(repeat, 5)):
        for index, stage in enumerate(stages):
            started = time.perf_counter()
            stage()
            best[index] = min(best[index], time.perf_counter() - started)
    snapshot_seconds, pickle_snapshot_seconds, restore_seconds, pickle_restore_seconds = best
    snapshot_bytes = os.path.getsize(store.path)
    pickle_bytes = os.path.getsize(legacy_path)
    round_trip = snapshot_seconds + restore_seconds
    pickle_round_trip = pickle_snapshot_seconds + pickle_restore_seconds
    return {
        "snapshot_seconds": round(snapshot_seconds, 6),
        "restore_seconds": round(restore_seconds, 6),
        "round_trip_seconds": round(round_trip, 6),
        "snapshot_bytes": snapshot_bytes,
        "pickle_snapshot_seconds": round(pickle_snapshot_seconds, 6),
        "pickle_restore_seconds": round(pickle_restore_seconds, 6),
        "pickle_round_trip_seconds": round(pickle_round_trip, 6),
        "pickle_bytes": pickle_bytes,
        "speedup_vs_pickle": round(pickle_round_trip / round_trip, 3)
        if round_trip
        else None,
    }


def _peak_rss_kb(who: int) -> int:
    """Peak resident set size in KiB (Linux ``ru_maxrss`` unit)."""
    import resource

    return int(resource.getrusage(who).ru_maxrss)


def bench_out_of_core(
    directory: str,
    oracle,
    clusterer,
    workers: int,
    shards: Optional[int],
    repeat: int,
    serial_seconds: float,
    rows: int,
) -> Dict[str, object]:
    """Time the out-of-core chunk engine against the serial in-memory pass.

    ``workers_peak_rss_kb`` is ``getrusage(RUSAGE_CHILDREN)``'s high-water
    mark, so this must run before anything else forks workers (the legacy
    payload-shipping pool would otherwise pollute the reading).  Within a
    bench run the workers fork from a parent that already holds the
    in-memory frame for the kernel benches, so their RSS inherits those
    pages; the clean bounded-memory demonstration is ``repro report
    --out-of-core`` (parent never materialises the frame) and the RSS
    tests under ``tests/analysis``.  On a single-core host the pool cannot
    beat the serial scan on wall-clock; the stanza says so explicitly
    instead of reporting a meaningless speedup, and the ``>= 2x at large
    tier`` gate applies to multi-core hosts (see ``benchmarks/``).
    """
    import resource

    store = FrameStore.open(directory)
    chunk_count = store.committed_chunk_count
    task_count = shards if shards is not None else max(workers, 1)
    task_count = max(1, min(task_count, chunk_count)) if chunk_count else 0
    processes = min(workers, task_count) if workers > 1 else 0
    seconds = _best_of(
        lambda: parallel_report_from_store(
            directory, oracle=oracle, clusterer=clusterer, workers=workers, tasks=shards
        ),
        repeat,
    )
    cpu_count = os.cpu_count() or 1
    stanza: Dict[str, object] = {
        "workers": workers,
        "processes": processes,
        "mode": "pool" if processes else "in-process",
        "cpu_count": cpu_count,
        "rows": rows,
        "chunks": chunk_count,
        "tasks": task_count,
        "seconds": round(seconds, 6),
        "rows_per_second": round(rows / seconds) if seconds else None,
        "serial_seconds": round(serial_seconds, 6),
        "speedup_vs_serial": round(serial_seconds / seconds, 3) if seconds else None,
        "parent_peak_rss_kb": _peak_rss_kb(resource.RUSAGE_SELF),
        "workers_peak_rss_kb": _peak_rss_kb(resource.RUSAGE_CHILDREN),
    }
    if cpu_count == 1:
        stanza["note"] = (
            "single-core host: pool wall-clock cannot beat serial; "
            "speedup_vs_serial reflects process overhead, not the engine"
        )
    return stanza


def bench_report_cache(
    directory: str,
    oracle,
    clusterer,
    repeat: int,
) -> Dict[str, object]:
    """Time the chunk-state aggregate cache: cold populate vs warm report.

    Three in-process (``workers=1``) out-of-core passes over the same
    store, so the comparison isolates the cache effect from pool
    scheduling: an *uncached* reference scan, the *cold* cache-populating
    scan (every chunk misses, scans, and persists its states), and the
    *warm* memoized pass (every chunk hits; no chunk is decompressed at
    all).  Hit/miss counters come from the passes themselves, cache bytes
    from the directory afterwards.  The store's cache is cleared first and
    left warm after — which is exactly what a subsequent ``repro report
    --out-of-core`` wants.

    Shared by ``repro bench`` and the ≥5x CI gate in
    ``benchmarks/test_bench_state_cache.py`` so both measure the same
    scenario.
    """
    store = FrameStore.open(directory)
    counters = {"hits": 0, "misses": 0}

    def run(with_cache: bool) -> None:
        cache = ChunkStateCache.for_store(directory) if with_cache else None
        parallel_report_from_store(
            directory,
            oracle=oracle,
            clusterer=clusterer,
            workers=1,
            cache=cache,
            store=store,
        )
        if cache is not None:
            counters["hits"], counters["misses"] = cache.hits, cache.misses

    uncached_seconds = _best_of(lambda: run(False), repeat)
    ChunkStateCache.for_store(directory).clear()
    started = time.perf_counter()
    run(True)
    cold_seconds = time.perf_counter() - started
    cold_hits, cold_misses = counters["hits"], counters["misses"]
    warm_seconds = _best_of(lambda: run(True), repeat)
    stat = ChunkStateCache.for_store(directory).stat()
    return {
        "chunks": store.committed_chunk_count,
        "uncached_seconds": round(uncached_seconds, 6),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "cold_hits": cold_hits,
        "cold_misses": cold_misses,
        "warm_hits": counters["hits"],
        "warm_misses": counters["misses"],
        "cache_entries": stat["entries"],
        "cache_bytes": stat["bytes"],
        "speedup_warm_vs_cold": round(cold_seconds / warm_seconds, 3)
        if warm_seconds
        else None,
        "speedup_warm_vs_uncached": round(uncached_seconds / warm_seconds, 3)
        if warm_seconds
        else None,
    }


def bench_sketch_mode(dataset: Dataset, repeat: int) -> Dict[str, object]:
    """Time, size and error-check the sketch statistics mode.

    Three measurements, independent of the ambient ``REPRO_STATS``:

    * ``tx_stats`` timings per kernel backend under sketch mode, plus the
      speedup of the best sketch pass over the exact pure-python reference
      (the ROADMAP's ``tx_stats`` kernel target is measured against that
      reference, and the exact set is its scaling ceiling);
    * memory — the tracemalloc peak of one sketch-mode ``tx_stats`` pass
      (the frame's id-hash cache is prewarmed outside the trace: it is
      one-time frame state, not accumulator state) and the encoded
      checkpoint size of the resulting sketch;
    * figure-level error vs an exact full report: distinct-count relative
      error per chain, top-senders membership overlap, and payment-value
      quantile relative error.  The bounds documented in
      ``docs/architecture.md`` (and enforced by ``tests/sketches``) should
      comfortably cover what this stanza records.

    Shared by ``repro bench`` and the CI gate in
    ``benchmarks/test_bench_sketch.py`` so both measure the same scenario.
    """
    import tracemalloc

    from repro.common import statecodec

    frame = dataset.frame
    frame.transaction_id_hashes()  # prewarm: shared frame state, not per-pass
    backend_names = [kernels.PYTHON]
    if kernels.numpy_available():
        backend_names.append(kernels.NUMPY)
    timings: Dict[str, object] = {}
    with statsmode.use_mode(statsmode.SKETCH):
        for name in backend_names:
            with kernels.use_backend(name):
                timings[name] = round(
                    _best_of(lambda: TxStatsAccumulator().run(frame), repeat), 6
                )
    if kernels.NUMPY in timings and timings[kernels.NUMPY]:
        timings["speedup"] = round(
            timings[kernels.PYTHON] / timings[kernels.NUMPY], 3
        )
    with statsmode.use_mode(statsmode.EXACT), kernels.use_backend(kernels.PYTHON):
        exact_reference = _best_of(lambda: TxStatsAccumulator().run(frame), repeat)
    best_sketch = min(
        timings[name] for name in backend_names if timings[name]
    )

    with statsmode.use_mode(statsmode.SKETCH):
        tracemalloc.start()
        accumulator = TxStatsAccumulator()
        accumulator.run(frame)
        _, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        state_bytes = len(statecodec.encode(accumulator.export_state()))

    def report_in(mode: str) -> FullReport:
        with statsmode.use_mode(mode):
            return full_report(
                frame, oracle=dataset.oracle, clusterer=dataset.clusterer
            )

    exact_report = report_in(statsmode.EXACT)
    sketch_report = report_in(statsmode.SKETCH)
    count_errors: List[float] = []
    overlaps: List[float] = []
    quantile_errors: List[float] = []
    for chain, exact_figures in exact_report.chains.items():
        sketch_figures = sketch_report.chains[chain]
        count = exact_figures.stats.transaction_count
        if count:
            count_errors.append(
                abs(sketch_figures.stats.transaction_count - count) / count
            )
        exact_top = [activity.account for activity in exact_figures.top_senders]
        sketch_top = {activity.account for activity in sketch_figures.top_senders}
        if exact_top:
            overlaps.append(len(sketch_top.intersection(exact_top)) / len(exact_top))
        exact_dist = exact_figures.value_distribution
        sketch_dist = sketch_figures.value_distribution
        if exact_dist is not None and sketch_dist is not None and exact_dist.count:
            for attribute in ("p50", "p90", "p99"):
                reference = getattr(exact_dist, attribute)
                if reference:
                    quantile_errors.append(
                        abs(getattr(sketch_dist, attribute) - reference) / reference
                    )
    return {
        "tx_stats": timings,
        "exact_reference_seconds": round(exact_reference, 6),
        "speedup_vs_exact_reference": round(exact_reference / best_sketch, 3)
        if best_sketch
        else None,
        "tx_stats_state_bytes": state_bytes,
        "tx_stats_traced_peak_kb": round(traced_peak / 1024, 1),
        "error_vs_exact": {
            "transaction_count_rel_error_max": round(max(count_errors), 6)
            if count_errors
            else None,
            "top_senders_overlap_min": round(min(overlaps), 6) if overlaps else None,
            "value_quantile_rel_error_max": round(max(quantile_errors), 6)
            if quantile_errors
            else None,
        },
    }


def bench_chunk_io(
    frame: TxFrame, repeat: int, chunk_rows: int = 50_000
) -> Dict[str, object]:
    """Time chunk encode/decode for each chunk serialisation format.

    Encode is a full in-memory :meth:`FrameStore.add_frame` (slice the
    frame, serialise, compress); decode is a full :meth:`FrameStore.to_frame`
    rehydration — the exact path out-of-core workers, pipeline catch-up and
    cache reloads pay per chunk.  The stanza also records the on-disk byte
    footprint per format, so the trajectory shows what the decode speedup
    costs (or saves) in storage.

    Shared by ``repro bench`` and the CI gate in
    ``benchmarks/test_bench_chunk_format.py`` so both measure the same
    scenario.
    """
    rows = len(frame)
    formats: Dict[str, Dict[str, object]] = {}
    for chunk_format in CHUNK_FORMATS:

        def build(chunk_format: str = chunk_format) -> FrameStore:
            store = FrameStore(chunk_rows=chunk_rows, chunk_format=chunk_format)
            store.add_frame(frame)
            return store

        encode_seconds = _best_of(build, repeat)
        store = build()
        decode_seconds = _best_of(store.to_frame, repeat)
        stats = store.compression_stats()
        formats[chunk_format] = {
            "encode_seconds": round(encode_seconds, 6),
            "decode_seconds": round(decode_seconds, 6),
            "encode_rows_per_second": round(rows / encode_seconds)
            if encode_seconds
            else None,
            "decode_rows_per_second": round(rows / decode_seconds)
            if decode_seconds
            else None,
            "bytes": stats.compressed_bytes,
            "raw_bytes": stats.raw_bytes,
            "chunks": stats.chunk_count,
        }
    v1 = formats[CHUNK_FORMAT_V1]
    v2 = formats[CHUNK_FORMAT_V2]
    return {
        "rows": rows,
        "chunk_rows": chunk_rows,
        "backend": kernels.active_backend(),
        "formats": formats,
        "decode_speedup_v2_vs_v1": round(
            v1["decode_seconds"] / v2["decode_seconds"], 3
        )
        if v2["decode_seconds"]
        else None,
        "encode_speedup_v2_vs_v1": round(
            v1["encode_seconds"] / v2["encode_seconds"], 3
        )
        if v2["encode_seconds"]
        else None,
        "bytes_ratio_v2_vs_v1": round(v2["bytes"] / v1["bytes"], 3)
        if v1["bytes"]
        else None,
    }


#: Pinned fault plan for the bench soak stanza: deterministic endpoint
#: flaps, one torn chunk write and one corrupted checkpoint per run, so the
#: measured cycles/sec includes representative recovery work.
BENCH_SOAK_FAULTS = (
    "seed=11;"
    "crawler.fetch:mode=rate_limit:p=0.02:times=10:retry_after=5;"
    "store.chunk_write:mode=torn:nth=3;"
    "checkpoint.save:mode=bitflip:nth=2"
)


def bench_soak(days: int = 4) -> Dict[str, object]:
    """Time a short pinned-fault soak (see :mod:`repro.pipeline.soak`)."""
    plan = faults.FaultPlan.parse(BENCH_SOAK_FAULTS)
    with tempfile.TemporaryDirectory(prefix="repro-bench-soak-") as scratch:
        result = run_soak(
            os.path.join(scratch, "pipeline"),
            days=days,
            scale="small",
            seed=7,
            plan=plan,
            oracle=False,
        )
    return {
        "days": len(result.cycles),
        "rows": result.rows_total,
        "seconds": round(result.elapsed_seconds, 6),
        "cycles_per_second": round(result.cycles_per_second, 3),
        "retries": result.retries,
        "rate_limit_hits": result.rate_limit_hits,
        "rescans": result.rescans,
        "crashes": result.crashes,
        "injected_fires": result.injected_fires,
        "peak_rss_kb": result.peak_rss_kb,
        "memory_flat": result.memory_flat,
        "fsck_clean": result.fsck_clean,
    }


def cmd_bench(args: argparse.Namespace, out) -> int:
    info = sys.stderr if args.json else out
    dataset = load_or_generate(
        args.scale, args.seed, cache_root=args.cache, gen_workers=args.gen_workers
    )
    # An explicit --workers is honoured (1 measures the in-process sharded
    # path); only the unset default (0) falls back to one per core.
    workers = args.workers if args.workers >= 1 else default_workers()
    rows = len(dataset.frame)
    backend_names = [kernels.PYTHON]
    if kernels.numpy_available():
        backend_names.append(kernels.NUMPY)
    print(
        f"Benchmarking {args.scale!r} ({rows:,} rows): "
        f"kernel backends {', '.join(backend_names)}; "
        f"parallel engine with {workers} workers",
        file=info,
    )

    def serial_report() -> FullReport:
        return full_report(
            dataset.frame, oracle=dataset.oracle, clusterer=dataset.clusterer
        )

    backends: Dict[str, Dict[str, object]] = {}
    figures: Dict[str, Dict[str, float]] = {}
    for name in backend_names:
        with kernels.use_backend(name):
            seconds = _best_of(serial_report, args.repeat)
            backends[name] = {
                "full_report_seconds": round(seconds, 6),
                "rows_per_second": round(rows / seconds) if seconds else None,
            }
            for label, bench in _figure_benches(dataset):
                figures.setdefault(label, {})[name] = round(
                    _best_of(bench, args.repeat), 6
                )
    reference = backends[kernels.PYTHON]["full_report_seconds"]
    for label, timings in figures.items():
        if kernels.NUMPY in timings and timings[kernels.NUMPY]:
            timings["speedup"] = round(
                timings[kernels.PYTHON] / timings[kernels.NUMPY], 3
            )
    active = backends[kernels.active_backend()]["full_report_seconds"]
    # Checkpoint round-trips are ~10ms measurements: take them before the
    # pool benches below add process-churn noise to the box.
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as checkpoint_dir:
        checkpoint_timings = bench_checkpoint_roundtrip(
            dataset.frame, dataset.oracle, dataset.clusterer, args.repeat, checkpoint_dir
        )
    sketch_stanza = bench_sketch_mode(dataset, args.repeat)
    io_stanza = bench_chunk_io(dataset.frame, args.repeat)
    soak_stanza = bench_soak()
    # Out-of-core before the payload-shipping pool: its workers_peak_rss_kb
    # reads the RUSAGE_CHILDREN high-water mark, which any earlier fork
    # would pollute.
    scratch_store = None
    if args.cache:
        store_dir = _cache_directory(args.cache, args.scale, args.seed)
    else:
        scratch_store = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        store_dir = scratch_store.name
        FrameStore(directory=store_dir).add_frame(dataset.frame)
    try:
        out_of_core = bench_out_of_core(
            store_dir,
            dataset.oracle,
            dataset.clusterer,
            workers,
            args.shards,
            args.repeat,
            serial_seconds=active,
            rows=rows,
        )
        report_cache = bench_report_cache(
            store_dir, dataset.oracle, dataset.clusterer, args.repeat
        )
    finally:
        if scratch_store is not None:
            scratch_store.cleanup()
    parallel_seconds = _best_of(
        lambda: parallel_full_report(
            dataset.frame,
            oracle=dataset.oracle,
            clusterer=dataset.clusterer,
            workers=workers,
            shards=args.shards,
        ),
        args.repeat,
    )
    cpu_count = os.cpu_count() or 1
    payload: Dict[str, object] = {
        "schema": 1,
        "revision": _git_revision(),
        "generated_at": time.time(),
        "scenario": args.scale,
        "seed": args.seed,
        "rows": rows,
        "repeat": args.repeat,
        "active_backend": kernels.active_backend(),
        "backends": backends,
        "figures": figures,
        "parallel": {
            # The real execution shape, not just the requested count: with
            # workers <= 1 the sharded engine runs in-process (no pool), so
            # recording ``workers: 1`` as if a pool ran was misleading —
            # especially on single-core hosts where default_workers() is 1.
            "workers": workers,
            "processes": workers if workers > 1 else 0,
            "mode": "pool" if workers > 1 else "in-process",
            "cpu_count": cpu_count,
            "seconds": round(parallel_seconds, 6),
            "speedup_vs_serial": round(active / parallel_seconds, 3)
            if parallel_seconds
            else None,
        },
        "out_of_core": out_of_core,
        "report_cache": report_cache,
        "checkpoint": checkpoint_timings,
        "sketch": sketch_stanza,
        "io": io_stanza,
        "soak": soak_stanza,
        "stats_mode": statsmode.active_mode(),
    }
    if cpu_count == 1:
        payload["parallel"]["note"] = (
            "single-core host: pool wall-clock cannot beat serial"
        )
    if kernels.NUMPY in backends:
        vectorized = backends[kernels.NUMPY]["full_report_seconds"]
        payload["speedup_numpy_vs_python"] = (
            round(reference / vectorized, 3) if vectorized else None
        )
    for name in backend_names:
        timing = backends[name]
        print(
            f"  {name:7s} backend: full_report {timing['full_report_seconds']:.3f}s "
            f"({timing['rows_per_second']:,} rows/s)",
            file=info,
        )
    if "speedup_numpy_vs_python" in payload:
        print(
            f"  numpy kernels are {payload['speedup_numpy_vs_python']:.2f}x the "
            "reference kernels",
            file=info,
        )
    print(
        f"  parallel ({workers} workers, {payload['parallel']['mode']}): "
        f"{parallel_seconds:.3f}s | "
        f"speedup {payload['parallel']['speedup_vs_serial']:.2f}x over the "
        f"{kernels.active_backend()} serial engine on {cpu_count} cores",
        file=info,
    )
    print(
        f"  out-of-core ({out_of_core['workers']} workers, "
        f"{out_of_core['mode']}, {out_of_core['chunks']} chunks): "
        f"{out_of_core['seconds']:.3f}s | "
        f"speedup {out_of_core['speedup_vs_serial']:.2f}x vs serial | "
        f"peak RSS parent {out_of_core['parent_peak_rss_kb']:,} KiB / "
        f"workers {out_of_core['workers_peak_rss_kb']:,} KiB",
        file=info,
    )
    print(
        f"  report cache ({report_cache['chunks']} chunks): cold "
        f"{report_cache['cold_seconds']:.3f}s -> warm "
        f"{report_cache['warm_seconds']:.3f}s "
        f"({report_cache['speedup_warm_vs_cold']:.2f}x) | warm hits "
        f"{report_cache['warm_hits']}/{report_cache['chunks']} | "
        f"{report_cache['cache_bytes']:,} bytes",
        file=info,
    )
    print(
        f"  checkpoint: snapshot {checkpoint_timings['snapshot_seconds']:.3f}s + "
        f"restore {checkpoint_timings['restore_seconds']:.3f}s "
        f"({checkpoint_timings['snapshot_bytes']:,} bytes) | "
        f"{checkpoint_timings['speedup_vs_pickle']:.2f}x faster than the "
        "pickle checkpoint format",
        file=info,
    )
    v1_io = io_stanza["formats"][CHUNK_FORMAT_V1]
    v2_io = io_stanza["formats"][CHUNK_FORMAT_V2]
    print(
        f"  chunk io ({io_stanza['backend']} backend): v2 decode "
        f"{v2_io['decode_seconds']:.3f}s vs v1 {v1_io['decode_seconds']:.3f}s "
        f"({io_stanza['decode_speedup_v2_vs_v1']:.2f}x) | "
        f"encode {io_stanza['encode_speedup_v2_vs_v1']:.2f}x | "
        f"bytes {v2_io['bytes']:,} vs {v1_io['bytes']:,} "
        f"({io_stanza['bytes_ratio_v2_vs_v1']:.2f}x)",
        file=info,
    )
    count_error = sketch_stanza["error_vs_exact"]["transaction_count_rel_error_max"]
    error_text = (
        f"distinct-count error {count_error:.2%}"
        if count_error is not None
        else "no per-chain counts to compare"
    )
    print(
        f"  sketch mode: tx_stats "
        f"{sketch_stanza['speedup_vs_exact_reference']:.2f}x vs exact reference | "
        f"state {sketch_stanza['tx_stats_state_bytes']:,} bytes, traced peak "
        f"{sketch_stanza['tx_stats_traced_peak_kb']:,.0f} KiB | {error_text}",
        file=info,
    )
    print(
        f"  soak ({soak_stanza['days']} faulted days): "
        f"{soak_stanza['cycles_per_second']:.2f} cycles/s | "
        f"{soak_stanza['retries']} retries, {soak_stanza['rescans']} rescans, "
        f"{soak_stanza['crashes']} crashes recovered | "
        f"peak RSS {soak_stanza['peak_rss_kb']:,} KiB",
        file=info,
    )
    if args.json:
        out_dir = args.out or "."
        os.makedirs(out_dir, exist_ok=True)
        trajectory = os.path.join(out_dir, f"BENCH_{payload['revision']}.json")
        with open(trajectory, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"Wrote benchmark trajectory point to {trajectory}", file=info)
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    return 0


def cmd_migrate_store(args: argparse.Namespace, out) -> int:
    """Rewrite a frame store's chunks to another serialisation format."""
    directory = args.directory
    if not os.path.isdir(directory):
        raise ReproError(f"{directory!r} is not a directory")
    # Accept either a bare FrameStore directory or a pipeline/--data
    # directory whose store lives under ``frames/``.
    if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
        nested = os.path.join(directory, "frames")
        if os.path.exists(os.path.join(nested, MANIFEST_NAME)):
            directory = nested
    store = FrameStore.open(directory)
    if store.committed_chunk_count == 0:
        print(f"Nothing to migrate: {directory} has no committed chunks", file=out)
        return 0
    before = store.compression_stats()
    migrated = store.migrate_format(args.format)
    after = store.compression_stats()
    if migrated == 0:
        print(
            f"Nothing to migrate: all {store.committed_chunk_count} chunk(s) "
            f"in {directory} are already {args.format}",
            file=out,
        )
        return 0
    print(
        f"Migrated {migrated} of {store.committed_chunk_count} chunk(s) in "
        f"{directory} to {args.format}; on-disk bytes "
        f"{before.compressed_bytes:,} -> {after.compressed_bytes:,}",
        file=out,
    )
    return 0


def _pipeline_settings(pipeline: Pipeline, args: argparse.Namespace) -> Tuple[str, int, float]:
    """Resolve (scenario, seed, batch_seconds) for a pipeline directory.

    The first ingest/watch pins the settings into the pipeline meta; later
    invocations must match (or omit the flags to inherit), because a
    pipeline replays its scenario's deterministic block stream to know
    where to resume.
    """
    meta = pipeline.meta
    scale = args.scale or meta.get("scenario") or "live_tail"
    seed = args.seed if args.seed is not None else meta.get("seed", 7)
    batch_hours = (
        args.batch_hours if args.batch_hours is not None else meta.get("batch_hours", 6.0)
    )
    if "scenario" in meta:
        pinned = (meta["scenario"], meta["seed"], meta["batch_hours"])
        if (scale, seed, batch_hours) != pinned:
            raise ReproError(
                f"pipeline {pipeline.root!r} is pinned to scenario={pinned[0]!r} "
                f"seed={pinned[1]} batch-hours={pinned[2]}; "
                "omit the flags or use a fresh --data directory"
            )
    else:
        pipeline.set_meta(scenario=scale, seed=seed, batch_hours=batch_hours)
    return scale, seed, batch_hours * SECONDS_PER_HOUR


def _print_update(stats, out) -> None:
    mode = "incremental" if stats.incremental else "full rescan"
    rescans = (
        f" (rescanned: {', '.join(stats.chains_rescanned)})"
        if stats.chains_rescanned
        else ""
    )
    carried = (
        f" (carried: {', '.join(stats.chains_carried)})"
        if stats.chains_carried
        else ""
    )
    print(
        f"Update scanned {stats.rows_scanned:,} of {stats.rows_total:,} rows "
        f"({mode}){rescans}{carried} in {stats.elapsed_seconds:.2f}s; "
        f"checkpoint load {stats.checkpoint_load_seconds:.3f}s / "
        f"save {stats.checkpoint_save_seconds:.3f}s; "
        f"watermark {stats.watermark_before:,} -> {stats.watermark_after:,}",
        file=out,
    )


def cmd_ingest(args: argparse.Namespace, out) -> int:
    pipeline = Pipeline(args.data)
    scale, seed, batch_seconds = _pipeline_settings(pipeline, args)
    scenario = get_scenario(scale, seed=seed)
    generators = scenario_generators(scenario)
    if not pipeline.has_analysis_config():
        pipeline.set_analysis_config(*frozen_analysis_config(generators))
    ingested_batches = 0
    ingested_rows = 0
    last_time: Optional[float] = None
    for index, batch_end, blocks, skip_rows in pending_batches(
        pipeline, generators, batch_seconds
    ):
        if args.batches is not None and ingested_batches >= args.batches:
            break
        ingested_rows += pipeline.ingest_blocks(blocks, skip_rows=skip_rows)
        pipeline.set_meta(next_batch_index=index + 1)
        ingested_batches += 1
        last_time = batch_end
    if ingested_batches == 0:
        print(
            f"Nothing to ingest: scenario {scale!r} is fully ingested "
            f"({pipeline.store.row_count:,} rows)",
            file=out,
        )
        return 0
    print(
        f"Ingested {ingested_batches} batch(es), {ingested_rows:,} rows "
        f"into {args.data} (virtual time {iso_from_timestamp(last_time)}); "
        f"store: {pipeline.store.row_count:,} rows in "
        f"{pipeline.store.chunk_count} chunks, checkpoint watermark "
        f"{pipeline.watermark:,}",
        file=out,
    )
    return 0


def cmd_update(args: argparse.Namespace, out) -> int:
    info = sys.stderr if args.json else out
    pipeline = Pipeline(args.data)
    if pipeline.store.row_count == 0 and "scenario" not in pipeline.meta:
        # A mistyped --data would otherwise "succeed" with an empty report.
        raise ReproError(
            f"{args.data!r} is not an initialised pipeline "
            "(no rows, no pinned scenario); run ingest or watch first"
        )
    report, stats = pipeline.update(workers=args.workers, shards=args.shards)
    _print_update(stats, info)
    if args.json:
        payload = _report_to_dict(report)
        payload["_update"] = {
            "rows_total": stats.rows_total,
            "rows_scanned": stats.rows_scanned,
            "incremental": stats.incremental,
            "chains_rescanned": stats.chains_rescanned,
            "chains_carried": stats.chains_carried,
            "checkpoint_load_seconds": round(stats.checkpoint_load_seconds, 6),
            "checkpoint_save_seconds": round(stats.checkpoint_save_seconds, 6),
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        _print_report(report, out)
    return 0


def cmd_watch(args: argparse.Namespace, out) -> int:
    pipeline = Pipeline(args.data)
    scale, seed, batch_seconds = _pipeline_settings(pipeline, args)
    scenario = get_scenario(scale, seed=seed)
    skip = int(pipeline.meta.get("next_batch_index", 0))
    runner = LiveTailRunner(
        pipeline,
        scenario,
        batch_seconds=batch_seconds,
        clock=SimulationClock(0.0),
        workers=args.workers,
        shards=args.shards,
    )
    print(
        f"Watching scenario {scale!r} (seed {seed}, {batch_seconds / 3600:.0f}h "
        f"batches) from batch {skip}",
        file=out,
    )
    last_report: Optional[FullReport] = None
    for update in runner.run(max_batches=args.batches):
        summaries = []
        for chain, figures in update.report.chains.items():
            summaries.append(f"{chain.value}:{figures.tps:.3f}tps")
        checkpoint_seconds = (
            update.stats.checkpoint_load_seconds
            + update.stats.checkpoint_save_seconds
        )
        print(
            f"[{iso_from_timestamp(update.virtual_time)}] "
            f"batch {update.batch_index}: +{update.blocks_ingested} blocks "
            f"(+{update.rows_ingested:,} rows), scanned "
            f"{update.stats.rows_scanned:,}/{update.stats.rows_total:,} rows "
            f"in {update.stats.elapsed_seconds:.2f}s "
            f"(ckpt {checkpoint_seconds:.2f}s) | {' '.join(summaries)}",
            file=out,
        )
        last_report = update.report
    if last_report is None:
        print("Nothing to watch: the scenario stream is fully ingested", file=out)
        return 0
    print("\n" + last_report.summary().format_text(), file=out)
    return 0


def cmd_soak(args: argparse.Namespace, out) -> int:
    info = sys.stderr if args.json else out
    plan = None
    spec = args.faults if args.faults is not None else os.environ.get(faults.FAULTS_ENV)
    if spec:
        plan = faults.FaultPlan.parse(spec)
    fault_text = f"fault plan {spec!r}" if spec else "no faults"
    print(
        f"Soaking scenario {args.scale!r} (seed {args.seed}) for {args.days} "
        f"simulated day(s) under {fault_text}",
        file=info,
    )
    result = run_soak(
        args.data,
        days=args.days,
        scale=args.scale,
        seed=args.seed,
        plan=plan,
        workers=args.workers,
        chunk_rows=args.chunk_rows,
        oracle=not args.no_oracle,
    )
    if args.events:
        with open(args.events, "w", encoding="utf-8") as handle:
            if result.event_log:
                handle.write(result.event_log + "\n")
        print(f"Wrote fault event log to {args.events}", file=info)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(
            f"{len(result.cycles)} cycle(s), {result.rows_total:,} rows | "
            f"{result.crashes} crash(es) and {result.worker_deaths} worker "
            f"death(s) recovered | {result.retries} retries, "
            f"{result.rate_limit_hits} rate-limit hits, "
            f"{result.rescans} rescan(s), {result.injected_fires} injected "
            f"fault(s) fired",
            file=out,
        )
        print(
            f"gates: fsck={'clean' if result.fsck_clean else 'DAMAGED'} "
            + (
                f"identity={'ok' if result.identity_ok else 'DIVERGED'} "
                f"rows={'ok' if result.rows_total == result.oracle_rows else 'LOST/DUP'} "
                if not args.no_oracle
                else ""
            )
            + f"memory={'flat' if result.memory_flat else 'GROWING'}",
            file=out,
        )
        for failure in result.failures:
            print(f"FAILED: {failure}", file=out)
    return 0 if result.ok else 1


def cmd_fsck(args: argparse.Namespace, out) -> int:
    info = sys.stderr if args.json else out
    report = run_fsck(args.directory, repair=args.repair)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(
            f"Checked {report.chunks_checked} chunk(s) in {report.store_dir} "
            f"({report.chunks_ok} ok)"
            + (", checkpoint checked" if report.checkpoint_checked else ""),
            file=info,
        )
        for issue in report.issues:
            repair_text = f" -> {issue.repair}" if issue.repair else ""
            print(f"  [{issue.kind}] {issue.detail}{repair_text}", file=out)
        if report.clean:
            print("clean: no damage found", file=out)
        elif args.repair:
            quarantined = sum(1 for issue in report.issues if issue.repair)
            degraded = ", ".join(
                f"{chain}={rows}" for chain, rows in sorted(report.degraded_rows.items())
            )
            print(
                f"repaired: {quarantined} file(s) quarantined, degraded rows "
                f"{{{degraded or 'none'}}}",
                file=out,
            )
        else:
            print(
                f"DAMAGED: {len(report.issues)} issue(s) found "
                "(re-run with --repair to quarantine)",
                file=out,
            )
    if report.clean:
        return 0
    return 0 if args.repair else 1


def cmd_cache(args: argparse.Namespace, out) -> int:
    """Inspect or clear a store's chunk-state aggregate cache."""
    from repro.pipeline.fsck import resolve_store_dir

    if not os.path.isdir(args.directory):
        raise ReproError(f"{args.directory!r} is not a directory")
    store_dir = resolve_store_dir(args.directory)
    cache = ChunkStateCache.for_store(store_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(
            f"Cleared {removed} chunk-state cache file(s) from {cache.directory}",
            file=out,
        )
        return 0
    stat = cache.stat()
    if args.json:
        print(json.dumps(stat, indent=2, sort_keys=True), file=out)
    else:
        other = (
            f", {stat['other_files']} unrecognised file(s)"
            if stat["other_files"]
            else ""
        )
        print(
            f"Chunk-state cache at {stat['directory']}: {stat['entries']} "
            f"entry(ies), {stat['bytes']:,} bytes{other}",
            file=out,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'Revisiting Transactional Statistics of "
            "High-scalability Blockchains' (IMC 2020)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered scenarios")

    scenario = commands.add_parser(
        "scenario", help="show one scenario's configuration and scale factors"
    )
    scenario.add_argument("name", help="registered scenario name")
    scenario.add_argument("--seed", type=int, default=7)

    def dataset_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            default="small",
            help="registered scenario name (default: small)",
        )
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument(
            "--cache",
            default=None,
            metavar="DIR",
            help="dataset cache root; repeat runs skip workload generation",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=0,
            help="worker processes (0/1 = serial engine; default 0)",
        )
        sub.add_argument(
            "--shards",
            type=int,
            default=None,
            help="shards per chain (default: one per worker)",
        )
        sub.add_argument(
            "--gen-workers",
            type=int,
            default=None,
            help=(
                "worker processes for window-sharded dataset generation "
                "(default: one per core; content is worker-count independent)"
            ),
        )
        stats_flag(sub)

    def stats_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--stats",
            choices=(statsmode.EXACT, statsmode.SKETCH),
            default=None,
            help=(
                "statistics mode: 'exact' per-key state or bounded-memory "
                "'sketch' summaries (default: $REPRO_STATS or exact)"
            ),
        )

    report = commands.add_parser(
        "report", help="generate (or load) a dataset and print the paper report"
    )
    dataset_flags(report)
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    report.add_argument(
        "--out-of-core",
        action="store_true",
        help=(
            "compute the report by streaming the cached store's chunks "
            "(requires --cache; no process materialises the full frame)"
        ),
    )
    report.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable the chunk-state aggregate cache for --out-of-core "
            "reports (by default memoized per-chunk states in cache/ beside "
            "the store's chunks are consulted and populated, making repeat "
            "reports O(new data))"
        ),
    )

    bench = commands.add_parser(
        "bench",
        help="time the kernel backends and the parallel engine",
    )
    dataset_flags(bench)
    bench.add_argument("--repeat", type=int, default=3, help="timed rounds (best-of)")
    bench.add_argument(
        "--json",
        action="store_true",
        help="write BENCH_<rev>.json and emit the summary as JSON on stdout",
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for the BENCH_<rev>.json trajectory point (default: .)",
    )

    def pipeline_flags(sub: argparse.ArgumentParser, with_stream: bool) -> None:
        sub.add_argument(
            "--data",
            required=True,
            metavar="DIR",
            help="pipeline directory (created on first use)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=0,
            help="worker processes for the catch-up scan (0/1 = serial)",
        )
        sub.add_argument(
            "--shards",
            type=int,
            default=None,
            help="shards for the catch-up scan (default: one per worker)",
        )
        stats_flag(sub)
        if with_stream:
            sub.add_argument(
                "--scale",
                default=None,
                help="scenario to stream (default: live_tail; pinned after first use)",
            )
            sub.add_argument("--seed", type=int, default=None)
            sub.add_argument(
                "--batch-hours",
                type=float,
                default=None,
                help="virtual hours per ingestion batch (default 6)",
            )
            sub.add_argument(
                "--batches",
                type=int,
                default=None,
                help="number of batches to process (default: all remaining)",
            )

    migrate = commands.add_parser(
        "migrate-store",
        help="rewrite a frame store's chunks to another serialisation format",
    )
    migrate.add_argument(
        "directory",
        help="frame-store directory (or a pipeline --data directory)",
    )
    migrate.add_argument(
        "--format",
        choices=CHUNK_FORMATS,
        default=DEFAULT_CHUNK_FORMAT,
        help=f"target chunk format (default: {DEFAULT_CHUNK_FORMAT})",
    )

    ingest = commands.add_parser(
        "ingest",
        help="append the next timed block batches to a pipeline directory",
    )
    pipeline_flags(ingest, with_stream=True)

    update = commands.add_parser(
        "update",
        help="refresh every figure incrementally from the checkpoint watermark",
    )
    pipeline_flags(update, with_stream=False)
    update.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    watch = commands.add_parser(
        "watch",
        help="live loop: ingest a batch, update the figures, repeat",
    )
    pipeline_flags(watch, with_stream=True)

    soak = commands.add_parser(
        "soak",
        help=(
            "drive ingest+update through simulated days under a deterministic "
            "fault plan, then gate identity, fsck and memory flatness"
        ),
    )
    soak.add_argument(
        "--data",
        required=True,
        metavar="DIR",
        help="pipeline directory for the soak (oracle run uses DIR.oracle)",
    )
    soak.add_argument("--days", type=int, default=50, help="simulated days (default 50)")
    soak.add_argument(
        "--scale",
        default="small",
        help="registered scenario name (default: small)",
    )
    soak.add_argument("--seed", type=int, default=7)
    soak.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "fault plan spec, e.g. "
            "'seed=1;crawler.fetch:mode=rate_limit:p=0.05;"
            "store.chunk_write:mode=torn:nth=3' (default: $REPRO_FAULTS)"
        ),
    )
    soak.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for update scans (0/1 = serial)",
    )
    soak.add_argument(
        "--chunk-rows",
        type=int,
        default=2_000,
        help="store chunk size; small keeps durability boundaries frequent",
    )
    soak.add_argument(
        "--no-oracle",
        action="store_true",
        help="skip the fault-free oracle run and its identity/row gates",
    )
    soak.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help="write the byte-reproducible fault event log to FILE",
    )
    soak.add_argument(
        "--json", action="store_true", help="emit the soak result as JSON"
    )
    stats_flag(soak)

    cache = commands.add_parser(
        "cache",
        help="inspect or clear a store's chunk-state aggregate cache",
    )
    cache.add_argument(
        "action",
        choices=("stat", "clear"),
        help="stat: entry count and bytes; clear: remove every entry",
    )
    cache.add_argument(
        "directory",
        help="frame-store directory (or a pipeline --data directory)",
    )
    cache.add_argument(
        "--json", action="store_true", help="emit the cache stats as JSON"
    )

    fsck = commands.add_parser(
        "fsck",
        help="verify a store/pipeline directory's chunks, manifest and checkpoint",
    )
    fsck.add_argument(
        "directory",
        help="frame-store directory (or a pipeline --data directory)",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine damaged files into quarantine/ and rewrite the manifest",
    )
    fsck.add_argument(
        "--json", action="store_true", help="emit the fsck report as JSON"
    )

    return parser


_COMMANDS = {
    "list": cmd_list,
    "scenario": cmd_scenario,
    "report": cmd_report,
    "bench": cmd_bench,
    "migrate-store": cmd_migrate_store,
    "ingest": cmd_ingest,
    "update": cmd_update,
    "watch": cmd_watch,
    "soak": cmd_soak,
    "fsck": cmd_fsck,
    "cache": cmd_cache,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # An explicit --stats pins the mode for the whole command (and is
        # inherited by accumulator factories shipped to worker processes);
        # without the flag the $REPRO_STATS environment selection applies.
        with statsmode.use_mode(statsmode.resolve(getattr(args, "stats", None))):
            return _COMMANDS[args.command](args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
