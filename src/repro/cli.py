"""Command-line interface: ``python -m repro <command>``.

The CLI is the operational front door to the reproduction pipeline:

* ``list`` — the scenario registry (names + one-line descriptions);
* ``scenario NAME`` — one scenario's per-chain configuration and scale
  factors;
* ``report`` — generate (or load from cache) a scenario's dataset and print
  the paper's full figure report, serially or across worker processes;
* ``bench`` — time the serial single-pass engine against the parallel
  sharded engine on the same dataset and report the speedup.

Dataset caching: with ``--cache DIR`` a generated dataset is chunk-compressed
into a :class:`~repro.collection.store.FrameStore` directory together with a
``meta.json`` carrying the exchange-rate oracle and the frozen account
cluster map.  Repeat runs with the same scenario + seed rehydrate the frame
from the store and skip workload generation entirely.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.clustering import AccountClusterer, StaticAccountClusterer
from repro.analysis.parallel import default_workers, parallel_full_report
from repro.analysis.report import FullReport, full_report
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import FrameStore
from repro.common.columns import TxFrame
from repro.common.errors import ReproError
from repro.common.records import ChainId
from repro.eos.workload import EosWorkloadGenerator
from repro.scenarios import PaperScenario, get_scenario
from repro.scenarios.registry import _REGISTRY as _SCENARIO_REGISTRY
from repro.tezos.workload import TezosWorkloadGenerator
from repro.xrp.workload import XrpWorkloadGenerator

#: Cache layout version; bump when the payload or meta schema changes.
CACHE_VERSION = 1


@dataclass
class Dataset:
    """A ready-to-analyse dataset: the frame plus its analysis companions."""

    scenario: PaperScenario
    frame: TxFrame
    oracle: ExchangeRateOracle
    clusterer: object
    from_cache: bool
    build_seconds: float


def generate_dataset(scenario: PaperScenario) -> Tuple[TxFrame, ExchangeRateOracle, AccountClusterer]:
    """Stream all three workloads into one frame; derive oracle + clusters."""
    generators = {
        "eos": EosWorkloadGenerator(scenario.eos),
        "tezos": TezosWorkloadGenerator(scenario.tezos),
        "xrp": XrpWorkloadGenerator(scenario.xrp),
    }
    frame = TxFrame()
    for generator in generators.values():
        frame.extend(generator.stream_records())
    xrp_ledger = generators["xrp"].ledger
    oracle = ExchangeRateOracle.from_orderbook(xrp_ledger.orderbook)
    clusterer = AccountClusterer(xrp_ledger.accounts)
    return frame, oracle, clusterer


def _xrp_addresses(frame: TxFrame) -> List[str]:
    """Every address appearing as sender or receiver on an XRP row."""
    view = frame.chain_view(ChainId.XRP)
    senders = frame.sender_code
    receivers = frame.receiver_code
    codes = set()
    for row in view.rows:
        codes.add(senders[row])
        codes.add(receivers[row])
    values = frame.accounts.values
    return [values[code] for code in sorted(codes)]


def _cache_directory(cache_root: str, scale: str, seed: int) -> str:
    return os.path.join(cache_root, f"{scale}-seed{seed}")


def load_or_generate(
    scale: str, seed: int, cache_root: Optional[str] = None
) -> Dataset:
    """Build the dataset for a registered scenario, cache-aware.

    With ``cache_root`` set, the first build persists the frame (FrameStore
    chunks) and its analysis companions (``meta.json``); later calls with
    the same scale + seed rehydrate from disk and skip generation.
    """
    scenario = get_scenario(scale, seed=seed)
    directory = meta_path = None
    if cache_root:
        directory = _cache_directory(cache_root, scale, seed)
        meta_path = os.path.join(directory, "meta.json")
        if os.path.exists(meta_path):
            started = time.perf_counter()
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if meta.get("version") == CACHE_VERSION:
                frame = FrameStore.open(directory).to_frame()
                # Guard against a corrupted cache (e.g. stale chunk files):
                # a row-count mismatch falls through to regeneration.
                if len(frame) == meta.get("rows"):
                    oracle = ExchangeRateOracle(
                        {
                            (currency, issuer): rate
                            for currency, issuer, rate in meta["oracle_rates"]
                        }
                    )
                    clusterer = StaticAccountClusterer(meta["clusters"])
                    return Dataset(
                        scenario=scenario,
                        frame=frame,
                        oracle=oracle,
                        clusterer=clusterer,
                        from_cache=True,
                        build_seconds=time.perf_counter() - started,
                    )
    started = time.perf_counter()
    frame, oracle, clusterer = generate_dataset(scenario)
    elapsed = time.perf_counter() - started
    if directory is not None:
        # Clear any stale chunks before rewriting: FrameStore.open globs
        # every frame-chunk-*.json.gz, so leftovers from a previous layout
        # would silently append rows to later rehydrations.
        if os.path.isdir(directory):
            for stale in glob.glob(os.path.join(directory, "frame-chunk-*.json.gz")):
                os.remove(stale)
        store = FrameStore(directory=directory)
        store.add_frame(frame)
        static = StaticAccountClusterer.from_clusterer(
            clusterer, _xrp_addresses(frame)
        )
        meta = {
            "version": CACHE_VERSION,
            "scenario": scale,
            "seed": seed,
            "rows": len(frame),
            "oracle_rates": [
                [currency, issuer, oracle.rate(currency, issuer)]
                for currency, issuer in oracle.known_assets()
            ],
            "clusters": static.to_mapping(),
        }
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
    return Dataset(
        scenario=scenario,
        frame=frame,
        oracle=oracle,
        clusterer=clusterer,
        from_cache=False,
        build_seconds=elapsed,
    )


def _run_report(dataset: Dataset, workers: int, shards: Optional[int]) -> FullReport:
    if workers > 1:
        return parallel_full_report(
            dataset.frame,
            oracle=dataset.oracle,
            clusterer=dataset.clusterer,
            workers=workers,
            shards=shards,
        )
    return full_report(
        dataset.frame, oracle=dataset.oracle, clusterer=dataset.clusterer
    )


def _report_to_dict(report: FullReport) -> Dict[str, object]:
    payload: Dict[str, object] = {}
    for chain, figures in report.chains.items():
        entry: Dict[str, object] = figures.to_summary().to_dict()
        entry["type_distribution"] = [
            {
                "group": row.group,
                "type": row.type_name,
                "count": row.count,
                "share": round(row.share, 6),
            }
            for row in figures.type_rows
        ]
        entry["throughput_bins"] = figures.throughput.bin_count
        if figures.decomposition is not None:
            decomposition = figures.decomposition
            entry["decomposition"] = {
                "total": decomposition.total,
                "failed": decomposition.failed,
                "payments_with_value": decomposition.payments_with_value,
                "offers_exchanged": decomposition.offers_exchanged,
                "economic_value_share": round(
                    decomposition.economic_value_share, 6
                ),
            }
        if figures.wash_trading is not None and figures.wash_trading.trade_count:
            wash = figures.wash_trading
            entry["wash_trading"] = {
                "trade_count": wash.trade_count,
                "top_accounts_trade_share": round(wash.top_accounts_trade_share, 6),
                "self_trade_share_overall": round(wash.self_trade_share_overall, 6),
            }
        payload[chain.value] = entry
    return payload


def _print_report(report: FullReport, out) -> None:
    for chain, figures in report.chains.items():
        print(
            f"\n[{chain.value.upper()}]  {figures.stats.action_count:,} rows, "
            f"{figures.tps:.3f} TPS, {figures.throughput.bin_count} throughput bins",
            file=out,
        )
        for row in figures.type_rows[:4]:
            print(
                f"    {row.group:18s} {row.type_name:22s} {row.share:6.1%}",
                file=out,
            )
        if figures.wash_trading is not None and figures.wash_trading.trade_count:
            wash = figures.wash_trading
            print(
                f"    wash trading: top-5 involved in "
                f"{wash.top_accounts_trade_share:.0%} of {wash.trade_count} trades",
                file=out,
            )
        if figures.decomposition is not None:
            print(
                f"    economic value share: "
                f"{figures.decomposition.economic_value_share:.2%} (paper: ~2.3%)",
                file=out,
            )
    print("\n" + report.summary().format_text(), file=out)


# -- commands --------------------------------------------------------------------------
def cmd_list(args: argparse.Namespace, out) -> int:
    print("Registered scenarios:", file=out)
    for name in sorted(_SCENARIO_REGISTRY):
        factory = _SCENARIO_REGISTRY[name]
        doc = (factory.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:14s} {summary}", file=out)
    return 0


def cmd_scenario(args: argparse.Namespace, out) -> int:
    scenario = get_scenario(args.name, seed=args.seed)
    print(f"Scenario {args.name!r} (instantiated as {scenario.name!r}):", file=out)
    for label, config in (
        ("eos", scenario.eos),
        ("tezos", scenario.tezos),
        ("xrp", scenario.xrp),
    ):
        print(f"  [{label}]", file=out)
        for field_name, value in sorted(vars(config).items()):
            print(f"    {field_name} = {value!r}", file=out)
    print("  scale factors (fraction of the paper's real daily volume):", file=out)
    for chain, factor in scenario.scale_factors.items():
        print(f"    {chain:6s} {factor:.6f}", file=out)
    return 0


def cmd_report(args: argparse.Namespace, out) -> int:
    # In JSON mode only the payload goes to ``out`` (pipe-friendly); the
    # progress lines move to stderr.
    info = sys.stderr if args.json else out
    dataset = load_or_generate(args.scale, args.seed, cache_root=args.cache)
    source = "cache" if dataset.from_cache else "generated"
    print(
        f"Dataset {args.scale!r} seed {args.seed}: {len(dataset.frame):,} rows "
        f"({source} in {dataset.build_seconds:.2f}s)",
        file=info,
    )
    started = time.perf_counter()
    report = _run_report(dataset, args.workers, args.shards)
    elapsed = time.perf_counter() - started
    engine = (
        f"parallel engine ({args.workers} workers)"
        if args.workers > 1
        else "serial single-pass engine"
    )
    print(f"Report computed by the {engine} in {elapsed:.2f}s", file=info)
    if args.json:
        print(json.dumps(_report_to_dict(report), indent=2, sort_keys=True), file=out)
    else:
        _print_report(report, out)
    return 0


def cmd_bench(args: argparse.Namespace, out) -> int:
    dataset = load_or_generate(args.scale, args.seed, cache_root=args.cache)
    # An explicit --workers is honoured (1 measures the in-process sharded
    # path); only the unset default (0) falls back to one per core.
    workers = args.workers if args.workers >= 1 else default_workers()
    print(
        f"Benchmarking {args.scale!r} ({len(dataset.frame):,} rows): "
        f"serial vs {workers} workers",
        file=out,
    )
    serial_best = parallel_best = float("inf")
    for _ in range(args.repeat):
        started = time.perf_counter()
        full_report(dataset.frame, oracle=dataset.oracle, clusterer=dataset.clusterer)
        serial_best = min(serial_best, time.perf_counter() - started)
        started = time.perf_counter()
        parallel_full_report(
            dataset.frame,
            oracle=dataset.oracle,
            clusterer=dataset.clusterer,
            workers=workers,
            shards=args.shards,
        )
        parallel_best = min(parallel_best, time.perf_counter() - started)
    speedup = serial_best / parallel_best if parallel_best else float("inf")
    print(
        f"serial {serial_best:.3f}s | parallel {parallel_best:.3f}s | "
        f"speedup {speedup:.2f}x on {os.cpu_count()} cores",
        file=out,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'Revisiting Transactional Statistics of "
            "High-scalability Blockchains' (IMC 2020)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered scenarios")

    scenario = commands.add_parser(
        "scenario", help="show one scenario's configuration and scale factors"
    )
    scenario.add_argument("name", help="registered scenario name")
    scenario.add_argument("--seed", type=int, default=7)

    def dataset_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            default="small",
            help="registered scenario name (default: small)",
        )
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument(
            "--cache",
            default=None,
            metavar="DIR",
            help="dataset cache root; repeat runs skip workload generation",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=0,
            help="worker processes (0/1 = serial engine; default 0)",
        )
        sub.add_argument(
            "--shards",
            type=int,
            default=None,
            help="shards per chain (default: one per worker)",
        )

    report = commands.add_parser(
        "report", help="generate (or load) a dataset and print the paper report"
    )
    dataset_flags(report)
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    bench = commands.add_parser(
        "bench", help="time the serial engine against the parallel engine"
    )
    dataset_flags(bench)
    bench.add_argument("--repeat", type=int, default=3, help="timed rounds (best-of)")

    return parser


_COMMANDS = {
    "list": cmd_list,
    "scenario": cmd_scenario,
    "report": cmd_report,
    "bench": cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
