"""Data collection: endpoint selection, crawling, storage, characterisation.

This package reproduces §3.1 of the paper: connect to each chain's RPC
endpoints, crawl blocks in reverse chronological order from the head down to
the start of the observation window, store the raw blocks gzip-compressed,
and characterise the resulting dataset (Figure 2).
"""

from repro.collection.crawler import BlockCrawler, CrawlReport
from repro.collection.dataset import DatasetCharacterization, characterize_dataset
from repro.collection.endpoints import EndpointPool, shortlist_endpoints
from repro.collection.store import BlockStore, FrameStore

__all__ = [
    "BlockCrawler",
    "BlockStore",
    "CrawlReport",
    "DatasetCharacterization",
    "EndpointPool",
    "FrameStore",
    "characterize_dataset",
    "shortlist_endpoints",
]
