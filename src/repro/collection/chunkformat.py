"""Version-2 binary columnar chunk format for the frame store.

Version 1 chunks are gzip-compressed JSON: portable, but every decode pays
``json.loads`` over hundreds of thousands of number literals and then a
per-column rebuild into ``array`` buffers — which, since the out-of-core
engine re-reads chunks in every worker for every task, had become the
dominant cost of a chunk-range scan.  Version 2 stores what the analysis
substrate actually wants:

* numeric columns as **raw machine-byte blobs** in the frame's own
  ``array`` typecodes (:data:`repro.common.columns.NUMERIC_TYPECODES`), so
  decode is one ``frombuffer``/``frombytes`` per column instead of one
  Python object per element;
* transaction ids and string pools **packed** with
  :func:`repro.common.statecodec.pack_strings` (one NUL-joined UTF-8 blob
  per column);
* the whole chunk body framed by :mod:`repro.common.statecodec` — the
  closed data-only codec already trusted for checkpoints — behind a small
  header: format magic + version byte, then an adler32 checksum of the
  body, verified **before** any decoding happens.

Per-column zlib is optional and size-gated: a column blob is stored
compressed only when compression actually shrinks it (random ids and
near-random amounts often don't benefit; code columns and heights do).
The flag is per segment, so mixed chunks stay cheap to decode.

Corruption — a flipped bit, a truncated file, a foreign blob — surfaces as
:class:`ChunkFormatError` (a :class:`~repro.common.errors.CollectionError`),
mirroring how a corrupt checkpoint degrades to "no usable snapshot" instead
of crashing or silently mis-decoding.

The decoded payload has the same shape :meth:`TxFrame.to_payload` produces
(``columns`` / ``transaction_id`` / ``metadata`` / ``pools``), so every
existing consumer — bulk load, payload extend, the resident-frame tail
slice, out-of-core workers — works unchanged.  Under the numpy kernel
backend the numeric columns come back as **zero-copy read-only ndarrays**
wrapping the decoded bytes (one ``np.frombuffer`` per column); under the
pure-python backend they come back as ``array.array`` via one C-level
``frombytes`` each.  Per-row ``metadata`` dicts are stored as one zlib'd
JSON sub-blob and decode to a :class:`~repro.common.columns.LazyMetadata`
block: the parse is deferred until a consumer reads the column, so purely
numeric scans never pay it.  The payload additionally carries the chunk's
header stats (``rows``, per-chain heights/times/row counts) so metadata
backfills never need to iterate rows.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.common import kernels
from repro.common import statecodec
from repro.common.columns import NUMERIC_TYPECODES, LazyMetadata
from repro.common.errors import CollectionError

__all__ = [
    "ChunkFormatError",
    "MAGIC",
    "decode_chunk",
    "encode_chunk",
    "is_v2_chunk",
]


class ChunkFormatError(CollectionError):
    """A v2 chunk blob cannot be decoded (corrupt, truncated, or foreign)."""


#: Format magic; the trailing byte is the chunk-format version.
MAGIC = b"RFC\x02"

_CHECKSUM = struct.Struct("<I")

#: Header length: magic + adler32 of everything after it.
_HEADER_LEN = len(MAGIC) + _CHECKSUM.size

#: Blobs shorter than this are never worth a zlib attempt.
_MIN_COMPRESS_BYTES = 64

#: Fixed zlib level — per-chunk determinism (sharded generation relies on
#: equal payloads encoding to equal bytes) forbids anything adaptive.
_ZLIB_LEVEL = 6

_LITTLE = "<"
_BIG = ">"


def is_v2_chunk(blob: bytes) -> bool:
    """Whether ``blob`` carries the v2 chunk magic (cheap dispatch test)."""
    return blob[: len(MAGIC)] == MAGIC


def _pack_blob(raw: bytes) -> Tuple[int, bytes]:
    """``(compressed_flag, stored_bytes)`` — zlib only when it shrinks."""
    if len(raw) >= _MIN_COMPRESS_BYTES:
        packed = zlib.compress(raw, _ZLIB_LEVEL)
        if len(packed) < len(raw):
            return 1, packed
    return 0, raw


def _unpack_blob(flag: Any, raw_len: Any, stored: Any, what: str) -> bytes:
    if not isinstance(stored, bytes) or not isinstance(raw_len, int):
        raise ChunkFormatError(f"chunk {what} segment is malformed")
    if flag:
        try:
            stored = zlib.decompress(stored)
        except zlib.error as error:
            raise ChunkFormatError(
                f"chunk {what} segment fails decompression: {error}"
            ) from None
    if len(stored) != raw_len:
        raise ChunkFormatError(
            f"chunk {what} segment is torn "
            f"({len(stored)} bytes on disk, {raw_len} recorded)"
        )
    return stored


def _column_raw_bytes(data: Any, typecode: str) -> bytes:
    """A payload column as raw machine bytes in the frame's typecode."""
    if isinstance(data, array):
        if data.typecode == typecode:
            return data.tobytes()
        return array(typecode, data).tobytes()
    np = kernels.numpy_module()
    if np is not None and isinstance(data, np.ndarray):
        return data.astype(np.dtype(typecode), copy=False).tobytes()
    return array(typecode, data).tobytes()


def _pack_metadata(metadata: Any) -> Dict[str, Any]:
    """Pack the per-row metadata list as one zlib'd JSON sub-blob.

    Metadata dicts are free-form (JSON-able by the record contract), so a
    per-element binary encoding buys nothing and costs a Python-level
    decode per row.  One C-level ``json.dumps``/``json.loads`` over the
    whole column — with empty dicts stored as ``null`` — is both smaller
    after zlib and an order of magnitude faster to decode.
    """
    raw = json.dumps(
        [meta if meta else None for meta in metadata],
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    flag, stored = _pack_blob(raw)
    return {"z": flag, "r": len(raw), "blob": stored}


def _unpack_metadata(segment: Any, rows: int) -> List[Optional[Dict[str, Any]]]:
    raw = _unpack_blob(segment.get("z"), segment.get("r"), segment.get("blob"), "metadata")
    try:
        items = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ChunkFormatError(f"chunk metadata segment is malformed: {error}") from None
    if not isinstance(items, list) or len(items) != rows:
        raise ChunkFormatError("chunk metadata segment is inconsistent")
    return items


def _lazy_metadata(segment: Any, rows: int) -> LazyMetadata:
    """A :class:`LazyMetadata` block over a chunk's metadata segment.

    Structural validation is eager (so a foreign document fails at decode
    time); the zlib + JSON work is deferred to first access — the chunk
    checksum has already vouched for the bytes, so scans that never read
    metadata skip what is otherwise the dominant decode cost.
    """
    if not isinstance(segment, dict) or not isinstance(segment.get("blob"), bytes):
        raise ChunkFormatError("chunk metadata segment is malformed")
    return LazyMetadata(rows, lambda: _unpack_metadata(segment, rows))


def _pack_text(values: Any) -> Tuple[Dict[str, Any], int]:
    """Pack a string column; returns ``(segment, raw_byte_count)``.

    ``None`` entries are legal — the pools intern optional fields such as
    ``error_code`` and ``contract`` verbatim — and are recorded as a
    position index beside the packed blob (the blob itself stores ``""``
    at those positions).
    """
    items = values if isinstance(values, list) else list(values)
    nulls = array("q", (i for i, value in enumerate(items) if value is None))
    if len(nulls):
        items = ["" if value is None else value for value in items]
    packed = statecodec.pack_strings(items)
    raw = packed["blob"]
    flag, stored = _pack_blob(raw)
    segment: Dict[str, Any] = {"n": packed["n"], "z": flag, "r": len(raw), "blob": stored}
    lengths = packed.get("lengths")
    if lengths is not None:
        segment["lengths"] = lengths
    if len(nulls):
        segment["nulls"] = nulls
    return segment, len(raw)


def _unpack_text(segment: Any, what: str) -> List[Optional[str]]:
    if not isinstance(segment, dict):
        raise ChunkFormatError(f"chunk {what} segment is malformed")
    blob = _unpack_blob(segment.get("z"), segment.get("r"), segment.get("blob"), what)
    payload = {"n": segment.get("n"), "blob": blob}
    if "lengths" in segment:
        payload["lengths"] = segment["lengths"]
    try:
        items: List[Optional[str]] = statecodec.unpack_strings(payload)
    except statecodec.CodecError as error:
        raise ChunkFormatError(f"chunk {what} segment is malformed: {error}") from None
    nulls = segment.get("nulls")
    if nulls is not None:
        try:
            for index in nulls:
                items[index] = None
        except (IndexError, TypeError) as error:
            raise ChunkFormatError(
                f"chunk {what} null index is malformed: {error!r}"
            ) from None
    return items


def encode_chunk(
    payload: Dict[str, Any],
    chain_stats: Optional[Tuple[Dict, Dict, Dict]] = None,
) -> Tuple[bytes, int]:
    """Encode one columnar payload as a v2 chunk blob.

    ``payload`` is :meth:`TxFrame.to_payload` output (``arrays=True`` gives
    the cheapest encode; list columns are converted).  ``chain_stats`` is
    the ``(heights, times, chain_rows)`` triple the store computes per
    chunk; embedding it lets metadata backfills decode the header instead
    of iterating rows.

    Returns ``(blob, raw_bytes)`` where ``raw_bytes`` is the body size with
    every per-segment compression undone — the uncompressed footprint the
    store's byte accounting reports, computed from the blob lengths already
    in hand rather than by a second serialisation.
    """
    columns_doc: Dict[str, Any] = {}
    for name, typecode in NUMERIC_TYPECODES.items():
        raw = _column_raw_bytes(payload["columns"][name], typecode)
        flag, stored = _pack_blob(raw)
        columns_doc[name] = [typecode, flag, len(raw), stored]
    ids_doc, _ = _pack_text(payload["transaction_id"])
    pools_doc: Dict[str, Any] = {}
    for name, values in payload["pools"].items():
        pools_doc[name], _ = _pack_text(values)
    meta_doc = _pack_metadata(payload["metadata"])
    heights, times, chain_rows = chain_stats if chain_stats else ({}, {}, {})
    doc = {
        "order": _LITTLE if sys.byteorder == "little" else _BIG,
        "rows": len(payload["transaction_id"]),
        "heights": heights,
        "times": times,
        "chain_rows": chain_rows,
        "columns": columns_doc,
        "ids": ids_doc,
        "meta": meta_doc,
        "pools": pools_doc,
    }
    body = statecodec.encode(doc)
    saved = 0
    for typecode, flag, raw_len, stored in columns_doc.values():
        if flag:
            saved += raw_len - len(stored)
    for segment in [ids_doc, meta_doc] + list(pools_doc.values()):
        if segment["z"]:
            saved += segment["r"] - len(segment["blob"])
    blob = MAGIC + _CHECKSUM.pack(zlib.adler32(body) & 0xFFFFFFFF) + body
    return blob, len(body) + saved


def _decode_column(entry: Any, name: str, swap: bool):
    if not (isinstance(entry, list) and len(entry) == 4):
        raise ChunkFormatError(f"chunk column {name!r} is malformed")
    typecode, flag, raw_len, stored = entry
    if typecode != NUMERIC_TYPECODES.get(name):
        raise ChunkFormatError(
            f"chunk column {name!r} has unexpected typecode {typecode!r}"
        )
    raw = _unpack_blob(flag, raw_len, stored, f"column {name!r}")
    if swap:
        column = array(typecode)
        try:
            column.frombytes(raw)
        except ValueError as error:
            raise ChunkFormatError(
                f"chunk column {name!r} has a torn payload: {error}"
            ) from None
        column.byteswap()
        return column
    np = kernels.numpy_module()
    if kernels.use_numpy() and np is not None:
        dtype = np.dtype(typecode)
        if len(raw) % dtype.itemsize:
            raise ChunkFormatError(
                f"chunk column {name!r} has a torn payload "
                f"({len(raw)} bytes, itemsize {dtype.itemsize})"
            )
        # Zero-copy: the ndarray aliases the decoded bytes (read-only).
        return np.frombuffer(raw, dtype=dtype)
    column = array(typecode)
    try:
        column.frombytes(raw)
    except ValueError as error:
        raise ChunkFormatError(
            f"chunk column {name!r} has a torn payload: {error}"
        ) from None
    return column


def decode_chunk(blob: bytes) -> Dict[str, Any]:
    """Decode a v2 chunk blob back into a columnar payload.

    The adler32 checksum is verified over the whole body before any
    structural decoding; any mismatch, truncation or malformed segment
    raises :class:`ChunkFormatError`.  The returned payload carries the
    standard ``columns`` / ``transaction_id`` / ``metadata`` / ``pools``
    keys plus the header's ``rows`` count and ``chain_stats`` triple.
    ``metadata`` comes back as a :class:`~repro.common.columns.LazyMetadata`
    block — the JSON parse of the per-row dicts (the dominant decode cost
    on metadata-heavy workloads) is deferred until a consumer actually
    reads the column.
    """
    if len(blob) < _HEADER_LEN or not is_v2_chunk(blob):
        raise ChunkFormatError("chunk blob has no v2 header")
    (checksum,) = _CHECKSUM.unpack_from(blob, len(MAGIC))
    body = blob[_HEADER_LEN:]
    if zlib.adler32(body) & 0xFFFFFFFF != checksum:
        raise ChunkFormatError("chunk blob fails its checksum (corrupt or torn)")
    try:
        doc = statecodec.decode(body)
    except statecodec.CodecError as error:
        raise ChunkFormatError(f"chunk body is malformed: {error}") from None
    if not isinstance(doc, dict):
        raise ChunkFormatError("chunk body is not a column document")
    try:
        order = doc["order"]
        rows = doc["rows"]
        columns_doc = doc["columns"]
        ids_doc = doc["ids"]
        meta_doc = doc["meta"]
        pools_doc = doc["pools"]
    except KeyError as error:
        raise ChunkFormatError(f"chunk body is missing segment {error}") from None
    if order not in (_LITTLE, _BIG) or not isinstance(rows, int):
        raise ChunkFormatError("chunk header is malformed")
    if not isinstance(columns_doc, dict) or set(columns_doc) != set(NUMERIC_TYPECODES):
        raise ChunkFormatError("chunk body has an unexpected column set")
    if not isinstance(pools_doc, dict):
        raise ChunkFormatError("chunk body is malformed")
    native = _LITTLE if sys.byteorder == "little" else _BIG
    swap = order != native
    columns = {
        name: _decode_column(columns_doc[name], name, swap)
        for name in NUMERIC_TYPECODES
    }
    transaction_ids = _unpack_text(ids_doc, "transaction ids")
    metadata = _lazy_metadata(meta_doc, rows)
    pools = {name: _unpack_text(segment, f"pool {name!r}") for name, segment in pools_doc.items()}
    if len(transaction_ids) != rows or any(
        len(column) != rows for column in columns.values()
    ):
        raise ChunkFormatError(
            f"chunk body is inconsistent (header says {rows} rows)"
        )
    return {
        "columns": columns,
        "transaction_id": transaction_ids,
        "metadata": metadata,
        "pools": pools,
        "rows": rows,
        "chain_stats": (
            doc.get("heights") or {},
            doc.get("times") or {},
            doc.get("chain_rows") or {},
        ),
    }
