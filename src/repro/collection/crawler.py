"""Reverse-chronological block crawler.

The paper collects each chain's data "in reverse chronological order,
starting from the most recent block" (§3.1) and walking backwards until the
start of the observation window.  The crawler reproduces that strategy on
top of an :class:`~repro.collection.endpoints.EndpointPool`: it asks the
pool's endpoints for the head height, then fetches blocks downwards,
rotating endpoints, honouring rate limits with exponential backoff, retrying
transient failures, and checkpointing progress so an interrupted crawl can
resume where it stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common import faults
from repro.common.clock import SimulationClock
from repro.common.errors import (
    BlockNotFound,
    CollectionError,
    RateLimitExceeded,
    RpcError,
)
from repro.common.records import BlockRecord
from repro.common.retry import BackoffPolicy, RetryBudget
from repro.collection.endpoints import BlockEndpoint, EndpointPool
from repro.collection.store import BlockStore


@dataclass
class CrawlReport:
    """Summary of one crawl run."""

    chain: str
    start_height: int
    end_height: int
    blocks_fetched: int
    transactions_fetched: int
    requests_issued: int
    retries: int
    rate_limit_hits: int
    failed_blocks: List[int] = field(default_factory=list)
    elapsed_virtual_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        """Whether every block in the requested range was fetched."""
        return not self.failed_blocks


@dataclass
class CrawlCheckpoint:
    """Resumable crawl state: position, endpoint-pool rotation, retry budget.

    ``next_height`` counts down towards ``lowest_target``.  Beyond the
    position, the checkpoint carries the endpoint pool's health counters and
    rotation cursor plus the retry budget already spent on the in-flight
    block, all continuously synced by the crawler.  A crawl resumed from a
    persisted checkpoint therefore keeps throttling endpoints demoted and
    does not grant the interrupted block a fresh retry budget — the endpoint
    that caused the interruption is not hammered again.

    Durability contract: ``next_height`` tracks the *fetched* frontier, and
    stores buffer fetched blocks until their next flush — so persist a
    checkpoint to disk only together with (or after) ``store.flush()``,
    or the buffered blocks are skipped on resume.  The incremental
    pipeline's tail crawls sidestep this entirely by resuming from the
    frame store's own committed height watermark instead of a persisted
    position (see :func:`repro.pipeline.live.tail_crawl`).
    """

    next_height: int
    lowest_target: int
    #: Per-endpoint ``[successes, failures, throttles]`` at checkpoint time.
    pool_health: Optional[Dict[str, List[int]]] = None
    #: The pool's round-robin cursor at checkpoint time.
    pool_cursor: int = 0
    #: Retry attempts already consumed on ``next_height`` when interrupted.
    inflight_attempts: int = 0

    @property
    def finished(self) -> bool:
        return self.next_height < self.lowest_target

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form for durable persistence."""
        return {
            "next_height": self.next_height,
            "lowest_target": self.lowest_target,
            "pool_health": self.pool_health,
            "pool_cursor": self.pool_cursor,
            "inflight_attempts": self.inflight_attempts,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CrawlCheckpoint":
        return cls(
            next_height=int(payload["next_height"]),
            lowest_target=int(payload["lowest_target"]),
            pool_health=payload.get("pool_health"),
            pool_cursor=int(payload.get("pool_cursor", 0)),
            inflight_attempts=int(payload.get("inflight_attempts", 0)),
        )


class BlockCrawler:
    """Crawls a block range in reverse chronological order into a store."""

    def __init__(
        self,
        pool: EndpointPool,
        store: Optional[BlockStore] = None,
        backoff: Optional[BackoffPolicy] = None,
        max_attempts_per_block: int = 5,
        clock: Optional[SimulationClock] = None,
    ) -> None:
        self.pool = pool
        # ``is None`` rather than ``or``: an empty store is falsy but must be
        # shared with the caller so it can read what the crawl fetched.
        self.store = store if store is not None else BlockStore()
        self.backoff = backoff or BackoffPolicy(base_delay=0.2, multiplier=2.0, max_delay=10.0)
        self.max_attempts_per_block = max_attempts_per_block
        self.clock = clock or SimulationClock(0.0)
        self.requests_issued = 0
        self.retries = 0
        self.rate_limit_hits = 0

    # -- head discovery ---------------------------------------------------------------
    def discover_head(self) -> int:
        """Ask the pool for the current head height (first healthy answer wins)."""
        last_error: Optional[Exception] = None
        for _ in range(len(self.pool)):
            endpoint = self.pool.next_endpoint(now=self.clock.now)
            try:
                self.requests_issued += 1
                faults.raise_endpoint_fault("crawler.head", now=self.clock.now)
                height = endpoint.head_height(self.clock.now)
                self.pool.record_success(endpoint)
                return height
            except RpcError as exc:
                last_error = exc
                if isinstance(exc, RateLimitExceeded):
                    self.pool.record_throttle(
                        endpoint, retry_after=exc.retry_after, now=self.clock.now
                    )
                else:
                    self.pool.record_failure(endpoint)
                self.clock.advance(endpoint.latency())
        raise CollectionError(f"could not discover head height: {last_error}")

    # -- single block fetch --------------------------------------------------------------
    def _sync_checkpoint(
        self, checkpoint: Optional[CrawlCheckpoint], inflight_attempts: int
    ) -> None:
        """Mirror the pool's rotation state into the checkpoint."""
        if checkpoint is None:
            return
        snapshot = self.pool.snapshot()
        checkpoint.pool_health = snapshot["health"]
        checkpoint.pool_cursor = snapshot["cursor"]
        checkpoint.inflight_attempts = inflight_attempts

    def fetch_block(
        self,
        height: int,
        attempts_used: int = 0,
        checkpoint: Optional[CrawlCheckpoint] = None,
    ) -> BlockRecord:
        """Fetch one block, rotating endpoints and backing off on throttling.

        ``attempts_used`` pre-spends part of the retry budget — a resumed
        crawl passes the interrupted block's consumed attempts so the block
        is not granted a fresh budget against the endpoints that already
        failed it.  With a ``checkpoint`` given, the pool state and the
        spent budget are synced into it after every failed attempt, keeping
        the checkpoint resumable at any interruption point.
        """
        budget = RetryBudget(
            max_attempts=self.max_attempts_per_block,
            attempts_used=min(attempts_used, self.max_attempts_per_block),
        )
        last_error: Optional[Exception] = None
        while not budget.exhausted:
            attempt = budget.consume()
            endpoint = self.pool.next_endpoint(now=self.clock.now)
            try:
                self.requests_issued += 1
                faults.raise_endpoint_fault("crawler.fetch", now=self.clock.now)
                block = endpoint.fetch_block(height, self.clock.now)
                self.pool.record_success(endpoint)
                self.clock.advance(endpoint.latency())
                return block
            except RateLimitExceeded as exc:
                self.rate_limit_hits += 1
                self.retries += 1
                self.pool.record_throttle(
                    endpoint, retry_after=exc.retry_after, now=self.clock.now
                )
                self._sync_checkpoint(checkpoint, budget.attempts_used)
                delay = max(self.backoff.delay(attempt), exc.retry_after)
                self.clock.advance(delay)
                last_error = exc
            except BlockNotFound as exc:
                # The block genuinely is not served by this node; try another
                # endpoint without burning backoff time.
                self.pool.record_failure(endpoint)
                self._sync_checkpoint(checkpoint, budget.attempts_used)
                last_error = exc
            except RpcError as exc:
                self.retries += 1
                self.pool.record_failure(endpoint)
                self._sync_checkpoint(checkpoint, budget.attempts_used)
                self.clock.advance(self.backoff.delay(attempt))
                last_error = exc
        raise CollectionError(f"giving up on block {height}: {last_error}")

    # -- full crawl -------------------------------------------------------------------------
    def crawl_range(
        self,
        highest: int,
        lowest: int,
        checkpoint: Optional[CrawlCheckpoint] = None,
    ) -> CrawlReport:
        """Fetch blocks from ``highest`` down to ``lowest`` (both inclusive)."""
        if lowest > highest:
            raise CollectionError("lowest height must not exceed highest height")
        chain = self.pool.endpoints[0].chain_name if self.pool.endpoints else "unknown"
        position = checkpoint or CrawlCheckpoint(next_height=highest, lowest_target=lowest)
        if position.pool_health is not None:
            # Resume with the interrupted crawl's endpoint weighting, so the
            # endpoint that caused the interruption stays demoted.
            self.pool.restore(position.pool_health, position.pool_cursor)
        resume_attempts = position.inflight_attempts
        started_at = self.clock.now
        failed: List[int] = []
        while not position.finished:
            height = position.next_height
            if height in self.store:
                position.next_height -= 1
                resume_attempts = 0
                continue
            try:
                block = self.fetch_block(
                    height, attempts_used=resume_attempts, checkpoint=position
                )
                self.store.add(block)
            except CollectionError:
                failed.append(height)
            resume_attempts = 0
            position.next_height -= 1
            self._sync_checkpoint(position, 0)
        self.store.flush()
        return CrawlReport(
            chain=chain,
            start_height=highest,
            end_height=lowest,
            blocks_fetched=self.store.block_count,
            transactions_fetched=self.store.transaction_count,
            requests_issued=self.requests_issued,
            retries=self.retries,
            rate_limit_hits=self.rate_limit_hits,
            failed_blocks=failed,
            elapsed_virtual_seconds=self.clock.now - started_at,
        )

    def crawl_window(self, window_start_timestamp: float) -> CrawlReport:
        """Crawl from the head down to the first block before ``window_start``.

        This is the paper's actual strategy: the crawl stops once blocks
        older than the observation window start are reached.
        """
        head = self.discover_head()
        chain = self.pool.endpoints[0].chain_name if self.pool.endpoints else "unknown"
        started_at = self.clock.now
        failed: List[int] = []
        height = head
        while height >= 0:
            if height in self.store:
                height -= 1
                continue
            try:
                block = self.fetch_block(height)
            except CollectionError:
                failed.append(height)
                height -= 1
                continue
            if block.timestamp < window_start_timestamp:
                break
            self.store.add(block)
            height -= 1
        self.store.flush()
        return CrawlReport(
            chain=chain,
            start_height=head,
            end_height=height + 1,
            blocks_fetched=self.store.block_count,
            transactions_fetched=self.store.transaction_count,
            requests_issued=self.requests_issued,
            retries=self.retries,
            rate_limit_hits=self.rate_limit_hits,
            failed_blocks=failed,
            elapsed_virtual_seconds=self.clock.now - started_at,
        )
