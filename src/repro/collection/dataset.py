"""Dataset characterisation (Figure 2).

Figure 2 of the paper characterises each chain's dataset by its sample
period, block index range, block count, transaction count and gzip-compressed
storage footprint.  :func:`characterize_dataset` computes the same columns
from a crawled :class:`~repro.collection.store.BlockStore` **or** directly
from a columnar :class:`~repro.collection.store.FrameStore` (the ingestion
pipeline's native substrate — no block-record round-trip required), plus the
average transactions-per-second figure quoted in the introduction (20 TPS
for EOS, 0.08 TPS for Tezos, 19 TPS for XRP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.common.clock import date_from_timestamp
from repro.common.compression import estimate_storage_gb
from repro.common.errors import AnalysisError
from repro.common.records import ChainId
from repro.collection.store import BlockStore, FrameStore


@dataclass(frozen=True)
class DatasetCharacterization:
    """One row of Figure 2, plus derived rates."""

    chain: ChainId
    sample_start: str
    sample_end: str
    first_block: int
    last_block: int
    block_count: int
    transaction_count: int
    action_count: int
    compressed_gigabytes: float
    estimated_full_scale_gigabytes: float
    duration_seconds: float

    @property
    def transactions_per_second(self) -> float:
        """Average TPS over the sample period (the paper's headline metric)."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.transaction_count / self.duration_seconds

    @property
    def blocks_per_day(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.block_count * 86_400.0 / self.duration_seconds

    def to_row(self) -> Dict[str, object]:
        """Render as a flat dictionary, one Figure 2 table row."""
        return {
            "chain": self.chain.value,
            "sample_start": self.sample_start,
            "sample_end": self.sample_end,
            "first_block": self.first_block,
            "last_block": self.last_block,
            "block_count": self.block_count,
            "transaction_count": self.transaction_count,
            "action_count": self.action_count,
            "storage_gb": round(self.compressed_gigabytes, 6),
            "estimated_full_scale_gb": round(self.estimated_full_scale_gigabytes, 6),
            "tps": round(self.transactions_per_second, 4),
        }


def characterize_dataset(
    store: Union[BlockStore, FrameStore],
    scale_factor: float = 1.0,
    chain: Optional[ChainId] = None,
) -> DatasetCharacterization:
    """Summarise a crawled block or frame store as one Figure 2 row.

    ``scale_factor`` is the fraction of the paper's real traffic the workload
    was configured to generate; the full-scale storage estimate divides by it
    so the reproduced table remains comparable to the paper's numbers.

    A :class:`FrameStore` — the ingestion pipeline's native store — is
    characterised straight from its columns, without materialising a single
    block record.  Block statistics are derived from the rows, so only
    transaction-bearing blocks count: an empty block leaves no rows and is
    invisible here, whereas the :class:`BlockStore` path counts it — the
    two rows can therefore differ on ``block_count`` for sparse chains.
    Multi-chain frame stores need an explicit ``chain``; the storage
    columns then apportion the store's compressed footprint by the chain's
    share of rows (chunks mix chains, so exact per-chain bytes do not
    exist).
    """
    if isinstance(store, FrameStore):
        return _characterize_frame_store(store, scale_factor, chain)
    blocks = store.blocks()
    if not blocks:
        raise AnalysisError("cannot characterise an empty block store")
    if chain is None:
        chain = blocks[0].chain
    timestamps = [block.timestamp for block in blocks]
    heights = [block.height for block in blocks]
    stats = store.compression_stats()
    duration = max(timestamps) - min(timestamps)
    return DatasetCharacterization(
        chain=chain,
        sample_start=date_from_timestamp(min(timestamps)),
        sample_end=date_from_timestamp(max(timestamps)),
        first_block=min(heights),
        last_block=max(heights),
        block_count=store.block_count,
        transaction_count=store.transaction_count,
        action_count=store.action_count,
        compressed_gigabytes=stats.compressed_gigabytes,
        estimated_full_scale_gigabytes=estimate_storage_gb(stats, scale_factor),
        duration_seconds=duration,
    )


def _characterize_frame_store(
    store: FrameStore,
    scale_factor: float,
    chain: Optional[ChainId],
) -> DatasetCharacterization:
    """Figure 2 row computed from columnar rows (no record round-trip)."""
    from repro.common.compression import CompressionStats

    frame = store.to_frame()
    if not len(frame):
        raise AnalysisError("cannot characterise an empty frame store")
    chains = frame.chains()
    if chain is None:
        if len(chains) > 1:
            raise AnalysisError(
                "frame store holds several chains; pass the chain to characterise"
            )
        chain = chains[0]
    view = frame.chain_view(chain)
    if not len(view):
        raise AnalysisError(f"frame store holds no {chain.value} rows")
    bounds = frame.chain_bounds(chain)
    block_heights = frame.block_height
    transaction_ids = frame.transaction_id
    heights = set()
    transactions = set()
    for row in view.rows:
        heights.add(block_heights[row])
        transactions.add(transaction_ids[row])
    stats = store.compression_stats()
    share = len(view) / len(frame)
    chain_stats = CompressionStats(
        raw_bytes=int(stats.raw_bytes * share),
        compressed_bytes=int(stats.compressed_bytes * share),
        chunk_count=stats.chunk_count,
    )
    duration = bounds[1] - bounds[0]
    return DatasetCharacterization(
        chain=chain,
        sample_start=date_from_timestamp(bounds[0]),
        sample_end=date_from_timestamp(bounds[1]),
        first_block=min(heights),
        last_block=max(heights),
        block_count=len(heights),
        transaction_count=len(transactions),
        action_count=len(view),
        compressed_gigabytes=chain_stats.compressed_gigabytes,
        estimated_full_scale_gigabytes=estimate_storage_gb(chain_stats, scale_factor),
        duration_seconds=duration,
    )
