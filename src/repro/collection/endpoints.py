"""Endpoint shortlisting and rotation.

The paper's EOS crawl starts from 32 officially advertised public endpoints
and shortlists the 6 with "a generous rate limit with stable latency and
throughput" (§3.1).  :func:`shortlist_endpoints` reproduces that selection by
probing each endpoint; :class:`EndpointPool` then rotates between the
shortlisted endpoints during the crawl, demoting endpoints that throttle or
fail and promoting the healthiest ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

from repro.common.errors import CollectionError, RpcError


class BlockEndpoint(Protocol):
    """What the crawler needs from an endpoint, regardless of the chain."""

    chain_name: str

    @property
    def name(self) -> str:  # pragma: no cover - protocol signature
        ...

    def head_height(self, now: float) -> int:  # pragma: no cover
        ...

    def fetch_block(self, height: int, now: float):  # pragma: no cover
        ...

    def latency(self) -> float:  # pragma: no cover
        ...


@dataclass
class EndpointProbe:
    """Result of probing one endpoint during shortlisting."""

    endpoint: BlockEndpoint
    reachable: bool
    observed_latency: float
    successful_probes: int
    throttled_probes: int

    @property
    def score(self) -> float:
        """Higher is better: favour reachable, low-latency, unthrottled endpoints."""
        if not self.reachable or self.successful_probes == 0:
            return 0.0
        throttle_penalty = 1.0 + self.throttled_probes
        return self.successful_probes / (self.observed_latency * throttle_penalty + 1e-9)


def probe_endpoint(endpoint: BlockEndpoint, now: float, probes: int = 5) -> EndpointProbe:
    """Issue ``probes`` head requests against ``endpoint`` and measure them."""
    successes = 0
    throttled = 0
    total_latency = 0.0
    reachable = False
    clock = now
    for _ in range(probes):
        try:
            endpoint.head_height(clock)
            successes += 1
            reachable = True
        except RpcError as exc:
            if getattr(exc, "code", None) == 429:
                throttled += 1
                reachable = True
            # Unreachable endpoints simply accumulate no successes.
        latency = endpoint.latency()
        total_latency += latency
        clock += latency
    average_latency = total_latency / probes if probes else 0.0
    return EndpointProbe(
        endpoint=endpoint,
        reachable=reachable,
        observed_latency=average_latency,
        successful_probes=successes,
        throttled_probes=throttled,
    )


def shortlist_endpoints(
    endpoints: Sequence[BlockEndpoint],
    now: float,
    max_selected: int = 6,
    probes_per_endpoint: int = 5,
) -> List[BlockEndpoint]:
    """Probe all advertised endpoints and keep the ``max_selected`` best ones."""
    if not endpoints:
        raise CollectionError("no endpoints advertised for shortlisting")
    probed = [probe_endpoint(endpoint, now, probes_per_endpoint) for endpoint in endpoints]
    usable = [probe for probe in probed if probe.score > 0.0]
    if not usable:
        raise CollectionError("no usable endpoints: every probe failed")
    usable.sort(key=lambda probe: (-probe.score, probe.endpoint.name))
    return [probe.endpoint for probe in usable[:max_selected]]


@dataclass
class EndpointHealth:
    """Running health statistics for one pooled endpoint."""

    successes: int = 0
    failures: int = 0
    throttles: int = 0
    #: Simulated-time instant until which the endpoint's own ``Retry-After``
    #: hint asks not to be contacted.  Rotation honours it: a throttled
    #: endpoint is held out of selection until the hold expires instead of
    #: being re-selected on the very next rotation step.
    retry_after_until: float = 0.0

    @property
    def weight(self) -> float:
        """Selection weight: successes count for, failures/throttles against."""
        return max(0.1, 1.0 + self.successes * 0.01 - self.failures * 0.5 - self.throttles * 0.2)

    def held(self, now: Optional[float]) -> bool:
        """Whether a ``Retry-After`` hold is active at simulated time ``now``."""
        return now is not None and now < self.retry_after_until


class EndpointPool:
    """Rotates between shortlisted endpoints, avoiding unhealthy ones."""

    def __init__(self, endpoints: Sequence[BlockEndpoint]):
        if not endpoints:
            raise CollectionError("an endpoint pool needs at least one endpoint")
        self._endpoints: List[BlockEndpoint] = list(endpoints)
        self._health: Dict[str, EndpointHealth] = {
            endpoint.name: EndpointHealth() for endpoint in self._endpoints
        }
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._endpoints)

    @property
    def endpoints(self) -> List[BlockEndpoint]:
        return list(self._endpoints)

    def health(self, name: str) -> EndpointHealth:
        return self._health[name]

    def next_endpoint(self, now: Optional[float] = None) -> BlockEndpoint:
        """Pick the next endpoint, skipping over the least healthy ones.

        When ``now`` is given, endpoints inside an active ``Retry-After``
        hold (see :meth:`record_throttle`) are excluded from rotation; if
        every endpoint is held, the hold is ignored rather than stalling
        the crawl with no endpoint at all.
        """
        candidates = [
            endpoint
            for endpoint in self._endpoints
            if not self._health[endpoint.name].held(now)
        ] or self._endpoints
        ranked = sorted(
            candidates,
            key=lambda endpoint: -self._health[endpoint.name].weight,
        )
        # Round-robin over the endpoints whose health is close to the best
        # one, so a single endpoint is not hammered while unhealthy ones are
        # left alone until their peers degrade too.
        best_weight = self._health[ranked[0].name].weight
        usable = [
            endpoint
            for endpoint in ranked
            if self._health[endpoint.name].weight >= 0.5 * best_weight
        ] or ranked[:1]
        endpoint = usable[self._cursor % len(usable)]
        self._cursor += 1
        return endpoint

    def snapshot(self) -> Dict[str, object]:
        """JSON-compatible rotation state: per-endpoint health plus cursor.

        Persisted by the crawler checkpoint so a resumed crawl starts with
        the same endpoint weighting it died with — in particular, an
        endpoint that was throttling or failing when the crawl was
        interrupted stays demoted instead of being hammered again.
        """
        return {
            "cursor": self._cursor,
            "health": {
                name: [
                    health.successes,
                    health.failures,
                    health.throttles,
                    health.retry_after_until,
                ]
                for name, health in self._health.items()
            },
        }

    def restore(self, health: Dict[str, Sequence[float]], cursor: int = 0) -> None:
        """Apply a :meth:`snapshot`'s health counters and rotation cursor.

        Endpoints named in the snapshot but no longer pooled are ignored;
        endpoints new to the pool keep their fresh (healthy) state.
        Three-element health lists (snapshots from before ``Retry-After``
        holds were persisted) restore with no hold active.
        """
        for name, counts in health.items():
            state = self._health.get(name)
            if state is None:
                continue
            state.successes, state.failures, state.throttles = (
                int(counts[0]),
                int(counts[1]),
                int(counts[2]),
            )
            state.retry_after_until = float(counts[3]) if len(counts) > 3 else 0.0
        self._cursor = int(cursor)

    def record_success(self, endpoint: BlockEndpoint) -> None:
        self._health[endpoint.name].successes += 1

    def record_failure(self, endpoint: BlockEndpoint) -> None:
        self._health[endpoint.name].failures += 1

    def record_throttle(
        self,
        endpoint: BlockEndpoint,
        retry_after: float = 0.0,
        now: Optional[float] = None,
    ) -> None:
        """Record a throttle, optionally holding the endpoint out of rotation.

        With a positive ``retry_after`` hint and a current simulated time,
        the endpoint is excluded from :meth:`next_endpoint` until
        ``now + retry_after`` — honouring the hint at the *pool* level
        instead of only stretching the next backoff delay.
        """
        state = self._health[endpoint.name]
        state.throttles += 1
        if retry_after > 0.0 and now is not None:
            state.retry_after_until = max(state.retry_after_until, now + retry_after)
