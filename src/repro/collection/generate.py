"""Shard-parallel dataset generation: time-windowed workloads across processes.

Dataset generation is embarrassingly parallel *in time*: each chain's
observation window splits into whole-day sub-windows, and every
``(chain, window)`` pair becomes an independent generator run whose rows a
worker process streams straight into its own :class:`FrameStore` shard —
no generated row ever crosses a process boundary or sits in a parent-side
frame.  The parent then stitches the shard stores into one canonical store
with :meth:`FrameStore.assemble`, which moves chunk files and rewrites
pool deltas without decompressing anything.

Determinism is the load-bearing property.  Every window of a chain runs
the *same* workload seed, so the RNG-derived account universe (Tezos
implicit addresses, XRP activation addresses, EOS user names) is identical
across windows and the per-account aggregation figures keep their shapes.
What must *differ* per window is arranged explicitly:

* transaction/operation ids — each window starts its id counter at
  ``window_index * ID_STRIDE``, so concatenated shards never collide;
* block heights / levels / ledger indices — each window continues the
  previous one's range exactly (windows split on whole-day boundaries and
  blocks-per-day is an integer, so ``base + day_offset * blocks_per_day``
  is the precise continuation).  XRP additionally offsets by the window
  index because every window's bootstrap closes one rate-seeding ledger;
* absolute-dated events (the EIDOS launch, the XRP spam waves, the
  December Myrone trade) — configured as absolute dates, so they fire in
  whichever window covers them and in no other.

The windowed dataset is **canonical** for scenarios with
``generation_windows > 1``: worker count only affects wall-clock, never a
single generated row, because the window configs fully determine content.
"""

from __future__ import annotations

import datetime
import multiprocessing
import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collection.store import FrameStore
from repro.common.errors import CollectionError
from repro.scenarios.paper import PaperScenario

#: Id-counter stride between windows: each window's transaction/operation
#: ids start at ``window_index * ID_STRIDE``.  Ids render as ``%012d``, so
#: a billion ids per window keeps every shard's range disjoint and the
#: rendered width fixed.
ID_STRIDE = 1_000_000_000

#: Canonical chain order of the combined dataset — the same order
#: ``generate_dataset`` streams the three generators in.
CHAIN_ORDER = ("eos", "tezos", "xrp")


@dataclass(frozen=True)
class ShardSpec:
    """One generator run: a chain's workload config for one time window."""

    index: int
    chain: str
    window: int
    config: object


@dataclass
class GeneratedDataset:
    """What sharded generation hands back to the caller."""

    rows: int
    #: ``[currency, issuer, rate]`` triples (meta.json's oracle format).
    oracle_rates: List[List[object]]
    #: Frozen account-cluster mapping (meta.json's clusters format).
    clusters: Dict[str, str]
    workers: int
    shard_count: int


def _shift_date(iso_date: str, days: int) -> str:
    shifted = datetime.date.fromisoformat(iso_date) + datetime.timedelta(days=days)
    return shifted.isoformat()


def window_day_offsets(total_days: int, windows: int) -> List[int]:
    """Whole-day window boundaries ``[0, ..., total_days]`` (len ``windows+1``).

    Windows must not outnumber days: every window needs at least one full
    day so height continuation stays exact.
    """
    if windows > total_days:
        raise CollectionError(
            f"cannot split {total_days} days into {windows} windows"
        )
    return [round(index * total_days / windows) for index in range(windows + 1)]


def chain_window_configs(scenario: PaperScenario) -> List[ShardSpec]:
    """Every ``(chain, window)`` workload config, in canonical shard order.

    Canonical order is all EOS windows, then all Tezos windows, then all
    XRP windows — the windowed generalisation of ``generate_dataset``'s
    eos → tezos → xrp streaming order.  Each chain's window boundaries are
    computed independently because the chains' observation windows differ.
    """
    windows = scenario.generation_windows
    specs: List[ShardSpec] = []
    for chain in CHAIN_ORDER:
        config = getattr(scenario, chain)
        total_days = int(round(config.total_days))
        offsets = window_day_offsets(total_days, windows)
        for window in range(windows):
            start_day, stop_day = offsets[window], offsets[window + 1]
            fields = {
                "start_date": _shift_date(config.start_date, start_day),
                "end_date": _shift_date(config.start_date, stop_day),
            }
            if chain == "eos":
                fields["start_height"] = (
                    config.start_height + start_day * config.blocks_per_day
                )
                fields["transaction_id_offset"] = window * ID_STRIDE
            elif chain == "tezos":
                fields["start_level"] = (
                    config.start_level + start_day * config.blocks_per_day
                )
                fields["operation_id_offset"] = window * ID_STRIDE
            else:
                # Every XRP window's bootstrap closes one rate-seeding
                # ledger, so later windows shift by their index on top of
                # the day continuation to keep indices disjoint.
                fields["start_index"] = (
                    config.start_index + start_day * config.ledgers_per_day + window
                )
                fields["transaction_id_offset"] = window * ID_STRIDE
            specs.append(
                ShardSpec(
                    index=len(specs),
                    chain=chain,
                    window=window,
                    config=replace(config, **fields),
                )
            )
    return specs


def _build_generator(chain: str, config):
    if chain == "eos":
        from repro.eos.workload import EosWorkloadGenerator

        return EosWorkloadGenerator(config)
    if chain == "tezos":
        from repro.tezos.workload import TezosWorkloadGenerator

        return TezosWorkloadGenerator(config)
    from repro.xrp.workload import XrpWorkloadGenerator

    return XrpWorkloadGenerator(config)


def _generate_shard(task: Tuple[ShardSpec, str, int]) -> Tuple[int, Dict]:
    """Worker: run one shard's generator into its own FrameStore directory.

    Rows stream from the generator into chunk compression; the only
    retained state is the store's staging buffer (≤ ``chunk_rows`` rows)
    plus the simulated chain itself.  XRP shards also report their
    window's oracle rates and account-cluster mapping, which the parent
    merges in window order.
    """
    spec, directory, chunk_rows = task
    generator = _build_generator(spec.chain, spec.config)
    store = FrameStore(chunk_rows=chunk_rows, directory=directory)
    store.add_records(generator.stream_records())
    store.flush()
    meta: Dict = {"rows": store.row_count}
    if spec.chain == "xrp":
        from repro.analysis.clustering import AccountClusterer, StaticAccountClusterer
        from repro.analysis.value import ExchangeRateOracle

        ledger = generator.ledger
        oracle = ExchangeRateOracle.from_orderbook(ledger.orderbook)
        meta["oracle_rates"] = [
            [currency, issuer, oracle.rate(currency, issuer)]
            for currency, issuer in oracle.known_assets()
        ]
        clusterer = AccountClusterer(ledger.accounts)
        meta["clusters"] = StaticAccountClusterer.from_clusterer(
            clusterer, ledger.accounts.addresses()
        ).to_mapping()
    return spec.index, meta


def generate_sharded(
    scenario: PaperScenario,
    directory: str,
    workers: Optional[int] = None,
    chunk_rows: int = 50_000,
) -> GeneratedDataset:
    """Generate ``scenario``'s dataset shard-parallel into ``directory``.

    Each ``(chain, window)`` shard is generated in its own process into a
    private store under ``directory``; the shards are then assembled into
    one canonical store (chunk files moved, pool deltas re-filtered, one
    manifest).  The result is byte-for-byte independent of ``workers``.
    """
    specs = chain_window_configs(scenario)
    if workers is None:
        workers = min(len(specs), os.cpu_count() or 1)
    shard_dirs = [
        os.path.join(directory, f"shard-{spec.index:03d}") for spec in specs
    ]
    tasks = [
        (spec, shard_dir, chunk_rows)
        for spec, shard_dir in zip(specs, shard_dirs)
    ]
    metas: Dict[int, Dict] = {}
    if workers <= 1 or len(tasks) == 1:
        for task in tasks:
            index, meta = _generate_shard(task)
            metas[index] = meta
    else:
        context = multiprocessing.get_context()
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            for index, meta in pool.imap_unordered(_generate_shard, tasks):
                metas[index] = meta
    store = FrameStore.assemble(directory, shard_dirs, chunk_rows=chunk_rows)
    oracle_rates: Dict[Tuple[str, str], List[object]] = {}
    clusters: Dict[str, str] = {}
    for spec in specs:
        meta = metas[spec.index]
        if spec.chain != "xrp":
            continue
        # Later windows win on rates (December's self-dealt trades move
        # Figure 11b's rate in the final window); cluster mappings merge in
        # window order — genesis addresses are identical across windows and
        # each window's mapping covers its own lazily-activated accounts.
        for currency, issuer, rate in meta["oracle_rates"]:
            oracle_rates[(currency, issuer)] = [currency, issuer, rate]
        for address, cluster in meta["clusters"].items():
            clusters.setdefault(address, cluster)
    return GeneratedDataset(
        rows=store.row_count,
        oracle_rates=list(oracle_rates.values()),
        clusters=clusters,
        workers=workers,
        shard_count=len(specs),
    )
