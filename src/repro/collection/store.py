"""Gzip-compressed block and frame stores.

The paper stores roughly 200 GB of gzip-compressed raw block data across the
three chains (Figure 2).  :class:`BlockStore` keeps blocks in fixed-size
chunks, each serialised to JSON and gzip-compressed, with byte-level
accounting so the dataset characterisation can report the storage column of
Figure 2.  :class:`FrameStore` does the same for the columnar analysis
substrate: rows are chunk-compressed **directly from a**
:class:`~repro.common.columns.TxFrame` — the columnar payload both skips
record materialisation entirely and compresses better than per-record
dictionaries.  Both stores can live purely in memory (the default, used by
tests and benchmarks) or spill chunks to a directory on disk.

Directory-backed frame stores additionally maintain a **manifest**
(``manifest.json``, written atomically after every chunk): the manifest is
the store's commit point, recording each durable chunk's row count, byte
size and per-chain height bounds.  A crash mid-chunk leaves a chunk file
that the manifest never references; :meth:`FrameStore.open` detects such
stale partials (as well as manifest-listed files whose size no longer
matches) and cleans them, so the incremental ingestion pipeline can always
reopen a store at its last durable watermark and re-ingest only what was
lost.  :class:`FrameSink` adapts a frame store to the block-crawler's store
protocol, which is how a crawl streams straight into the columnar substrate
without materialising block-record lists.

Manifest **version 2** additionally records, per chunk, the out-of-core
scan metadata the chunk-parallel analysis layer needs without touching any
chunk payload:

* ``pools`` — the chunk's *string-pool deltas*: the strings this chunk
  introduced that no earlier chunk had, in first-seen order.  Concatenating
  the deltas in chunk order reproduces exactly the pools
  :meth:`FrameStore.to_frame` would build (chunk 0 bulk-loads its payload
  pools; later chunks re-intern in payload order), so any process can build
  the store's *global* code space from the manifest alone — which is what
  lets worker processes scan disjoint chunk ranges and still return
  accumulator state in one shared code space.
* ``times`` — per-chain ``[min, max]`` timestamp bounds (the figure window).
* ``chain_rows`` — per-chain row counts (workers skip chains a chunk does
  not touch; the parent knows per-chain totals without a scan).

Version-1 manifests (and manifest-less legacy directories) are upgraded in
place the first time the out-of-core metadata is requested: every chunk
payload is read once, the deltas/bounds/counts are computed, and the
manifest is rewritten at version 2.

Frame chunks themselves come in two **serialisation formats**: the legacy
``v1`` gzip-JSON files (``frame-chunk-*.json.gz``) and the binary columnar
``v2`` files (``frame-chunk-*.bin``, see
:mod:`repro.collection.chunkformat`).  New chunks are written in
:data:`DEFAULT_CHUNK_FORMAT` (overridable per store or via the
``REPRO_CHUNK_FORMAT`` environment variable); reads dispatch on each blob's
magic bytes, so a store may freely mix formats — e.g. a v1 archive that
keeps growing v2 chunks after an upgrade.  :meth:`FrameStore.migrate_format`
rewrites a store in place behind the same atomic-manifest commit point.
"""

from __future__ import annotations

import glob
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.collection import chunkformat
from repro.collection.chunkformat import ChunkFormatError
from repro.common import faults
from repro.common.columns import CHAIN_CODES, CHAIN_ORDER, TxFrame
from repro.common.compression import (
    CompressionStats,
    accumulate,
    compress_json_measured,
    decompress_json,
)
from repro.common.errors import CollectionError
from repro.common.records import BlockRecord, TransactionRecord

#: Manifest schema version; bump when the manifest layout changes.
MANIFEST_VERSION = 2

#: Manifest versions :meth:`FrameStore.open` accepts.  Version 1 lacks the
#: per-chunk pool deltas / time bounds / chain row counts; those are
#: backfilled lazily (see :meth:`FrameStore.ensure_chunk_stats`).
SUPPORTED_MANIFEST_VERSIONS = (1, 2)

#: Manifest file name inside a directory-backed frame store.
MANIFEST_NAME = "manifest.json"

#: The string pools every frame payload carries, in canonical order.
POOL_NAMES = ("types", "accounts", "currencies", "errors")

#: Chunk serialisation formats a :class:`FrameStore` can write.  ``v1`` is
#: gzip-compressed JSON; ``v2`` is the binary columnar format of
#: :mod:`repro.collection.chunkformat`.  Reads dispatch per chunk file, so
#: mixed-format stores work regardless of the writing format.
CHUNK_FORMAT_V1 = "v1"
CHUNK_FORMAT_V2 = "v2"
CHUNK_FORMATS = (CHUNK_FORMAT_V1, CHUNK_FORMAT_V2)
DEFAULT_CHUNK_FORMAT = CHUNK_FORMAT_V2

#: Environment override for the default write format (``v1`` or ``v2``) —
#: how CI pins a job to the legacy format without threading a parameter
#: through every entry point.
CHUNK_FORMAT_ENV = "REPRO_CHUNK_FORMAT"

#: Per-format chunk file extensions.  The extension is what makes mixed
#: stores and in-place migration safe: a chunk's format is visible in the
#: manifest's file names, and a migrated chunk never collides with the
#: file it replaces.
CHUNK_EXTENSIONS = {CHUNK_FORMAT_V1: ".json.gz", CHUNK_FORMAT_V2: ".bin"}

#: Glob patterns matching chunk files of any format (crash cleanup scans).
_CHUNK_GLOBS = ("frame-chunk-*.json.gz", "frame-chunk-*.bin")

#: Sub-directory (inside a directory-backed store) holding memoized
#: per-chunk accumulator states — the chunk-state aggregate cache of
#: :mod:`repro.analysis.statecache`.  The store owns only the *layout*:
#: where the cache lives and when it must be invalidated wholesale
#: (chunk rewrites).  Entry encoding and keying live with the analysis
#: layer, which is the only reader/writer of entry contents.
STATE_CACHE_DIR = "cache"


def state_cache_dir(directory: str) -> str:
    """The chunk-state cache directory beside a store's chunk files."""
    return os.path.join(directory, STATE_CACHE_DIR)


def invalidate_state_cache(directory: str) -> int:
    """Drop every chunk-state cache entry under ``directory``'s store.

    Used by operations that rewrite chunk bytes in place (format
    migration): entry keys embed the chunk checksum, so stale entries
    could never *hit* — but they would linger as dead weight and show up
    as stale in ``fsck``, so rewrites clear the cache outright.  Returns
    the number of files removed; a missing cache directory is a no-op.
    """
    cache_dir = state_cache_dir(directory)
    if not os.path.isdir(cache_dir):
        return 0
    removed = 0
    for name in os.listdir(cache_dir):
        path = os.path.join(cache_dir, name)
        if os.path.isfile(path):
            os.remove(path)
            removed += 1
    return removed


def resolve_chunk_format(chunk_format: Optional[str] = None) -> str:
    """The effective write format: explicit arg > environment > default."""
    value = chunk_format or os.environ.get(CHUNK_FORMAT_ENV) or DEFAULT_CHUNK_FORMAT
    value = value.strip().lower()
    if value not in CHUNK_FORMATS:
        raise CollectionError(
            f"unknown chunk format {value!r}; expected one of {CHUNK_FORMATS}"
        )
    return value


def _chunk_format_of(path: str) -> str:
    """A chunk file's format, read off its extension."""
    return CHUNK_FORMAT_V1 if path.endswith(".json.gz") else CHUNK_FORMAT_V2


def _glob_chunk_files(directory: str) -> List[str]:
    """Every chunk file in ``directory``, sorted by chunk id (any format)."""
    paths: List[str] = []
    for pattern in _CHUNK_GLOBS:
        paths.extend(glob.glob(os.path.join(directory, pattern)))
    return sorted(paths)


def _decode_chunk_blob(blob: bytes, chunk_id: int) -> Dict:
    """Decode one chunk blob, dispatching on the format magic.

    Corruption in either format surfaces as :class:`CollectionError` — the
    same degradation contract checkpoints follow (:class:`CodecError` →
    "no usable snapshot"), so callers can treat a damaged chunk as a
    recoverable condition instead of a crash.
    """
    if chunkformat.is_v2_chunk(blob):
        return chunkformat.decode_chunk(blob)
    try:
        return decompress_json(blob)
    except (OSError, EOFError, ValueError) as error:
        # gzip.BadGzipFile is an OSError; truncated streams raise EOFError;
        # json/unicode failures are ValueErrors.
        raise CollectionError(
            f"frame chunk {chunk_id} is corrupt: {error}"
        ) from None


@dataclass
class StoredChunk:
    """One compressed chunk of consecutive blocks."""

    chunk_id: int
    min_height: int
    max_height: int
    block_count: int
    stats: CompressionStats
    blob: Optional[bytes] = None
    path: Optional[str] = None

    def load(self) -> List[BlockRecord]:
        """Decompress and decode the chunk's blocks."""
        if self.blob is not None:
            payload = decompress_json(self.blob)
        elif self.path is not None:
            with open(self.path, "rb") as handle:
                payload = decompress_json(handle.read())
        else:
            raise CollectionError(f"chunk {self.chunk_id} has no data attached")
        return [BlockRecord.from_dict(item) for item in payload]


class BlockStore:
    """Append-only store of crawled blocks, chunked and gzip-compressed."""

    def __init__(self, chunk_size: int = 500, directory: Optional[str] = None):
        if chunk_size <= 0:
            raise CollectionError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._chunks: List[StoredChunk] = []
        self._pending: List[BlockRecord] = []
        self._heights: Dict[int, int] = {}
        self._block_count = 0
        self._transaction_count = 0
        self._action_count = 0

    # -- writing -----------------------------------------------------------------
    def add(self, block: BlockRecord) -> None:
        """Append one block; duplicate heights are rejected."""
        if block.height in self._heights:
            raise CollectionError(f"block {block.height} already stored")
        self._heights[block.height] = len(self._chunks)
        self._pending.append(block)
        self._block_count += 1
        self._transaction_count += block.transaction_count
        self._action_count += block.action_count
        if len(self._pending) >= self.chunk_size:
            self.flush()

    def add_many(self, blocks: Iterable[BlockRecord]) -> None:
        for block in blocks:
            self.add(block)

    def flush(self) -> Optional[StoredChunk]:
        """Compress pending blocks into a chunk (no-op when nothing pends)."""
        if not self._pending:
            return None
        payload = [block.to_dict() for block in self._pending]
        blob, raw_size = compress_json_measured(payload)
        stats = CompressionStats(
            raw_bytes=raw_size, compressed_bytes=len(blob), chunk_count=1
        )
        chunk = StoredChunk(
            chunk_id=len(self._chunks),
            min_height=min(block.height for block in self._pending),
            max_height=max(block.height for block in self._pending),
            block_count=len(self._pending),
            stats=stats,
        )
        if self.directory is not None:
            chunk.path = os.path.join(self.directory, f"chunk-{chunk.chunk_id:06d}.json.gz")
            with open(chunk.path, "wb") as handle:
                handle.write(blob)
        else:
            chunk.blob = blob
        for block in self._pending:
            self._heights[block.height] = chunk.chunk_id
        self._chunks.append(chunk)
        self._pending = []
        return chunk

    # -- reading ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._block_count

    @property
    def block_count(self) -> int:
        return self._block_count

    @property
    def transaction_count(self) -> int:
        return self._transaction_count

    @property
    def action_count(self) -> int:
        return self._action_count

    @property
    def chunk_count(self) -> int:
        return len(self._chunks) + (1 if self._pending else 0)

    def heights(self) -> List[int]:
        return sorted(self._heights)

    def height_range(self) -> Optional[tuple]:
        if not self._heights:
            return None
        heights = self.heights()
        return heights[0], heights[-1]

    def __contains__(self, height: int) -> bool:
        return height in self._heights

    def iter_blocks(self) -> Iterator[BlockRecord]:
        """Iterate over all stored blocks in ascending height order."""
        blocks: List[BlockRecord] = []
        for chunk in self._chunks:
            blocks.extend(chunk.load())
        blocks.extend(self._pending)
        for block in sorted(blocks, key=lambda item: item.height):
            yield block

    def blocks(self) -> List[BlockRecord]:
        return list(self.iter_blocks())

    def compression_stats(self) -> CompressionStats:
        """Aggregate byte accounting over all flushed chunks."""
        return accumulate(chunk.stats for chunk in self._chunks)

    def to_frame(self) -> TxFrame:
        """Decompress every stored block straight into a columnar frame.

        This is the bridge from the crawl path to the analysis substrate:
        the frame is the canonical input of the single-pass engine.
        """
        frame = TxFrame()
        frame.extend_from_blocks(self.iter_blocks())
        return frame


def _payload_heights(payload: Dict) -> Dict[str, List[int]]:
    """Per-chain ``[min, max]`` block-height bounds of one chunk payload."""
    heights: Dict[str, List[int]] = {}
    columns = payload["columns"]
    for chain_code, height in zip(columns["chain_code"], columns["block_height"]):
        chain = CHAIN_ORDER[chain_code].value
        bounds = heights.get(chain)
        if bounds is None:
            heights[chain] = [height, height]
        else:
            if height < bounds[0]:
                bounds[0] = height
            elif height > bounds[1]:
                bounds[1] = height
    return heights


def _payload_chain_stats(
    payload: Dict,
) -> Tuple[Dict[str, List[int]], Dict[str, List[float]], Dict[str, int]]:
    """Per-chain height bounds, timestamp bounds and row counts of a payload."""
    heights: Dict[str, List[int]] = {}
    times: Dict[str, List[float]] = {}
    chain_rows: Dict[str, int] = {}
    columns = payload["columns"]
    for chain_code, height, timestamp in zip(
        columns["chain_code"], columns["block_height"], columns["timestamp"]
    ):
        chain = CHAIN_ORDER[chain_code].value
        bounds = heights.get(chain)
        if bounds is None:
            heights[chain] = [height, height]
            times[chain] = [timestamp, timestamp]
            chain_rows[chain] = 1
            continue
        if height < bounds[0]:
            bounds[0] = height
        elif height > bounds[1]:
            bounds[1] = height
        window = times[chain]
        if timestamp < window[0]:
            window[0] = timestamp
        elif timestamp > window[1]:
            window[1] = timestamp
        chain_rows[chain] += 1
    return heights, times, chain_rows


def _payload_stats(
    payload: Dict,
) -> Tuple[Dict[str, List[int]], Dict[str, List[float]], Dict[str, int]]:
    """Per-chain stats of a payload — from the v2 header when present.

    v2 chunks embed their ``(heights, times, chain_rows)`` triple, so
    metadata backfills never iterate rows; v1 payloads fall back to the
    row scan.
    """
    stats = payload.get("chain_stats")
    if stats is not None:
        heights, times, chain_rows = stats
        return dict(heights), dict(times), dict(chain_rows)
    return _payload_chain_stats(payload)


@dataclass
class StoredFrameChunk:
    """One compressed chunk of consecutive frame rows."""

    chunk_id: int
    row_count: int
    stats: CompressionStats
    blob: Optional[bytes] = None
    path: Optional[str] = None
    #: Per-chain ``[min_height, max_height]`` of the chunk's rows, keyed by
    #: the chain value string.  Recorded in the manifest so a reopened store
    #: knows its crawl watermark without decompressing anything.
    heights: Dict[str, List[int]] = field(default_factory=dict)
    #: Per-chain ``[min_timestamp, max_timestamp]`` of the chunk's rows.
    #: ``None`` until computed (version-1 manifests lack it).
    times: Optional[Dict[str, List[float]]] = None
    #: Per-chain row counts.  ``None`` until computed.
    chain_rows: Optional[Dict[str, int]] = None
    #: String-pool deltas: the strings this chunk's payload pools introduce
    #: that no earlier chunk did, in first-seen order, keyed by pool name.
    #: ``None`` until computed.
    pool_deltas: Optional[Dict[str, List[str]]] = None

    def payload(self) -> Dict:
        """Decode the chunk's columnar payload (format read off the blob)."""
        if self.blob is not None:
            blob = self.blob
        elif self.path is not None:
            with open(self.path, "rb") as handle:
                blob = handle.read()
        else:
            raise CollectionError(f"frame chunk {self.chunk_id} has no data attached")
        return _decode_chunk_blob(blob, self.chunk_id)


class FrameStore:
    """Append-only chunked gzip store of columnar transaction rows.

    Rows are compressed straight from a :class:`TxFrame`'s columns: each
    chunk is the frame's columnar payload for a row slice (typed columns
    plus the string pools), so storing a crawled or generated frame never
    materialises a single :class:`TransactionRecord`.
    """

    def __init__(
        self,
        chunk_rows: int = 50_000,
        directory: Optional[str] = None,
        chunk_format: Optional[str] = None,
    ):
        if chunk_rows <= 0:
            raise CollectionError("chunk_rows must be positive")
        self.chunk_rows = chunk_rows
        #: Serialisation format for chunks *this store writes*.  Reading is
        #: always format-agnostic (per-chunk dispatch on the blob magic).
        self.chunk_format = resolve_chunk_format(chunk_format)
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._chunks: List[StoredFrameChunk] = []
        self._staging = TxFrame()
        self._row_count = 0
        self._height_bounds: Dict[str, List[int]] = {}
        #: Running global string pools over the committed chunks, in the
        #: exact order :meth:`to_frame` would intern them.  Kept as both a
        #: list (code order) and a set (membership) per pool name.
        self._pool_values: Dict[str, List[str]] = {name: [] for name in POOL_NAMES}
        self._pool_sets: Dict[str, set] = {name: set() for name in POOL_NAMES}
        #: Whether every committed chunk carries the out-of-core metadata
        #: (pool deltas, time bounds, chain rows).  Version-1 manifests and
        #: legacy directories reopen with this False until
        #: :meth:`ensure_chunk_stats` backfills them.
        self._stats_complete = True
        #: Stale partial chunk files removed by :meth:`open` (crash cleanup).
        self.cleaned_paths: List[str] = []

    @classmethod
    def open(
        cls,
        directory: str,
        chunk_rows: int = 50_000,
        chunk_format: Optional[str] = None,
    ) -> "FrameStore":
        """Reopen a directory-backed store written by an earlier process.

        With a manifest present (every store written by this version has
        one) the open is **lazy and crash-safe**: only the manifest is read;
        chunk payloads stay on disk until :meth:`to_frame` needs them.  The
        manifest is the commit point of every append, so two kinds of stale
        data are detected and cleaned here:

        * chunk files on disk that the manifest never committed (an ingest
          died after writing the file but before the manifest rename), and
        * manifest-listed files whose on-disk size no longer matches the
          committed byte count (a torn write); the manifest is truncated at
          the first such chunk, dropping it and everything after it.

        Cleaned file paths are reported in :attr:`cleaned_paths` so the
        pipeline can log what a crash cost; the store reopens at its last
        durable watermark and appends continue from there.

        Directories written before the manifest existed fall back to the
        legacy glob-and-load path (chunks read eagerly, no recovery).

        The raw-byte accounting of the original write is persisted through
        the manifest; legacy reopened chunks report zero raw bytes, which
        only affects the compression-ratio statistic.
        """
        store = cls(chunk_rows=chunk_rows, directory=directory, chunk_format=chunk_format)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            store._open_from_manifest(manifest_path)
            return store
        paths = _glob_chunk_files(directory)
        for chunk_id, path in enumerate(paths):
            with open(path, "rb") as handle:
                blob = handle.read()
            payload = _decode_chunk_blob(blob, chunk_id)
            heights, times, chain_rows = _payload_stats(payload)
            chunk = StoredFrameChunk(
                chunk_id=chunk_id,
                row_count=len(payload["transaction_id"]),
                stats=CompressionStats(
                    raw_bytes=0, compressed_bytes=len(blob), chunk_count=1
                ),
                blob=blob,
                path=path,
                heights=heights,
                times=times,
                chain_rows=chain_rows,
                pool_deltas=store._absorb_pool_deltas(payload["pools"]),
            )
            store._chunks.append(chunk)
            store._row_count += chunk.row_count
            store._merge_height_bounds(chunk.heights)
        return store

    @classmethod
    def assemble(
        cls,
        directory: str,
        sources: Sequence[str],
        chunk_rows: int = 50_000,
    ) -> "FrameStore":
        """Combine shard stores into one store **without decompressing data**.

        ``sources`` are directory-backed stores whose chunks become the
        combined store's chunks, in the given order.  Chunk files are moved
        (renamed) into ``directory``; rows, byte accounting, heights, times
        and chain rows pass through unchanged.  The only recomputation is
        the pool deltas: each shard records deltas relative to *its own*
        running pools, so every shard delta is re-filtered against the
        combined store's running pool set — correct because a chunk's
        payload pools are its shard's cumulative pools, whose earlier
        entries have all been absorbed by the time the chunk is reached.

        The sources are **consumed**: their chunk files move away and their
        directories (now holding only a stale manifest) are removed.

        Crash safety: before any chunk moves, a placeholder manifest marked
        ``"assembling"`` is committed into the target; :meth:`open` refuses
        a store whose manifest still carries that mark, so an assembly that
        dies between moves can never be mistaken for a complete store.  The
        final manifest write replaces the placeholder atomically.
        """
        target = cls(chunk_rows=chunk_rows, directory=directory)
        placeholder = {
            "version": MANIFEST_VERSION,
            "assembling": True,
            "chunk_rows": chunk_rows,
            "row_count": 0,
            "chunks": [],
        }
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        temp_path = manifest_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(placeholder, handle)
        os.replace(temp_path, manifest_path)
        for source_dir in sources:
            if not os.path.exists(os.path.join(source_dir, MANIFEST_NAME)):
                # Every committed append writes the manifest, so a missing
                # one means the shard's generator died before finishing —
                # assembling would silently drop its rows.
                raise CollectionError(
                    f"shard store {source_dir!r} has no manifest "
                    "(incomplete or crashed shard)"
                )
            source = cls.open(source_dir)
            if len(source._staging):
                raise CollectionError(
                    f"shard store {source_dir!r} has unflushed staging rows"
                )
            source.ensure_chunk_stats()
            for chunk in source._chunks:
                chunk_id = len(target._chunks)
                # The moved file keeps its format (visible in the extension):
                # chunk bytes pass through assembly untouched, which is what
                # keeps sharded generation byte-deterministic per worker count.
                extension = CHUNK_EXTENSIONS[_chunk_format_of(chunk.path)]
                path = os.path.join(
                    directory, f"frame-chunk-{chunk_id:06d}{extension}"
                )
                faults.maybe_crash("store.assemble")
                os.replace(chunk.path, path)
                target._chunks.append(
                    StoredFrameChunk(
                        chunk_id=chunk_id,
                        row_count=chunk.row_count,
                        stats=chunk.stats,
                        path=path,
                        heights=chunk.heights,
                        times=chunk.times,
                        chain_rows=chunk.chain_rows,
                        pool_deltas=target._absorb_pool_deltas(chunk.pool_deltas),
                    )
                )
                target._row_count += chunk.row_count
                target._merge_height_bounds(chunk.heights)
            manifest_path = os.path.join(source_dir, MANIFEST_NAME)
            if os.path.exists(manifest_path):
                os.remove(manifest_path)
            try:
                os.rmdir(source_dir)
            except OSError:  # pragma: no cover - caller left extra files
                pass
        target._write_manifest()
        return target

    # -- manifest ----------------------------------------------------------------
    def _open_from_manifest(self, manifest_path: str) -> None:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("version") not in SUPPORTED_MANIFEST_VERSIONS:
            raise CollectionError(
                f"unsupported frame-store manifest version {manifest.get('version')!r}"
            )
        if manifest.get("assembling"):
            # The placeholder manifest :meth:`assemble` writes before moving
            # any shard chunk: its presence means an assembly died mid-move.
            # Refusing to open is the only safe answer — the directory holds
            # an arbitrary prefix of the shards, and loading it would look
            # like a complete store with silently missing rows.
            raise CollectionError(
                f"store {self.directory!r} is a crashed partial assembly; "
                "re-run the assembly from its shard sources"
            )
        committed: List[StoredFrameChunk] = []
        truncated = False
        for entry in manifest["chunks"]:
            path = os.path.join(self.directory, entry["file"])
            compressed = int(entry["compressed_bytes"])
            if (
                truncated
                or not os.path.exists(path)
                or os.path.getsize(path) != compressed
            ):
                # Torn or missing committed chunk: the store is only
                # consistent up to the previous chunk, so this one and
                # everything after it is dropped.
                truncated = True
                if os.path.exists(path):
                    self.cleaned_paths.append(path)
                    os.remove(path)
                continue
            pool_deltas = entry.get("pools")
            committed.append(
                StoredFrameChunk(
                    chunk_id=len(committed),
                    row_count=int(entry["rows"]),
                    stats=CompressionStats(
                        raw_bytes=int(entry.get("raw_bytes", 0)),
                        compressed_bytes=compressed,
                        chunk_count=1,
                    ),
                    path=path,
                    heights={
                        chain: [int(low), int(high)]
                        for chain, (low, high) in entry.get("heights", {}).items()
                    },
                    times={
                        chain: [float(low), float(high)]
                        for chain, (low, high) in entry["times"].items()
                    }
                    if entry.get("times") is not None
                    else None,
                    chain_rows={
                        chain: int(count)
                        for chain, count in entry["chain_rows"].items()
                    }
                    if entry.get("chain_rows") is not None
                    else None,
                    pool_deltas={
                        name: list(pool_deltas.get(name, []))
                        for name in POOL_NAMES
                    }
                    if pool_deltas is not None
                    else None,
                )
            )
        committed_files = {os.path.basename(chunk.path) for chunk in committed}
        for path in _glob_chunk_files(self.directory):
            if os.path.basename(path) not in committed_files:
                # Uncommitted partial (crash between chunk write and the
                # manifest rename): clean it so chunk ids stay dense.
                self.cleaned_paths.append(path)
                os.remove(path)
        for chunk in committed:
            self._chunks.append(chunk)
            self._row_count += chunk.row_count
            self._merge_height_bounds(chunk.heights)
            if chunk.pool_deltas is None:
                self._stats_complete = False
            elif self._stats_complete:
                self._replay_pool_deltas(chunk.pool_deltas)
        if truncated or self.cleaned_paths:
            self._write_manifest()

    def _replay_pool_deltas(self, deltas: Dict[str, List[str]]) -> None:
        """Extend the running global pools with one chunk's recorded deltas."""
        for name in POOL_NAMES:
            values = deltas.get(name)
            if values:
                self._pool_values[name].extend(values)
                self._pool_sets[name].update(values)

    def _absorb_pool_deltas(self, payload_pools: Dict) -> Dict[str, List[str]]:
        """Fold one chunk's payload pools into the running global pools.

        Returns the chunk's deltas: the payload-pool strings not already in
        the global pools, in payload order — exactly the order
        :meth:`TxFrame.extend_from_payload` would intern them, so replaying
        deltas in chunk order reproduces :meth:`to_frame`'s pools.
        """
        deltas: Dict[str, List[str]] = {}
        for name in POOL_NAMES:
            seen = self._pool_sets[name]
            fresh = [value for value in payload_pools[name] if value not in seen]
            deltas[name] = fresh
            if fresh:
                self._pool_values[name].extend(fresh)
                seen.update(fresh)
        return deltas

    def _merge_height_bounds(self, heights: Dict[str, List[int]]) -> None:
        for chain, (low, high) in heights.items():
            bounds = self._height_bounds.get(chain)
            if bounds is None:
                self._height_bounds[chain] = [low, high]
            else:
                bounds[0] = min(bounds[0], low)
                bounds[1] = max(bounds[1], high)

    def _write_manifest(self) -> None:
        """Atomically commit the chunk list (write-temp + rename)."""
        if self.directory is None:
            return
        entries = []
        for chunk in self._chunks:
            entry = {
                "file": os.path.basename(chunk.path),
                "rows": chunk.row_count,
                "compressed_bytes": chunk.stats.compressed_bytes,
                "raw_bytes": chunk.stats.raw_bytes,
                "heights": chunk.heights,
            }
            if chunk.times is not None:
                entry["times"] = chunk.times
            if chunk.chain_rows is not None:
                entry["chain_rows"] = chunk.chain_rows
            if chunk.pool_deltas is not None:
                entry["pools"] = chunk.pool_deltas
            entries.append(entry)
        manifest = {
            "version": MANIFEST_VERSION,
            "chunk_rows": self.chunk_rows,
            "row_count": self._row_count,
            "chunks": entries,
        }
        path = os.path.join(self.directory, MANIFEST_NAME)
        temp_path = path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        # A crash here (temp written, rename pending) must leave the previous
        # manifest authoritative — exactly what the atomic replace guarantees.
        faults.maybe_crash("store.manifest_commit")
        os.replace(temp_path, path)

    # -- writing -----------------------------------------------------------------
    def add_frame(self, frame: TxFrame) -> None:
        """Chunk-compress every row of ``frame`` directly from its columns."""
        total = len(frame)
        for start in range(0, total, self.chunk_rows):
            stop = min(start + self.chunk_rows, total)
            self._write_chunk(frame, range(start, stop))

    def add_records(self, records: Iterable[TransactionRecord]) -> None:
        """Buffer a record stream, flushing a chunk whenever one fills up."""
        staging = self._staging
        for record in records:
            staging.append(record)
            if len(staging) >= self.chunk_rows:
                self.flush()
                staging = self._staging

    def stage_records(self, records: Iterable[TransactionRecord]) -> None:
        """Buffer records **without** auto-flushing mid-stream.

        Unlike :meth:`add_records`, no chunk is committed while the stream
        is being consumed — the caller decides where durability boundaries
        fall by calling :meth:`flush` between its own atomic units.  This is
        how :class:`FrameSink` keeps chunk commits *block-aligned*: a chunk
        must never end mid-block, or a crash after the commit would leave
        the block's height inside the durable watermark with its tail rows
        lost (the resumed crawl would skip the block, silently dropping
        rows).  Chunks may run slightly past ``chunk_rows`` as a result.
        """
        staging = self._staging
        for record in records:
            staging.append(record)

    @property
    def staged_rows(self) -> int:
        """Rows buffered in staging, not yet committed to a chunk."""
        return len(self._staging)

    def flush(self) -> Optional[StoredFrameChunk]:
        """Compress the staging buffer into a chunk (no-op when empty)."""
        if not len(self._staging):
            return None
        chunk = self._write_chunk(self._staging, None)
        self._staging = TxFrame()
        return chunk

    def _write_chunk(self, frame: TxFrame, rows: Optional[range]) -> StoredFrameChunk:
        # New chunks always commit with out-of-core metadata; appending to a
        # store reopened from a version-1 manifest backfills the old chunks
        # first so the running pools (and therefore this chunk's deltas) are
        # computed against the full committed prefix.
        self.ensure_chunk_stats()
        binary = self.chunk_format == CHUNK_FORMAT_V2
        payload = frame.to_payload(rows, arrays=binary)
        heights, times, chain_rows = _payload_chain_stats(payload)
        if binary:
            blob, raw_size = chunkformat.encode_chunk(
                payload, chain_stats=(heights, times, chain_rows)
            )
        else:
            blob, raw_size = compress_json_measured(payload)
        row_count = len(rows) if rows is not None else len(frame)
        chunk = StoredFrameChunk(
            chunk_id=len(self._chunks),
            row_count=row_count,
            stats=CompressionStats(
                raw_bytes=raw_size, compressed_bytes=len(blob), chunk_count=1
            ),
            heights=heights,
            times=times,
            chain_rows=chain_rows,
            pool_deltas=self._absorb_pool_deltas(payload["pools"]),
        )
        if self.directory is not None:
            chunk.path = os.path.join(
                self.directory,
                f"frame-chunk-{chunk.chunk_id:06d}"
                f"{CHUNK_EXTENSIONS[self.chunk_format]}",
            )
            action = faults.check("store.chunk_write")
            disk_blob = blob
            if action is not None and action.mode in (
                faults.MODE_TORN,
                faults.MODE_BITFLIP,
                faults.MODE_TRUNCATE,
            ):
                disk_blob = action.corrupt(blob)
            with open(chunk.path, "wb") as handle:
                handle.write(disk_blob)
            if action is not None and action.mode in (
                faults.MODE_CRASH,
                faults.MODE_TRUNCATE,
            ):
                # Death between the chunk write and the manifest commit: the
                # file (whole for ``crash``, half for ``truncate``) is never
                # referenced by the manifest and open() cleans it up.
                raise faults.InjectedCrash(
                    f"injected {action.mode} at store.chunk_write"
                )
        else:
            chunk.blob = blob
        self._chunks.append(chunk)
        self._row_count += row_count
        self._merge_height_bounds(chunk.heights)
        if self.directory is not None:
            # The manifest rename is the commit point: a crash before it
            # leaves an uncommitted chunk file that open() will clean up.
            self._write_manifest()
            if action is not None and action.mode == faults.MODE_TORN:
                # A torn write: the manifest committed the full byte count
                # but only half the blob reached the platter before power
                # loss.  open() detects the size mismatch and truncates the
                # store at this chunk.
                raise faults.InjectedCrash("injected torn write at store.chunk_write")
        return chunk

    # -- reading ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._row_count + len(self._staging)

    @property
    def row_count(self) -> int:
        return self._row_count + len(self._staging)

    @property
    def chunk_count(self) -> int:
        return len(self._chunks) + (1 if len(self._staging) else 0)

    @property
    def flushed_rows(self) -> int:
        """Rows committed to chunks — the store's durable row watermark.

        Staged rows are excluded: they live only in this process and are
        lost on a crash, so checkpoints must never cover them.
        """
        return self._row_count

    def height_bounds(self, chain) -> Optional[Tuple[int, int]]:
        """(min, max) committed block height for ``chain`` (or its value string).

        This is the crawl watermark: a tail crawl resumes at ``max + 1``.
        ``None`` when the chain has no committed rows.
        """
        key = getattr(chain, "value", chain)
        bounds = self._height_bounds.get(key)
        if bounds is None:
            return None
        return bounds[0], bounds[1]

    # -- out-of-core scan metadata -------------------------------------------------
    def ensure_chunk_stats(self) -> None:
        """Backfill the out-of-core metadata for chunks that lack it.

        Stores written at manifest version 2 carry pool deltas, time bounds
        and chain row counts for every chunk; stores reopened from version-1
        manifests do not.  This reads each stale chunk's payload once (in
        chunk order — delta computation depends on the running pools),
        computes the metadata, and commits the upgraded manifest, after
        which every open is metadata-complete and lazy again.
        """
        if self._stats_complete:
            return
        # The running pools were only replayed up to the first chunk without
        # recorded deltas; rebuild from scratch so order stays exact.
        self._pool_values = {name: [] for name in POOL_NAMES}
        self._pool_sets = {name: set() for name in POOL_NAMES}
        for chunk in self._chunks:
            if chunk.pool_deltas is not None and chunk.times is not None:
                self._replay_pool_deltas(chunk.pool_deltas)
                continue
            payload = chunk.payload()
            chunk.heights, chunk.times, chunk.chain_rows = _payload_stats(payload)
            chunk.pool_deltas = self._absorb_pool_deltas(payload["pools"])
        self._stats_complete = True
        self._write_manifest()

    def pool_values(self) -> Dict[str, List[str]]:
        """The store's global string pools, in code order, keyed by name.

        Identical to the pools :meth:`to_frame` would build (staged rows
        excluded): the concatenation of every committed chunk's deltas in
        chunk order.  This is the shared code space out-of-core workers and
        the merging parent scan in.
        """
        self.ensure_chunk_stats()
        return {name: list(values) for name, values in self._pool_values.items()}

    def time_bounds(self, chain) -> Optional[Tuple[float, float]]:
        """(min, max) committed timestamp for ``chain`` (or its value string)."""
        self.ensure_chunk_stats()
        key = getattr(chain, "value", chain)
        low = high = None
        for chunk in self._chunks:
            window = (chunk.times or {}).get(key)
            if window is None:
                continue
            if low is None:
                low, high = window[0], window[1]
            else:
                low = min(low, window[0])
                high = max(high, window[1])
        if low is None:
            return None
        return low, high

    def chain_row_counts(self) -> Dict[str, int]:
        """Committed row totals per chain value string."""
        self.ensure_chunk_stats()
        totals: Dict[str, int] = {}
        for chunk in self._chunks:
            for chain, count in (chunk.chain_rows or {}).items():
                totals[chain] = totals.get(chain, 0) + count
        return totals

    @property
    def committed_chunk_count(self) -> int:
        """Durable chunks on disk — the unit of out-of-core task partitioning."""
        return len(self._chunks)

    def chunk_chain_rows(self, index: int) -> Dict[str, int]:
        """Per-chain row counts of one committed chunk (metadata only)."""
        self.ensure_chunk_stats()
        return dict(self._chunks[index].chain_rows or {})

    def chunk_row_counts(self) -> List[int]:
        """Row count of every committed chunk, in chunk order (manifest only).

        The row-balanced out-of-core task partitioner weights ranges by
        these, so ragged chunk sizes stop skewing worker wall-clock.
        """
        return [chunk.row_count for chunk in self._chunks]

    def chunk_identity(self, index: int) -> Tuple[str, str]:
        """``(checksum, format)`` identity of one committed chunk's bytes.

        The checksum is the adler32 of the raw on-disk blob as 8 hex
        digits — exactly what keys a chunk-state cache entry to the chunk
        *content*: any rewrite (migration, repair, regeneration) changes
        the checksum and turns old entries into clean misses.
        """
        chunk = self._chunks[index]
        if chunk.path is not None:
            with open(chunk.path, "rb") as handle:
                blob = handle.read()
            fmt = _chunk_format_of(chunk.path)
        elif chunk.blob is not None:
            blob = chunk.blob
            fmt = (
                CHUNK_FORMAT_V2
                if chunkformat.is_v2_chunk(blob)
                else CHUNK_FORMAT_V1
            )
        else:
            raise CollectionError(
                f"frame chunk {chunk.chunk_id} has no data attached"
            )
        return f"{zlib.adler32(blob) & 0xFFFFFFFF:08x}", fmt

    def chunk_payload(self, index: int) -> Dict:
        """Decompress one committed chunk's columnar payload."""
        return self._chunks[index].payload()

    def to_frame(self) -> TxFrame:
        """Decompress every chunk back into one columnar frame."""
        frame = TxFrame()
        for chunk in self._chunks:
            if not len(frame):
                # First chunk into an empty frame: codes pass through, so
                # the bulk column load applies (no per-row append loop).
                frame._load_payload_bulk(chunk.payload())
            else:
                frame.extend_from_payload(chunk.payload())
        if len(self._staging):
            frame.extend_from_payload(self._staging.to_payload())
        return frame

    def payload_tail(self, start_row: int) -> Iterator[Dict]:
        """Committed-row payloads at or past ``start_row``, in row order.

        The first yielded payload is sliced so its rows begin exactly at
        ``start_row`` even when that row falls mid-chunk.  This is the
        resident-frame catch-up path: a long-lived process extends its
        in-memory frame with only the chunks committed since it last
        looked, instead of rehydrating the whole archive.
        """
        covered = 0
        for chunk in self._chunks:
            end = covered + chunk.row_count
            if end > start_row:
                payload = chunk.payload()
                skip = start_row - covered
                if skip > 0:
                    payload = {
                        "columns": {
                            name: column[skip:]
                            for name, column in payload["columns"].items()
                        },
                        "transaction_id": payload["transaction_id"][skip:],
                        "metadata": payload["metadata"][skip:],
                        "pools": payload["pools"],
                    }
                yield payload
            covered = end

    def iter_records(self) -> Iterator[TransactionRecord]:
        """Materialise the stored rows as canonical records (compat path)."""
        for chunk in self._chunks:
            chunk_frame = TxFrame.from_payload(chunk.payload())
            yield from chunk_frame.iter_records()
        yield from self._staging.iter_records()

    def compression_stats(self) -> CompressionStats:
        """Aggregate byte accounting over all flushed chunks."""
        return accumulate(chunk.stats for chunk in self._chunks)

    # -- migration ----------------------------------------------------------------
    def migrate_format(self, chunk_format: str = DEFAULT_CHUNK_FORMAT) -> int:
        """Rewrite every chunk not already in ``chunk_format``; returns how many.

        The rewrite rides the store's normal commit protocol: new chunk
        files are written beside the old ones (a different extension, so no
        collision), then one atomic manifest rename commits the whole
        migration, then the superseded files are deleted.  A crash before
        the rename leaves uncommitted new files (cleaned by :meth:`open`);
        a crash after it leaves unreferenced old files (same cleanup) — at
        no point does the manifest reference a chunk that is not durable.
        """
        target = resolve_chunk_format(chunk_format)
        self.ensure_chunk_stats()
        superseded: List[str] = []
        migrated = 0
        for chunk in self._chunks:
            source_path = chunk.path
            current = (
                _chunk_format_of(source_path)
                if source_path is not None
                else (
                    CHUNK_FORMAT_V2
                    if chunk.blob is not None and chunkformat.is_v2_chunk(chunk.blob)
                    else CHUNK_FORMAT_V1
                )
            )
            if current == target:
                continue
            payload = chunk.payload()
            if target == CHUNK_FORMAT_V2:
                blob, raw_size = chunkformat.encode_chunk(
                    payload,
                    chain_stats=(chunk.heights, chunk.times, chunk.chain_rows),
                )
            else:
                blob, raw_size = compress_json_measured(_jsonable_payload(payload))
            chunk.stats = CompressionStats(
                raw_bytes=raw_size, compressed_bytes=len(blob), chunk_count=1
            )
            migrated += 1
            if self.directory is None:
                chunk.blob = blob
                continue
            path = os.path.join(
                self.directory,
                f"frame-chunk-{chunk.chunk_id:06d}{CHUNK_EXTENSIONS[target]}",
            )
            with open(path, "wb") as handle:
                handle.write(blob)
            chunk.path = path
            superseded.append(source_path)
        self.chunk_format = target
        if self.directory is not None and superseded:
            self._write_manifest()  # the commit point for the whole migration
            for path in superseded:
                os.remove(path)
        if self.directory is not None and migrated:
            # Rewritten chunk bytes orphan every keyed state-cache entry;
            # clear them instead of leaving stale files for fsck to flag.
            invalidate_state_cache(self.directory)
        return migrated


def _jsonable_payload(payload: Dict) -> Dict:
    """A decoded payload reduced to its JSON-serialisable v1 shape."""
    columns = {}
    for name, data in payload["columns"].items():
        if isinstance(data, list):
            columns[name] = data
        elif hasattr(data, "tolist"):
            columns[name] = data.tolist()
        else:
            columns[name] = list(data)
    return {
        "columns": columns,
        "transaction_id": list(payload["transaction_id"]),
        "metadata": [meta if meta else None for meta in payload["metadata"]],
        "pools": {name: list(values) for name, values in payload["pools"].items()},
    }


class FrameSink:
    """Adapts a :class:`FrameStore` to the block-crawler's store protocol.

    This is the crawler's frame-sink path: instead of accumulating
    ``BlockRecord`` lists in a :class:`BlockStore` that must later be
    converted, each crawled block's transactions flow straight into the
    columnar store.  The sink buffers at most one crawl window of blocks
    (the crawler fetches in *reverse* chronological order, so the buffer is
    re-sorted ascending at :meth:`flush` — keeping per-chain rows in
    time order, which is what the analysis engine's sorted fast paths and
    the incremental reporter's append-only assumption rely on) and then
    appends their rows to the store and commits a chunk.

    A sink serves one chain's crawl (heights are chain-local).  ``height in
    sink`` answers from the heights ingested through this sink plus the
    store's committed height bounds for the chain.  The bounds check treats
    the committed range as contiguous, so crawl failures that leave holes
    *inside* the range must be declared via ``missing_heights`` — otherwise
    a hole would read as stored and never be re-fetched.  The pipeline's
    tail crawls persist each crawl's ``failed_blocks`` and pass them back
    here on the next tick, which is what turns a transient fetch failure
    into a retried block instead of silent data loss (see
    :func:`repro.pipeline.live.tail_crawl`).
    """

    def __init__(self, store: FrameStore, chain=None, missing_heights=()):
        self.store = store
        self.chain_value: Optional[str] = getattr(chain, "value", chain)
        self._pending: List[BlockRecord] = []
        self._pending_heights: set = set()
        self._heights: set = set()
        self._missing: set = set(missing_heights)
        self._block_count = 0
        self._transaction_count = 0
        self._action_count = 0

    # -- crawler store protocol ---------------------------------------------------
    def add(self, block: BlockRecord) -> None:
        """Buffer one crawled block; duplicate heights are rejected."""
        if block.height in self:
            raise CollectionError(f"block {block.height} already stored")
        if self.chain_value is None:
            self.chain_value = block.chain.value
        self._missing.discard(block.height)
        self._pending.append(block)
        self._pending_heights.add(block.height)
        self._block_count += 1
        self._transaction_count += block.transaction_count
        self._action_count += block.action_count

    def flush(self) -> int:
        """Append the buffered blocks' rows to the store, oldest first.

        Returns the number of rows appended.  The store's own chunking
        decides durability boundaries; a final ``store.flush()`` commits the
        tail chunk so a completed crawl window is always durable.
        """
        if not self._pending:
            return 0
        self._pending.sort(key=lambda block: block.height)
        appended = 0
        for block in self._pending:
            # Stage whole blocks and only commit *between* them: a chunk
            # boundary mid-block would put the block's height inside the
            # durable watermark while its tail rows die with the process,
            # and the resumed crawl would skip the block entirely.
            self.store.stage_records(block.transactions)
            appended += len(block.transactions)
            if self.store.staged_rows >= self.store.chunk_rows:
                self.store.flush()
        self._heights.update(self._pending_heights)
        self._pending = []
        self._pending_heights = set()
        self.store.flush()
        return appended

    def __contains__(self, height: int) -> bool:
        if height in self._pending_heights or height in self._heights:
            return True
        if height in self._missing or self.chain_value is None:
            return False
        bounds = self.store.height_bounds(self.chain_value)
        return bounds is not None and bounds[0] <= height <= bounds[1]

    @property
    def missing_heights(self):
        """Declared holes inside the committed range still awaiting a fetch."""
        return frozenset(self._missing)

    @property
    def block_count(self) -> int:
        return self._block_count

    @property
    def transaction_count(self) -> int:
        return self._transaction_count

    @property
    def action_count(self) -> int:
        return self._action_count
