"""Gzip-compressed block store.

The paper stores roughly 200 GB of gzip-compressed raw block data across the
three chains (Figure 2).  The store keeps blocks in fixed-size chunks, each
serialised to JSON and gzip-compressed, and keeps byte-level accounting so
the dataset characterisation can report the storage column of Figure 2.  The
store can live purely in memory (the default, used by tests and benchmarks)
or spill chunks to a directory on disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.common.compression import (
    CompressionStats,
    accumulate,
    compress_records,
    decompress_json,
)
from repro.common.errors import CollectionError
from repro.common.records import BlockRecord


@dataclass
class StoredChunk:
    """One compressed chunk of consecutive blocks."""

    chunk_id: int
    min_height: int
    max_height: int
    block_count: int
    stats: CompressionStats
    blob: Optional[bytes] = None
    path: Optional[str] = None

    def load(self) -> List[BlockRecord]:
        """Decompress and decode the chunk's blocks."""
        if self.blob is not None:
            payload = decompress_json(self.blob)
        elif self.path is not None:
            with open(self.path, "rb") as handle:
                payload = decompress_json(handle.read())
        else:
            raise CollectionError(f"chunk {self.chunk_id} has no data attached")
        return [BlockRecord.from_dict(item) for item in payload]


class BlockStore:
    """Append-only store of crawled blocks, chunked and gzip-compressed."""

    def __init__(self, chunk_size: int = 500, directory: Optional[str] = None):
        if chunk_size <= 0:
            raise CollectionError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._chunks: List[StoredChunk] = []
        self._pending: List[BlockRecord] = []
        self._heights: Dict[int, int] = {}
        self._block_count = 0
        self._transaction_count = 0
        self._action_count = 0

    # -- writing -----------------------------------------------------------------
    def add(self, block: BlockRecord) -> None:
        """Append one block; duplicate heights are rejected."""
        if block.height in self._heights:
            raise CollectionError(f"block {block.height} already stored")
        self._heights[block.height] = len(self._chunks)
        self._pending.append(block)
        self._block_count += 1
        self._transaction_count += block.transaction_count
        self._action_count += block.action_count
        if len(self._pending) >= self.chunk_size:
            self.flush()

    def add_many(self, blocks: Iterable[BlockRecord]) -> None:
        for block in blocks:
            self.add(block)

    def flush(self) -> Optional[StoredChunk]:
        """Compress pending blocks into a chunk (no-op when nothing pends)."""
        if not self._pending:
            return None
        payload = [block.to_dict() for block in self._pending]
        blob = compress_records(payload)
        raw_size = len(
            compress_records(payload, level=0)
        )  # level-0 gzip ~ raw payload + framing
        stats = CompressionStats(
            raw_bytes=raw_size, compressed_bytes=len(blob), chunk_count=1
        )
        chunk = StoredChunk(
            chunk_id=len(self._chunks),
            min_height=min(block.height for block in self._pending),
            max_height=max(block.height for block in self._pending),
            block_count=len(self._pending),
            stats=stats,
        )
        if self.directory is not None:
            chunk.path = os.path.join(self.directory, f"chunk-{chunk.chunk_id:06d}.json.gz")
            with open(chunk.path, "wb") as handle:
                handle.write(blob)
        else:
            chunk.blob = blob
        for block in self._pending:
            self._heights[block.height] = chunk.chunk_id
        self._chunks.append(chunk)
        self._pending = []
        return chunk

    # -- reading ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._block_count

    @property
    def block_count(self) -> int:
        return self._block_count

    @property
    def transaction_count(self) -> int:
        return self._transaction_count

    @property
    def action_count(self) -> int:
        return self._action_count

    @property
    def chunk_count(self) -> int:
        return len(self._chunks) + (1 if self._pending else 0)

    def heights(self) -> List[int]:
        return sorted(self._heights)

    def height_range(self) -> Optional[tuple]:
        if not self._heights:
            return None
        heights = self.heights()
        return heights[0], heights[-1]

    def __contains__(self, height: int) -> bool:
        return height in self._heights

    def iter_blocks(self) -> Iterator[BlockRecord]:
        """Iterate over all stored blocks in ascending height order."""
        blocks: List[BlockRecord] = []
        for chunk in self._chunks:
            blocks.extend(chunk.load())
        blocks.extend(self._pending)
        for block in sorted(blocks, key=lambda item: item.height):
            yield block

    def blocks(self) -> List[BlockRecord]:
        return list(self.iter_blocks())

    def compression_stats(self) -> CompressionStats:
        """Aggregate byte accounting over all flushed chunks."""
        return accumulate(chunk.stats for chunk in self._chunks)
