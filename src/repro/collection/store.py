"""Gzip-compressed block and frame stores.

The paper stores roughly 200 GB of gzip-compressed raw block data across the
three chains (Figure 2).  :class:`BlockStore` keeps blocks in fixed-size
chunks, each serialised to JSON and gzip-compressed, with byte-level
accounting so the dataset characterisation can report the storage column of
Figure 2.  :class:`FrameStore` does the same for the columnar analysis
substrate: rows are chunk-compressed **directly from a**
:class:`~repro.common.columns.TxFrame` — the columnar payload both skips
record materialisation entirely and compresses better than per-record
dictionaries.  Both stores can live purely in memory (the default, used by
tests and benchmarks) or spill chunks to a directory on disk.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.common.columns import TxFrame
from repro.common.compression import (
    CompressionStats,
    accumulate,
    compress_json,
    compress_records,
    decompress_json,
)
from repro.common.errors import CollectionError
from repro.common.records import BlockRecord, TransactionRecord


@dataclass
class StoredChunk:
    """One compressed chunk of consecutive blocks."""

    chunk_id: int
    min_height: int
    max_height: int
    block_count: int
    stats: CompressionStats
    blob: Optional[bytes] = None
    path: Optional[str] = None

    def load(self) -> List[BlockRecord]:
        """Decompress and decode the chunk's blocks."""
        if self.blob is not None:
            payload = decompress_json(self.blob)
        elif self.path is not None:
            with open(self.path, "rb") as handle:
                payload = decompress_json(handle.read())
        else:
            raise CollectionError(f"chunk {self.chunk_id} has no data attached")
        return [BlockRecord.from_dict(item) for item in payload]


class BlockStore:
    """Append-only store of crawled blocks, chunked and gzip-compressed."""

    def __init__(self, chunk_size: int = 500, directory: Optional[str] = None):
        if chunk_size <= 0:
            raise CollectionError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._chunks: List[StoredChunk] = []
        self._pending: List[BlockRecord] = []
        self._heights: Dict[int, int] = {}
        self._block_count = 0
        self._transaction_count = 0
        self._action_count = 0

    # -- writing -----------------------------------------------------------------
    def add(self, block: BlockRecord) -> None:
        """Append one block; duplicate heights are rejected."""
        if block.height in self._heights:
            raise CollectionError(f"block {block.height} already stored")
        self._heights[block.height] = len(self._chunks)
        self._pending.append(block)
        self._block_count += 1
        self._transaction_count += block.transaction_count
        self._action_count += block.action_count
        if len(self._pending) >= self.chunk_size:
            self.flush()

    def add_many(self, blocks: Iterable[BlockRecord]) -> None:
        for block in blocks:
            self.add(block)

    def flush(self) -> Optional[StoredChunk]:
        """Compress pending blocks into a chunk (no-op when nothing pends)."""
        if not self._pending:
            return None
        payload = [block.to_dict() for block in self._pending]
        blob = compress_records(payload)
        raw_size = len(
            compress_records(payload, level=0)
        )  # level-0 gzip ~ raw payload + framing
        stats = CompressionStats(
            raw_bytes=raw_size, compressed_bytes=len(blob), chunk_count=1
        )
        chunk = StoredChunk(
            chunk_id=len(self._chunks),
            min_height=min(block.height for block in self._pending),
            max_height=max(block.height for block in self._pending),
            block_count=len(self._pending),
            stats=stats,
        )
        if self.directory is not None:
            chunk.path = os.path.join(self.directory, f"chunk-{chunk.chunk_id:06d}.json.gz")
            with open(chunk.path, "wb") as handle:
                handle.write(blob)
        else:
            chunk.blob = blob
        for block in self._pending:
            self._heights[block.height] = chunk.chunk_id
        self._chunks.append(chunk)
        self._pending = []
        return chunk

    # -- reading ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._block_count

    @property
    def block_count(self) -> int:
        return self._block_count

    @property
    def transaction_count(self) -> int:
        return self._transaction_count

    @property
    def action_count(self) -> int:
        return self._action_count

    @property
    def chunk_count(self) -> int:
        return len(self._chunks) + (1 if self._pending else 0)

    def heights(self) -> List[int]:
        return sorted(self._heights)

    def height_range(self) -> Optional[tuple]:
        if not self._heights:
            return None
        heights = self.heights()
        return heights[0], heights[-1]

    def __contains__(self, height: int) -> bool:
        return height in self._heights

    def iter_blocks(self) -> Iterator[BlockRecord]:
        """Iterate over all stored blocks in ascending height order."""
        blocks: List[BlockRecord] = []
        for chunk in self._chunks:
            blocks.extend(chunk.load())
        blocks.extend(self._pending)
        for block in sorted(blocks, key=lambda item: item.height):
            yield block

    def blocks(self) -> List[BlockRecord]:
        return list(self.iter_blocks())

    def compression_stats(self) -> CompressionStats:
        """Aggregate byte accounting over all flushed chunks."""
        return accumulate(chunk.stats for chunk in self._chunks)

    def to_frame(self) -> TxFrame:
        """Decompress every stored block straight into a columnar frame.

        This is the bridge from the crawl path to the analysis substrate:
        the frame is the canonical input of the single-pass engine.
        """
        frame = TxFrame()
        frame.extend_from_blocks(self.iter_blocks())
        return frame


@dataclass
class StoredFrameChunk:
    """One compressed chunk of consecutive frame rows."""

    chunk_id: int
    row_count: int
    stats: CompressionStats
    blob: Optional[bytes] = None
    path: Optional[str] = None

    def payload(self) -> Dict:
        """Decompress the chunk's columnar payload."""
        if self.blob is not None:
            return decompress_json(self.blob)
        if self.path is not None:
            with open(self.path, "rb") as handle:
                return decompress_json(handle.read())
        raise CollectionError(f"frame chunk {self.chunk_id} has no data attached")


class FrameStore:
    """Append-only chunked gzip store of columnar transaction rows.

    Rows are compressed straight from a :class:`TxFrame`'s columns: each
    chunk is the frame's columnar payload for a row slice (typed columns
    plus the string pools), so storing a crawled or generated frame never
    materialises a single :class:`TransactionRecord`.
    """

    def __init__(self, chunk_rows: int = 50_000, directory: Optional[str] = None):
        if chunk_rows <= 0:
            raise CollectionError("chunk_rows must be positive")
        self.chunk_rows = chunk_rows
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._chunks: List[StoredFrameChunk] = []
        self._staging = TxFrame()
        self._row_count = 0

    @classmethod
    def open(cls, directory: str, chunk_rows: int = 50_000) -> "FrameStore":
        """Reopen a directory-backed store written by an earlier process.

        Chunk files are read into memory and their row counts recovered from
        the payloads, so the reopened store serves :meth:`to_frame` without
        touching the directory again.  The raw-byte accounting of the
        original write is not persisted; reopened chunks report zero raw
        bytes, which only affects the compression-ratio statistic.

        This is the load half of the CLI's dataset cache: a generated frame
        is chunk-compressed once, and later runs rehydrate it here instead
        of regenerating the workload.
        """
        store = cls(chunk_rows=chunk_rows, directory=directory)
        paths = sorted(glob.glob(os.path.join(directory, "frame-chunk-*.json.gz")))
        for chunk_id, path in enumerate(paths):
            with open(path, "rb") as handle:
                blob = handle.read()
            payload = decompress_json(blob)
            chunk = StoredFrameChunk(
                chunk_id=chunk_id,
                row_count=len(payload["transaction_id"]),
                stats=CompressionStats(
                    raw_bytes=0, compressed_bytes=len(blob), chunk_count=1
                ),
                blob=blob,
                path=path,
            )
            store._chunks.append(chunk)
            store._row_count += chunk.row_count
        return store

    # -- writing -----------------------------------------------------------------
    def add_frame(self, frame: TxFrame) -> None:
        """Chunk-compress every row of ``frame`` directly from its columns."""
        total = len(frame)
        for start in range(0, total, self.chunk_rows):
            stop = min(start + self.chunk_rows, total)
            self._write_chunk(frame, range(start, stop))

    def add_records(self, records: Iterable[TransactionRecord]) -> None:
        """Buffer a record stream, flushing a chunk whenever one fills up."""
        staging = self._staging
        for record in records:
            staging.append(record)
            if len(staging) >= self.chunk_rows:
                self.flush()
                staging = self._staging

    def flush(self) -> Optional[StoredFrameChunk]:
        """Compress the staging buffer into a chunk (no-op when empty)."""
        if not len(self._staging):
            return None
        chunk = self._write_chunk(self._staging, None)
        self._staging = TxFrame()
        return chunk

    def _write_chunk(self, frame: TxFrame, rows: Optional[range]) -> StoredFrameChunk:
        payload = frame.to_payload(rows)
        blob = compress_json(payload)
        raw_size = len(compress_json(payload, level=0))  # level-0 gzip ~ raw + framing
        row_count = len(rows) if rows is not None else len(frame)
        chunk = StoredFrameChunk(
            chunk_id=len(self._chunks),
            row_count=row_count,
            stats=CompressionStats(
                raw_bytes=raw_size, compressed_bytes=len(blob), chunk_count=1
            ),
        )
        if self.directory is not None:
            chunk.path = os.path.join(
                self.directory, f"frame-chunk-{chunk.chunk_id:06d}.json.gz"
            )
            with open(chunk.path, "wb") as handle:
                handle.write(blob)
        else:
            chunk.blob = blob
        self._chunks.append(chunk)
        self._row_count += row_count
        return chunk

    # -- reading ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._row_count + len(self._staging)

    @property
    def row_count(self) -> int:
        return self._row_count + len(self._staging)

    @property
    def chunk_count(self) -> int:
        return len(self._chunks) + (1 if len(self._staging) else 0)

    def to_frame(self) -> TxFrame:
        """Decompress every chunk back into one columnar frame."""
        frame = TxFrame()
        for chunk in self._chunks:
            if not len(frame):
                # First chunk into an empty frame: codes pass through, so
                # the bulk column load applies (no per-row append loop).
                frame._load_payload_bulk(chunk.payload())
            else:
                frame.extend_from_payload(chunk.payload())
        if len(self._staging):
            frame.extend_from_payload(self._staging.to_payload())
        return frame

    def iter_records(self) -> Iterator[TransactionRecord]:
        """Materialise the stored rows as canonical records (compat path)."""
        for chunk in self._chunks:
            chunk_frame = TxFrame.from_payload(chunk.payload())
            yield from chunk_frame.iter_records()
        yield from self._staging.iter_records()

    def compression_stats(self) -> CompressionStats:
        """Aggregate byte accounting over all flushed chunks."""
        return accumulate(chunk.stats for chunk in self._chunks)
