"""Gzip-compressed block and frame stores.

The paper stores roughly 200 GB of gzip-compressed raw block data across the
three chains (Figure 2).  :class:`BlockStore` keeps blocks in fixed-size
chunks, each serialised to JSON and gzip-compressed, with byte-level
accounting so the dataset characterisation can report the storage column of
Figure 2.  :class:`FrameStore` does the same for the columnar analysis
substrate: rows are chunk-compressed **directly from a**
:class:`~repro.common.columns.TxFrame` — the columnar payload both skips
record materialisation entirely and compresses better than per-record
dictionaries.  Both stores can live purely in memory (the default, used by
tests and benchmarks) or spill chunks to a directory on disk.

Directory-backed frame stores additionally maintain a **manifest**
(``manifest.json``, written atomically after every chunk): the manifest is
the store's commit point, recording each durable chunk's row count, byte
size and per-chain height bounds.  A crash mid-chunk leaves a chunk file
that the manifest never references; :meth:`FrameStore.open` detects such
stale partials (as well as manifest-listed files whose size no longer
matches) and cleans them, so the incremental ingestion pipeline can always
reopen a store at its last durable watermark and re-ingest only what was
lost.  :class:`FrameSink` adapts a frame store to the block-crawler's store
protocol, which is how a crawl streams straight into the columnar substrate
without materialising block-record lists.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.columns import CHAIN_CODES, CHAIN_ORDER, TxFrame
from repro.common.compression import (
    CompressionStats,
    accumulate,
    compress_json,
    compress_records,
    decompress_json,
)
from repro.common.errors import CollectionError
from repro.common.records import BlockRecord, TransactionRecord

#: Manifest schema version; bump when the manifest layout changes.
MANIFEST_VERSION = 1

#: Manifest file name inside a directory-backed frame store.
MANIFEST_NAME = "manifest.json"


@dataclass
class StoredChunk:
    """One compressed chunk of consecutive blocks."""

    chunk_id: int
    min_height: int
    max_height: int
    block_count: int
    stats: CompressionStats
    blob: Optional[bytes] = None
    path: Optional[str] = None

    def load(self) -> List[BlockRecord]:
        """Decompress and decode the chunk's blocks."""
        if self.blob is not None:
            payload = decompress_json(self.blob)
        elif self.path is not None:
            with open(self.path, "rb") as handle:
                payload = decompress_json(handle.read())
        else:
            raise CollectionError(f"chunk {self.chunk_id} has no data attached")
        return [BlockRecord.from_dict(item) for item in payload]


class BlockStore:
    """Append-only store of crawled blocks, chunked and gzip-compressed."""

    def __init__(self, chunk_size: int = 500, directory: Optional[str] = None):
        if chunk_size <= 0:
            raise CollectionError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._chunks: List[StoredChunk] = []
        self._pending: List[BlockRecord] = []
        self._heights: Dict[int, int] = {}
        self._block_count = 0
        self._transaction_count = 0
        self._action_count = 0

    # -- writing -----------------------------------------------------------------
    def add(self, block: BlockRecord) -> None:
        """Append one block; duplicate heights are rejected."""
        if block.height in self._heights:
            raise CollectionError(f"block {block.height} already stored")
        self._heights[block.height] = len(self._chunks)
        self._pending.append(block)
        self._block_count += 1
        self._transaction_count += block.transaction_count
        self._action_count += block.action_count
        if len(self._pending) >= self.chunk_size:
            self.flush()

    def add_many(self, blocks: Iterable[BlockRecord]) -> None:
        for block in blocks:
            self.add(block)

    def flush(self) -> Optional[StoredChunk]:
        """Compress pending blocks into a chunk (no-op when nothing pends)."""
        if not self._pending:
            return None
        payload = [block.to_dict() for block in self._pending]
        blob = compress_records(payload)
        raw_size = len(
            compress_records(payload, level=0)
        )  # level-0 gzip ~ raw payload + framing
        stats = CompressionStats(
            raw_bytes=raw_size, compressed_bytes=len(blob), chunk_count=1
        )
        chunk = StoredChunk(
            chunk_id=len(self._chunks),
            min_height=min(block.height for block in self._pending),
            max_height=max(block.height for block in self._pending),
            block_count=len(self._pending),
            stats=stats,
        )
        if self.directory is not None:
            chunk.path = os.path.join(self.directory, f"chunk-{chunk.chunk_id:06d}.json.gz")
            with open(chunk.path, "wb") as handle:
                handle.write(blob)
        else:
            chunk.blob = blob
        for block in self._pending:
            self._heights[block.height] = chunk.chunk_id
        self._chunks.append(chunk)
        self._pending = []
        return chunk

    # -- reading ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._block_count

    @property
    def block_count(self) -> int:
        return self._block_count

    @property
    def transaction_count(self) -> int:
        return self._transaction_count

    @property
    def action_count(self) -> int:
        return self._action_count

    @property
    def chunk_count(self) -> int:
        return len(self._chunks) + (1 if self._pending else 0)

    def heights(self) -> List[int]:
        return sorted(self._heights)

    def height_range(self) -> Optional[tuple]:
        if not self._heights:
            return None
        heights = self.heights()
        return heights[0], heights[-1]

    def __contains__(self, height: int) -> bool:
        return height in self._heights

    def iter_blocks(self) -> Iterator[BlockRecord]:
        """Iterate over all stored blocks in ascending height order."""
        blocks: List[BlockRecord] = []
        for chunk in self._chunks:
            blocks.extend(chunk.load())
        blocks.extend(self._pending)
        for block in sorted(blocks, key=lambda item: item.height):
            yield block

    def blocks(self) -> List[BlockRecord]:
        return list(self.iter_blocks())

    def compression_stats(self) -> CompressionStats:
        """Aggregate byte accounting over all flushed chunks."""
        return accumulate(chunk.stats for chunk in self._chunks)

    def to_frame(self) -> TxFrame:
        """Decompress every stored block straight into a columnar frame.

        This is the bridge from the crawl path to the analysis substrate:
        the frame is the canonical input of the single-pass engine.
        """
        frame = TxFrame()
        frame.extend_from_blocks(self.iter_blocks())
        return frame


def _payload_heights(payload: Dict) -> Dict[str, List[int]]:
    """Per-chain ``[min, max]`` block-height bounds of one chunk payload."""
    heights: Dict[str, List[int]] = {}
    columns = payload["columns"]
    for chain_code, height in zip(columns["chain_code"], columns["block_height"]):
        chain = CHAIN_ORDER[chain_code].value
        bounds = heights.get(chain)
        if bounds is None:
            heights[chain] = [height, height]
        else:
            if height < bounds[0]:
                bounds[0] = height
            elif height > bounds[1]:
                bounds[1] = height
    return heights


@dataclass
class StoredFrameChunk:
    """One compressed chunk of consecutive frame rows."""

    chunk_id: int
    row_count: int
    stats: CompressionStats
    blob: Optional[bytes] = None
    path: Optional[str] = None
    #: Per-chain ``[min_height, max_height]`` of the chunk's rows, keyed by
    #: the chain value string.  Recorded in the manifest so a reopened store
    #: knows its crawl watermark without decompressing anything.
    heights: Dict[str, List[int]] = field(default_factory=dict)

    def payload(self) -> Dict:
        """Decompress the chunk's columnar payload."""
        if self.blob is not None:
            return decompress_json(self.blob)
        if self.path is not None:
            with open(self.path, "rb") as handle:
                return decompress_json(handle.read())
        raise CollectionError(f"frame chunk {self.chunk_id} has no data attached")


class FrameStore:
    """Append-only chunked gzip store of columnar transaction rows.

    Rows are compressed straight from a :class:`TxFrame`'s columns: each
    chunk is the frame's columnar payload for a row slice (typed columns
    plus the string pools), so storing a crawled or generated frame never
    materialises a single :class:`TransactionRecord`.
    """

    def __init__(self, chunk_rows: int = 50_000, directory: Optional[str] = None):
        if chunk_rows <= 0:
            raise CollectionError("chunk_rows must be positive")
        self.chunk_rows = chunk_rows
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._chunks: List[StoredFrameChunk] = []
        self._staging = TxFrame()
        self._row_count = 0
        self._height_bounds: Dict[str, List[int]] = {}
        #: Stale partial chunk files removed by :meth:`open` (crash cleanup).
        self.cleaned_paths: List[str] = []

    @classmethod
    def open(cls, directory: str, chunk_rows: int = 50_000) -> "FrameStore":
        """Reopen a directory-backed store written by an earlier process.

        With a manifest present (every store written by this version has
        one) the open is **lazy and crash-safe**: only the manifest is read;
        chunk payloads stay on disk until :meth:`to_frame` needs them.  The
        manifest is the commit point of every append, so two kinds of stale
        data are detected and cleaned here:

        * chunk files on disk that the manifest never committed (an ingest
          died after writing the file but before the manifest rename), and
        * manifest-listed files whose on-disk size no longer matches the
          committed byte count (a torn write); the manifest is truncated at
          the first such chunk, dropping it and everything after it.

        Cleaned file paths are reported in :attr:`cleaned_paths` so the
        pipeline can log what a crash cost; the store reopens at its last
        durable watermark and appends continue from there.

        Directories written before the manifest existed fall back to the
        legacy glob-and-load path (chunks read eagerly, no recovery).

        The raw-byte accounting of the original write is persisted through
        the manifest; legacy reopened chunks report zero raw bytes, which
        only affects the compression-ratio statistic.
        """
        store = cls(chunk_rows=chunk_rows, directory=directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            store._open_from_manifest(manifest_path)
            return store
        paths = sorted(glob.glob(os.path.join(directory, "frame-chunk-*.json.gz")))
        for chunk_id, path in enumerate(paths):
            with open(path, "rb") as handle:
                blob = handle.read()
            payload = decompress_json(blob)
            chunk = StoredFrameChunk(
                chunk_id=chunk_id,
                row_count=len(payload["transaction_id"]),
                stats=CompressionStats(
                    raw_bytes=0, compressed_bytes=len(blob), chunk_count=1
                ),
                blob=blob,
                path=path,
                heights=_payload_heights(payload),
            )
            store._chunks.append(chunk)
            store._row_count += chunk.row_count
            store._merge_height_bounds(chunk.heights)
        return store

    # -- manifest ----------------------------------------------------------------
    def _open_from_manifest(self, manifest_path: str) -> None:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("version") != MANIFEST_VERSION:
            raise CollectionError(
                f"unsupported frame-store manifest version {manifest.get('version')!r}"
            )
        committed: List[StoredFrameChunk] = []
        truncated = False
        for entry in manifest["chunks"]:
            path = os.path.join(self.directory, entry["file"])
            compressed = int(entry["compressed_bytes"])
            if (
                truncated
                or not os.path.exists(path)
                or os.path.getsize(path) != compressed
            ):
                # Torn or missing committed chunk: the store is only
                # consistent up to the previous chunk, so this one and
                # everything after it is dropped.
                truncated = True
                if os.path.exists(path):
                    self.cleaned_paths.append(path)
                    os.remove(path)
                continue
            committed.append(
                StoredFrameChunk(
                    chunk_id=len(committed),
                    row_count=int(entry["rows"]),
                    stats=CompressionStats(
                        raw_bytes=int(entry.get("raw_bytes", 0)),
                        compressed_bytes=compressed,
                        chunk_count=1,
                    ),
                    path=path,
                    heights={
                        chain: [int(low), int(high)]
                        for chain, (low, high) in entry.get("heights", {}).items()
                    },
                )
            )
        committed_files = {os.path.basename(chunk.path) for chunk in committed}
        for path in sorted(glob.glob(os.path.join(self.directory, "frame-chunk-*.json.gz"))):
            if os.path.basename(path) not in committed_files:
                # Uncommitted partial (crash between chunk write and the
                # manifest rename): clean it so chunk ids stay dense.
                self.cleaned_paths.append(path)
                os.remove(path)
        for chunk in committed:
            self._chunks.append(chunk)
            self._row_count += chunk.row_count
            self._merge_height_bounds(chunk.heights)
        if truncated or self.cleaned_paths:
            self._write_manifest()

    def _merge_height_bounds(self, heights: Dict[str, List[int]]) -> None:
        for chain, (low, high) in heights.items():
            bounds = self._height_bounds.get(chain)
            if bounds is None:
                self._height_bounds[chain] = [low, high]
            else:
                bounds[0] = min(bounds[0], low)
                bounds[1] = max(bounds[1], high)

    def _write_manifest(self) -> None:
        """Atomically commit the chunk list (write-temp + rename)."""
        if self.directory is None:
            return
        manifest = {
            "version": MANIFEST_VERSION,
            "chunk_rows": self.chunk_rows,
            "row_count": self._row_count,
            "chunks": [
                {
                    "file": os.path.basename(chunk.path),
                    "rows": chunk.row_count,
                    "compressed_bytes": chunk.stats.compressed_bytes,
                    "raw_bytes": chunk.stats.raw_bytes,
                    "heights": chunk.heights,
                }
                for chunk in self._chunks
            ],
        }
        path = os.path.join(self.directory, MANIFEST_NAME)
        temp_path = path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.replace(temp_path, path)

    # -- writing -----------------------------------------------------------------
    def add_frame(self, frame: TxFrame) -> None:
        """Chunk-compress every row of ``frame`` directly from its columns."""
        total = len(frame)
        for start in range(0, total, self.chunk_rows):
            stop = min(start + self.chunk_rows, total)
            self._write_chunk(frame, range(start, stop))

    def add_records(self, records: Iterable[TransactionRecord]) -> None:
        """Buffer a record stream, flushing a chunk whenever one fills up."""
        staging = self._staging
        for record in records:
            staging.append(record)
            if len(staging) >= self.chunk_rows:
                self.flush()
                staging = self._staging

    def flush(self) -> Optional[StoredFrameChunk]:
        """Compress the staging buffer into a chunk (no-op when empty)."""
        if not len(self._staging):
            return None
        chunk = self._write_chunk(self._staging, None)
        self._staging = TxFrame()
        return chunk

    def _write_chunk(self, frame: TxFrame, rows: Optional[range]) -> StoredFrameChunk:
        payload = frame.to_payload(rows)
        blob = compress_json(payload)
        raw_size = len(compress_json(payload, level=0))  # level-0 gzip ~ raw + framing
        row_count = len(rows) if rows is not None else len(frame)
        chunk = StoredFrameChunk(
            chunk_id=len(self._chunks),
            row_count=row_count,
            stats=CompressionStats(
                raw_bytes=raw_size, compressed_bytes=len(blob), chunk_count=1
            ),
            heights=_payload_heights(payload),
        )
        if self.directory is not None:
            chunk.path = os.path.join(
                self.directory, f"frame-chunk-{chunk.chunk_id:06d}.json.gz"
            )
            with open(chunk.path, "wb") as handle:
                handle.write(blob)
        else:
            chunk.blob = blob
        self._chunks.append(chunk)
        self._row_count += row_count
        self._merge_height_bounds(chunk.heights)
        if self.directory is not None:
            # The manifest rename is the commit point: a crash before it
            # leaves an uncommitted chunk file that open() will clean up.
            self._write_manifest()
        return chunk

    # -- reading ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._row_count + len(self._staging)

    @property
    def row_count(self) -> int:
        return self._row_count + len(self._staging)

    @property
    def chunk_count(self) -> int:
        return len(self._chunks) + (1 if len(self._staging) else 0)

    @property
    def flushed_rows(self) -> int:
        """Rows committed to chunks — the store's durable row watermark.

        Staged rows are excluded: they live only in this process and are
        lost on a crash, so checkpoints must never cover them.
        """
        return self._row_count

    def height_bounds(self, chain) -> Optional[Tuple[int, int]]:
        """(min, max) committed block height for ``chain`` (or its value string).

        This is the crawl watermark: a tail crawl resumes at ``max + 1``.
        ``None`` when the chain has no committed rows.
        """
        key = getattr(chain, "value", chain)
        bounds = self._height_bounds.get(key)
        if bounds is None:
            return None
        return bounds[0], bounds[1]

    def to_frame(self) -> TxFrame:
        """Decompress every chunk back into one columnar frame."""
        frame = TxFrame()
        for chunk in self._chunks:
            if not len(frame):
                # First chunk into an empty frame: codes pass through, so
                # the bulk column load applies (no per-row append loop).
                frame._load_payload_bulk(chunk.payload())
            else:
                frame.extend_from_payload(chunk.payload())
        if len(self._staging):
            frame.extend_from_payload(self._staging.to_payload())
        return frame

    def payload_tail(self, start_row: int) -> Iterator[Dict]:
        """Committed-row payloads at or past ``start_row``, in row order.

        The first yielded payload is sliced so its rows begin exactly at
        ``start_row`` even when that row falls mid-chunk.  This is the
        resident-frame catch-up path: a long-lived process extends its
        in-memory frame with only the chunks committed since it last
        looked, instead of rehydrating the whole archive.
        """
        covered = 0
        for chunk in self._chunks:
            end = covered + chunk.row_count
            if end > start_row:
                payload = chunk.payload()
                skip = start_row - covered
                if skip > 0:
                    payload = {
                        "columns": {
                            name: column[skip:]
                            for name, column in payload["columns"].items()
                        },
                        "transaction_id": payload["transaction_id"][skip:],
                        "metadata": payload["metadata"][skip:],
                        "pools": payload["pools"],
                    }
                yield payload
            covered = end

    def iter_records(self) -> Iterator[TransactionRecord]:
        """Materialise the stored rows as canonical records (compat path)."""
        for chunk in self._chunks:
            chunk_frame = TxFrame.from_payload(chunk.payload())
            yield from chunk_frame.iter_records()
        yield from self._staging.iter_records()

    def compression_stats(self) -> CompressionStats:
        """Aggregate byte accounting over all flushed chunks."""
        return accumulate(chunk.stats for chunk in self._chunks)


class FrameSink:
    """Adapts a :class:`FrameStore` to the block-crawler's store protocol.

    This is the crawler's frame-sink path: instead of accumulating
    ``BlockRecord`` lists in a :class:`BlockStore` that must later be
    converted, each crawled block's transactions flow straight into the
    columnar store.  The sink buffers at most one crawl window of blocks
    (the crawler fetches in *reverse* chronological order, so the buffer is
    re-sorted ascending at :meth:`flush` — keeping per-chain rows in
    time order, which is what the analysis engine's sorted fast paths and
    the incremental reporter's append-only assumption rely on) and then
    appends their rows to the store and commits a chunk.

    A sink serves one chain's crawl (heights are chain-local).  ``height in
    sink`` answers from the heights ingested through this sink plus the
    store's committed height bounds for the chain.  The bounds check treats
    the committed range as contiguous, so crawl failures that leave holes
    *inside* the range must be declared via ``missing_heights`` — otherwise
    a hole would read as stored and never be re-fetched.  The pipeline's
    tail crawls persist each crawl's ``failed_blocks`` and pass them back
    here on the next tick, which is what turns a transient fetch failure
    into a retried block instead of silent data loss (see
    :func:`repro.pipeline.live.tail_crawl`).
    """

    def __init__(self, store: FrameStore, chain=None, missing_heights=()):
        self.store = store
        self.chain_value: Optional[str] = getattr(chain, "value", chain)
        self._pending: List[BlockRecord] = []
        self._pending_heights: set = set()
        self._heights: set = set()
        self._missing: set = set(missing_heights)
        self._block_count = 0
        self._transaction_count = 0
        self._action_count = 0

    # -- crawler store protocol ---------------------------------------------------
    def add(self, block: BlockRecord) -> None:
        """Buffer one crawled block; duplicate heights are rejected."""
        if block.height in self:
            raise CollectionError(f"block {block.height} already stored")
        if self.chain_value is None:
            self.chain_value = block.chain.value
        self._missing.discard(block.height)
        self._pending.append(block)
        self._pending_heights.add(block.height)
        self._block_count += 1
        self._transaction_count += block.transaction_count
        self._action_count += block.action_count

    def flush(self) -> int:
        """Append the buffered blocks' rows to the store, oldest first.

        Returns the number of rows appended.  The store's own chunking
        decides durability boundaries; a final ``store.flush()`` commits the
        tail chunk so a completed crawl window is always durable.
        """
        if not self._pending:
            return 0
        self._pending.sort(key=lambda block: block.height)
        appended = 0
        for block in self._pending:
            self.store.add_records(block.transactions)
            appended += len(block.transactions)
        self._heights.update(self._pending_heights)
        self._pending = []
        self._pending_heights = set()
        self.store.flush()
        return appended

    def __contains__(self, height: int) -> bool:
        if height in self._pending_heights or height in self._heights:
            return True
        if height in self._missing or self.chain_value is None:
            return False
        bounds = self.store.height_bounds(self.chain_value)
        return bounds is not None and bounds[0] <= height <= bounds[1]

    @property
    def missing_heights(self):
        """Declared holes inside the committed range still awaiting a fetch."""
        return frozenset(self._missing)

    @property
    def block_count(self) -> int:
        return self._block_count

    @property
    def transaction_count(self) -> int:
        return self._transaction_count

    @property
    def action_count(self) -> int:
        return self._action_count
