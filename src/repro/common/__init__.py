"""Shared substrate used by every chain simulator and the analysis pipeline.

The common package provides the vocabulary the rest of the library speaks:

* :mod:`repro.common.records` — chain-agnostic block / transaction records.
* :mod:`repro.common.clock` — a deterministic simulation clock.
* :mod:`repro.common.rng` — seeded random-number helpers (zipf, categorical,
  log-normal) used by the workload generators.
* :mod:`repro.common.jsonrpc` — a minimal JSON-RPC 2.0 request/response
  framing layer used by the simulated RPC endpoints.
* :mod:`repro.common.ratelimit` — token-bucket rate limiting, used to model
  the public endpoints' rate limits.
* :mod:`repro.common.retry` — retry/backoff policies for the crawler.
* :mod:`repro.common.compression` — gzip size accounting for the block store.
* :mod:`repro.common.errors` — the exception hierarchy.
"""

from repro.common.clock import SimulationClock
from repro.common.errors import (
    ChainError,
    CollectionError,
    ConfigurationError,
    RateLimitExceeded,
    ReproError,
    RpcError,
)
from repro.common.records import (
    BlockRecord,
    ChainId,
    TransactionRecord,
)
from repro.common.rng import DeterministicRng

__all__ = [
    "BlockRecord",
    "ChainError",
    "ChainId",
    "CollectionError",
    "ConfigurationError",
    "DeterministicRng",
    "RateLimitExceeded",
    "ReproError",
    "RpcError",
    "SimulationClock",
    "TransactionRecord",
]
