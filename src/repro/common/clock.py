"""Deterministic simulation clock.

The paper observes three months of real traffic (2019-10-01 → 2019-12-31).
The simulators replay that window on a virtual clock so the whole pipeline is
deterministic and fast.  Timestamps are plain Unix epoch seconds (UTC); the
helpers below convert between epoch seconds and ISO dates without touching
the wall clock.
"""

from __future__ import annotations

import calendar
import datetime as _dt
from dataclasses import dataclass, field

SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600


def timestamp_from_iso(iso_date: str) -> float:
    """Convert ``YYYY-MM-DD`` or ``YYYY-MM-DDTHH:MM:SS`` to epoch seconds (UTC)."""
    if "T" in iso_date:
        parsed = _dt.datetime.strptime(iso_date, "%Y-%m-%dT%H:%M:%S")
    else:
        parsed = _dt.datetime.strptime(iso_date, "%Y-%m-%d")
    return float(calendar.timegm(parsed.timetuple()))


def iso_from_timestamp(timestamp: float) -> str:
    """Render epoch seconds as ``YYYY-MM-DDTHH:MM:SS`` (UTC)."""
    parsed = _dt.datetime.utcfromtimestamp(timestamp)
    return parsed.strftime("%Y-%m-%dT%H:%M:%S")


def date_from_timestamp(timestamp: float) -> str:
    """Render epoch seconds as ``YYYY-MM-DD`` (UTC)."""
    return iso_from_timestamp(timestamp)[:10]


@dataclass
class SimulationClock:
    """A monotonically advancing virtual clock.

    Parameters
    ----------
    start:
        Initial time, either epoch seconds or an ISO date string.
    """

    start: float = 0.0
    _now: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if isinstance(self.start, str):
            self.start = timestamp_from_iso(self.start)
        self._now = float(self.start)

    @property
    def now(self) -> float:
        """Current virtual time in epoch seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def elapsed(self) -> float:
        """Seconds elapsed since the clock was created."""
        return self._now - float(self.start)

    def iso(self) -> str:
        """Current time as an ISO string."""
        return iso_from_timestamp(self._now)
