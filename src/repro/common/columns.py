"""Columnar transaction storage: the canonical analysis substrate.

The seed pipeline materialised each chain's traffic as a
``List[TransactionRecord]`` of frozen dataclasses and let every analysis
module re-iterate the whole list.  At paper scale (~530M transactions) that
representation is both memory-hungry (one boxed object plus a metadata dict
per transaction) and slow (attribute access per field per pass).

:class:`TxFrame` stores the same canonical fields as parallel typed columns:

* numeric fields (``timestamp``, ``block_height``, ``amount``, ``fee``,
  ``success``) live in compact ``array.array`` buffers;
* low-cardinality strings (``type``, ``sender``, ``receiver``, ``contract``,
  ``currency``, ``issuer``, ``error_code``) are interned into
  :class:`StringPool` dictionaries and stored as integer codes;
* high-cardinality strings (``transaction_id``) and the free-form
  ``metadata`` mapping stay in plain lists (empty metadata is stored as
  ``None``); metadata loaded from binary chunks additionally defers its
  JSON parse until first access (see :class:`LazyMetadata`).

Appending from a generator is amortised O(1) per record, so workload
generators can stream straight into a frame without ever materialising
intermediate block lists.  :class:`TxView` provides zero-copy chain and
time-window views: a view shares the frame's column buffers and only carries
a row-index sequence, which is what the single-pass analysis engine iterates.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common import kernels
from repro.common.records import BlockRecord, ChainId, TransactionRecord

#: Fixed chain-code order; ``chain_code`` column stores indexes into this.
CHAIN_ORDER: Tuple[ChainId, ...] = (ChainId.EOS, ChainId.TEZOS, ChainId.XRP)

#: ChainId → integer code used by the ``chain_code`` column.
CHAIN_CODES: Dict[ChainId, int] = {chain: index for index, chain in enumerate(CHAIN_ORDER)}
_CHAIN_CODES = CHAIN_CODES

#: Canonical numeric columns of a :class:`TxFrame` and their ``array``
#: typecodes, in frame order.  The binary chunk format
#: (:mod:`repro.collection.chunkformat`) shares this table so a chunk's
#: column blobs carry exactly the frame's machine representation — decode
#: can wrap the stored bytes without converting a single element.
NUMERIC_TYPECODES: Dict[str, str] = {
    "chain_code": "b",
    "block_height": "q",
    "timestamp": "d",
    "type_code": "i",
    "sender_code": "i",
    "receiver_code": "i",
    "contract_code": "i",
    "amount": "d",
    "currency_code": "i",
    "issuer_code": "i",
    "fee": "d",
    "success": "b",
    "error_code": "i",
}


class StringPool:
    """Bidirectional string ↔ integer-code interning table.

    Interning is append-only: a string keeps its code for the lifetime of the
    pool, so codes stored in a column stay valid as the frame grows.
    """

    __slots__ = ("_codes", "_values")

    def __init__(self, values: Optional[Iterable[str]] = None):
        self._values: List[str] = []
        self._codes: Dict[str, int] = {}
        if values is not None:
            for value in values:
                self.intern(value)

    def intern(self, value: str) -> int:
        """Code of ``value``, assigning the next free code on first sight."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def code(self, value: str) -> Optional[int]:
        """Code of ``value`` if already interned, else ``None`` (no insert)."""
        return self._codes.get(value)

    def value(self, code: int) -> str:
        return self._values[code]

    @property
    def values(self) -> List[str]:
        """The interned strings, indexable by code (do not mutate)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._codes


class LazyMetadata:
    """A deferred block of per-row metadata from a decoded binary chunk.

    The v2 chunk decoder hands frames one of these instead of a parsed
    list: the metadata bytes (already covered by the chunk checksum) are
    parsed on first element access and memoised.  Chunk-range scans that
    never read metadata — every purely numeric figure kernel — skip the
    parse entirely, which on metadata-heavy workloads is most of the
    chunk-decode cost.

    ``loader`` returns the parsed ``rows``-long list of dicts-or-``None``
    and raises the decoder's own error type on a malformed segment; that
    error therefore surfaces at first *access* rather than at decode time
    (the chunk checksum makes a post-decode parse failure pathological).
    """

    __slots__ = ("_loader", "_rows", "_items")

    def __init__(self, rows: int, loader) -> None:
        self._rows = rows
        self._loader = loader
        self._items: Optional[List[Optional[Dict[str, Any]]]] = None

    def materialise(self) -> List[Optional[Dict[str, Any]]]:
        """The parsed metadata list (parsing and memoising on first call)."""
        if self._items is None:
            self._items = self._loader()
            self._loader = None
        return self._items

    @property
    def loaded(self) -> bool:
        return self._items is not None

    def __len__(self) -> int:
        return self._rows

    def __getitem__(self, index):
        return self.materialise()[index]

    def __iter__(self):
        return iter(self.materialise())


RowIndices = Union[range, Sequence[int]]


# -- ndarray views ---------------------------------------------------------------------
#
# The numeric columns are stdlib ``array.array`` buffers — that stays the
# append path (amortised O(1) per record, no NumPy dependency for ingestion
# or checkpoints).  For the vectorized kernel backend the same buffers are
# exposed as **zero-copy ndarray views** through the buffer protocol: no
# bytes move, the ndarray simply aliases the array's memory.  Views are
# snapshots of the buffer at creation time — appending to the frame may
# reallocate the underlying buffer, so a view must not outlive the pass it
# was created for (accumulators take views at bind time; frames never grow
# during a scan).


def as_ndarray(column: array):
    """Zero-copy, read-only ndarray view of an ``array.array`` buffer.

    The dtype is derived from the array's typecode; if NumPy's dtype for
    that typecode does not match the array's item size (exotic platforms)
    the data is copied instead of aliased — same values either way.
    """
    np = kernels.numpy_module()
    dtype = np.dtype(column.typecode)
    if dtype.itemsize != column.itemsize:  # pragma: no cover - platform skew
        view = np.array(column, dtype=dtype)
    else:
        view = np.frombuffer(column, dtype=dtype)
    view.flags.writeable = False
    return view


def as_index_rows(rows: RowIndices):
    """Row indices as an ``int64`` ndarray (ranges pass through untouched).

    ``array('q')`` row sets — what chain and filtered views carry — alias
    their buffer (zero-copy); ndarrays pass through; any other sequence is
    materialised.  The engine funnels every scan block through this, so the
    vectorized kernels always see either a ``range`` or an index ndarray.
    """
    np = kernels.numpy_module()
    if isinstance(rows, range) or isinstance(rows, np.ndarray):
        return rows
    if isinstance(rows, array) and rows.itemsize == np.dtype(np.int64).itemsize:
        return as_ndarray(rows)
    return np.asarray(rows, dtype=np.int64)


def gather_np(column, rows: RowIndices):
    """Values of ``column`` at ``rows`` as an ndarray (zero-copy for slices).

    Contiguous ranges become ndarray slices of the column view (no copy);
    index arrays gather with one C fancy-indexing call.  ``column`` may be
    an ``array.array`` or an ndarray.
    """
    np = kernels.numpy_module()
    view = column if isinstance(column, np.ndarray) else as_ndarray(column)
    if isinstance(rows, range):
        return view[rows.start : rows.stop : rows.step]
    return view[as_index_rows(rows)]


def gather_array(column: array, rows: RowIndices) -> array:
    """Values of ``column`` at ``rows`` as a fresh ``array.array``.

    The index-array gather for callers that need stdlib-array output (the
    python-protocol ``gather`` in the engine): the gather itself runs as one
    C fancy-indexing call, and the result round-trips through raw machine
    bytes — never a per-element Python loop.
    """
    gathered = gather_np(column, rows)
    out = array(column.typecode)
    out.frombytes(gathered.tobytes())
    return out


class TxView:
    """A zero-copy view over a subset of a :class:`TxFrame`'s rows.

    The view shares the parent frame's column buffers; it only owns the row
    index sequence (a ``range`` for contiguous windows, an ``array`` of
    indexes for per-chain selections).  All analysis runs on (frame, rows)
    pairs, so slicing by chain or time window costs nothing per transaction.
    """

    __slots__ = ("frame", "rows")

    def __init__(self, frame: "TxFrame", rows: RowIndices):
        self.frame = frame
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[TransactionRecord]:
        return self.iter_records()

    def iter_records(self) -> Iterator[TransactionRecord]:
        """Materialise the view's rows as canonical records (compat path)."""
        record = self.frame.record
        for index in self.rows:
            yield record(index)

    def time_window(self, start: float, end: float) -> "TxView":
        """Sub-view of rows with ``start <= timestamp < end`` (zero-copy)."""
        return self.frame.time_window(start, end, rows=self.rows)

    def shard(self, count: int) -> List["TxView"]:
        """Split this view into ``count`` contiguous sub-views (zero-copy).

        See :meth:`TxFrame.shard`; shards partition the view's rows in row
        order, which is what makes shard-merged analysis deterministic.
        """
        return self.frame.shard(count, rows=self.rows)

    def chain_view(self, chain: ChainId) -> "TxView":
        """Sub-view of this view's rows that belong to ``chain``."""
        code = _CHAIN_CODES[chain]
        chain_codes = self.frame.chain_code
        if isinstance(self.rows, range) and len(self.rows) == len(self.frame):
            return self.frame.chain_view(chain)
        if kernels.use_numpy() and len(self.rows):
            np = kernels.numpy_module()
            indices = as_index_rows(self.rows)
            if isinstance(indices, range):
                indices = np.arange(
                    indices.start, indices.stop, indices.step, dtype=np.int64
                )
            matched = indices[gather_np(chain_codes, indices) == code]
            selected = array("q")
            selected.frombytes(matched.tobytes())
            return TxView(self.frame, selected)
        selected = array("q")
        for index in self.rows:
            if chain_codes[index] == code:
                selected.append(index)
        return TxView(self.frame, selected)

    def min_timestamp(self) -> Optional[float]:
        timestamps = self.frame.timestamp
        if kernels.use_numpy() and len(self.rows):
            return float(gather_np(timestamps, self.rows).min())
        return min((timestamps[i] for i in self.rows), default=None)

    def max_timestamp(self) -> Optional[float]:
        timestamps = self.frame.timestamp
        if kernels.use_numpy() and len(self.rows):
            return float(gather_np(timestamps, self.rows).max())
        return max((timestamps[i] for i in self.rows), default=None)


class TxFrame:
    """Columnar store of canonical transaction records.

    The frame is append-only.  Columns are exposed as public attributes for
    the analysis engine's accumulators (``chain_code``, ``timestamp``,
    ``type_code``, ``sender_code``, ...); string pools translate codes back
    to strings at finalisation time, off the per-row hot path.
    """

    __slots__ = (
        "chain_code",
        "transaction_id",
        "block_height",
        "timestamp",
        "type_code",
        "sender_code",
        "receiver_code",
        "contract_code",
        "amount",
        "currency_code",
        "issuer_code",
        "fee",
        "success",
        "error_code",
        "_meta_runs",
        "types",
        "accounts",
        "currencies",
        "errors",
        "_chain_rows",
        "_chain_bounds",
        "_timestamps_sorted",
        "_tx_ids_nd",
        "_tx_id_hashes",
    )

    def __init__(self) -> None:
        self.chain_code = array("b")
        self.transaction_id: List[str] = []
        self.block_height = array("q")
        self.timestamp = array("d")
        self.type_code = array("i")
        self.sender_code = array("i")
        self.receiver_code = array("i")
        self.contract_code = array("i")
        self.amount = array("d")
        self.currency_code = array("i")
        self.issuer_code = array("i")
        self.fee = array("d")
        self.success = array("b")
        self.error_code = array("i")
        #: Metadata storage: a list of runs, each either a plain list or an
        #: unparsed :class:`LazyMetadata` block (see the ``metadata`` property).
        self._meta_runs: List[Any] = [[]]
        #: ``type`` strings (action names, operation kinds, transaction types).
        self.types = StringPool()
        #: Account names: senders, receivers, contracts and issuers share one
        #: pool because on-chain the same address appears in several roles.
        self.accounts = StringPool()
        self.currencies = StringPool()
        self.errors = StringPool()
        self._chain_rows: Dict[int, array] = {}
        self._chain_bounds: Dict[int, Tuple[float, float]] = {}
        self._timestamps_sorted = True
        self._tx_ids_nd: Optional[Tuple[int, Any]] = None
        self._tx_id_hashes: Optional[array] = None

    # -- metadata ------------------------------------------------------------------
    @property
    def metadata(self) -> List[Optional[Mapping[str, Any]]]:
        """Per-row metadata as one plain list.

        Internally the column is a sequence of runs: plain lists (record
        appends, eager payload extends) interleaved with unparsed
        :class:`LazyMetadata` blocks from the binary chunk decoder.  The
        common case — a single plain run — returns that list directly, so
        every existing consumer keeps C-level list indexing.  The first
        access after a lazy extend flattens all runs (parsing the lazy
        blocks) into a single plain run and returns it; a frame whose
        metadata is never read never pays the parse.

        The returned list is the frame's own storage: callers may append
        through it, but a later lazy extend starts a new run, after which
        previously captured references are stale — capture at use time
        (accumulators re-bind per scan, which already guarantees this).
        """
        runs = self._meta_runs
        if len(runs) == 1 and type(runs[0]) is list:
            return runs[0]
        flat: List[Optional[Mapping[str, Any]]] = []
        for run in runs:
            flat.extend(run if type(run) is list else run.materialise())
        self._meta_runs = [flat]
        return flat

    def _extend_metadata(self, values: Any) -> None:
        """Extend the metadata column from payload data.

        A still-unparsed :class:`LazyMetadata` block is adopted as-is — no
        parse, no per-dict copy (chunk-decoded dicts are freshly built by
        the decoder and never mutated in place by the frame).  Anything
        else is copied defensively like the record append path.
        """
        if isinstance(values, LazyMetadata) and not values.loaded:
            self._meta_runs.append(values)
            return
        self.metadata.extend(dict(meta) if meta else None for meta in values)

    # -- writing -------------------------------------------------------------------
    def _register_row(self, chain_code: int, timestamp: float, row: int) -> None:
        """Shared per-row bookkeeping: sort flag, chain index, time bounds."""
        if self._timestamps_sorted and row and timestamp < self.timestamp[row - 1]:
            self._timestamps_sorted = False
        rows = self._chain_rows.get(chain_code)
        if rows is None:
            rows = self._chain_rows[chain_code] = array("q")
        rows.append(row)
        bounds = self._chain_bounds.get(chain_code)
        if bounds is None:
            self._chain_bounds[chain_code] = (timestamp, timestamp)
        else:
            low, high = bounds
            if timestamp < low or timestamp > high:
                self._chain_bounds[chain_code] = (
                    min(low, timestamp),
                    max(high, timestamp),
                )

    def append(self, record: TransactionRecord) -> None:
        """Append one canonical record (amortised O(1))."""
        chain_code = _CHAIN_CODES[record.chain]
        row = len(self.timestamp)
        timestamp = record.timestamp
        self._register_row(chain_code, timestamp, row)
        self.chain_code.append(chain_code)
        self.transaction_id.append(record.transaction_id)
        self.block_height.append(record.block_height)
        self.timestamp.append(timestamp)
        self.type_code.append(self.types.intern(record.type))
        self.sender_code.append(self.accounts.intern(record.sender))
        self.receiver_code.append(self.accounts.intern(record.receiver))
        self.contract_code.append(self.accounts.intern(record.contract))
        self.amount.append(record.amount)
        self.currency_code.append(self.currencies.intern(record.currency))
        self.issuer_code.append(self.accounts.intern(record.issuer))
        self.fee.append(record.fee)
        self.success.append(1 if record.success else 0)
        self.error_code.append(self.errors.intern(record.error_code))
        self.metadata.append(dict(record.metadata) if record.metadata else None)

    def extend(self, records: Iterable[TransactionRecord]) -> int:
        """Append a stream of records; returns the number appended.

        This is the ingest entry point for the workload generators'
        ``stream_records()`` output — nothing is materialised besides the
        columns themselves.
        """
        append = self.append
        count = 0
        for record in records:
            append(record)
            count += 1
        return count

    def extend_from_blocks(self, blocks: Iterable[BlockRecord]) -> int:
        """Append every transaction carried by an iterable of blocks."""
        append = self.append
        count = 0
        for block in blocks:
            for record in block.transactions:
                append(record)
                count += 1
        return count

    @classmethod
    def from_records(cls, records: Iterable[TransactionRecord]) -> "TxFrame":
        frame = cls()
        frame.extend(records)
        return frame

    @classmethod
    def with_pools(
        cls,
        types: StringPool,
        accounts: StringPool,
        currencies: StringPool,
        errors: StringPool,
    ) -> "TxFrame":
        """Empty frame adopting the given pool *objects* (shared, not copied).

        Pools are append-only, so several frames can safely share one set:
        codes a payload remaps into any of them stay valid in all of them.
        This is the out-of-core worker seam — every chunk frame a worker
        rehydrates shares the store's global pools, which keeps the codes in
        exported accumulator state identical across chunks, workers and the
        merging parent without shipping any pool strings per chunk.
        """
        frame = cls()
        frame.types = types
        frame.accounts = accounts
        frame.currencies = currencies
        frame.errors = errors
        return frame

    @classmethod
    def from_blocks(cls, blocks: Iterable[BlockRecord]) -> "TxFrame":
        frame = cls()
        frame.extend_from_blocks(blocks)
        return frame

    @classmethod
    def concat(cls, frames: Iterable["TxFrame"]) -> "TxFrame":
        """Concatenate frames into a new frame, remapping string pools.

        Rows keep the order of the input frames; each frame's interned codes
        are translated into the combined frame's pools, so the result is
        indistinguishable from having appended every record to one frame.
        """
        combined = cls()
        for frame in frames:
            combined.extend_from_payload(frame.to_payload(arrays=True))
        return combined

    # -- reading -------------------------------------------------------------------
    def ndarray(self, name: str):
        """Zero-copy, read-only ndarray view of one numeric column.

        ``name`` is any column in ``_NUMERIC_COLUMNS``.  The view aliases
        the column's current buffer; appending to the frame may reallocate
        that buffer, so take views at bind time and never across appends
        (see :func:`as_ndarray`).  Requires the NumPy kernel backend.
        """
        if name not in self._NUMERIC_COLUMNS:
            raise KeyError(f"{name!r} is not a numeric column")
        return as_ndarray(getattr(self, name))

    def transaction_ids_ndarray(self):
        """Object-dtype ndarray of the transaction-id column (cached).

        The id column is a plain Python list (high cardinality — interning
        would be pure overhead), so unlike :meth:`ndarray` this is a pointer
        *copy*, not a view.  It exists for kernels that gather ids by index
        array (filtered chain views): one fancy-indexing call replaces a
        per-row ``__getitem__`` loop.  The copy is built lazily on first
        use and cached per frame length, so every accumulator scanning the
        same frame — and every chain of an out-of-core chunk — shares one
        build.  Requires the NumPy kernel backend.
        """
        from repro.common import kernels

        cached = self._tx_ids_nd
        length = len(self.transaction_id)
        if cached is not None and cached[0] == length:
            return cached[1]
        ids = kernels.numpy_module().empty(length, dtype=object)
        ids[:] = self.transaction_id
        self._tx_ids_nd = (length, ids)
        return ids

    def transaction_id_hashes(self) -> array:
        """Deterministic 64-bit hash column of the transaction ids (cached).

        A ``uint64`` ``array('Q')`` aligned with :attr:`transaction_id`,
        computed with :func:`repro.common.sketches.hash64_batch` — the hash
        the sketch-mode accumulators feed their HyperLogLogs.  The column
        is append-only (rows are never rewritten), so the cache extends
        incrementally: growing the frame hashes only the new tail, and every
        sketch pass over the same frame shares one build.
        """
        from repro.common.sketches import hash64_batch

        cached = self._tx_id_hashes
        length = len(self.transaction_id)
        if cached is None:
            cached = array("Q")
            self._tx_id_hashes = cached
        if len(cached) < length:
            cached.extend(hash64_batch(self.transaction_id[len(cached) : length]))
        return cached

    @property
    def timestamps_sorted(self) -> bool:
        """Whether rows were appended in non-decreasing timestamp order."""
        return self._timestamps_sorted

    def __len__(self) -> int:
        return len(self.timestamp)

    def __iter__(self) -> Iterator[TransactionRecord]:
        return self.iter_records()

    def chain(self, row: int) -> ChainId:
        return CHAIN_ORDER[self.chain_code[row]]

    def record(self, row: int) -> TransactionRecord:
        """Materialise one row as a canonical record (compat path)."""
        metadata = self.metadata[row]
        return TransactionRecord(
            chain=CHAIN_ORDER[self.chain_code[row]],
            transaction_id=self.transaction_id[row],
            block_height=self.block_height[row],
            timestamp=self.timestamp[row],
            type=self.types.value(self.type_code[row]),
            sender=self.accounts.value(self.sender_code[row]),
            receiver=self.accounts.value(self.receiver_code[row]),
            contract=self.accounts.value(self.contract_code[row]),
            amount=self.amount[row],
            currency=self.currencies.value(self.currency_code[row]),
            issuer=self.accounts.value(self.issuer_code[row]),
            fee=self.fee[row],
            success=bool(self.success[row]),
            error_code=self.errors.value(self.error_code[row]),
            metadata=dict(metadata) if metadata else {},
        )

    def iter_records(self, rows: Optional[RowIndices] = None) -> Iterator[TransactionRecord]:
        record = self.record
        for index in rows if rows is not None else range(len(self)):
            yield record(index)

    def all_rows(self) -> TxView:
        return TxView(self, range(len(self)))

    def shard(self, count: int, rows: Optional[RowIndices] = None) -> List[TxView]:
        """Split (a row subset of) the frame into contiguous views.

        The shards partition ``rows`` (default: every row) in row order into
        at most ``count`` near-equal contiguous chunks — the unit of work for
        parallel analysis.  Contiguity matters: merging shard results in
        shard order then replays the serial scan order, which is what keeps
        shard-merged accumulator output deterministic.  An empty frame yields
        a single empty shard.
        """
        if count <= 0:
            raise ValueError("shard count must be positive")
        if rows is None:
            rows = range(len(self))
        total = len(rows)
        shard_count = min(count, total) or 1
        base, extra = divmod(total, shard_count)
        views: List[TxView] = []
        start = 0
        for index in range(shard_count):
            size = base + (1 if index < extra else 0)
            views.append(TxView(self, rows[start : start + size]))
            start += size
        return views

    def chains(self) -> List[ChainId]:
        """The chains present in the frame, in canonical order."""
        return [CHAIN_ORDER[code] for code in sorted(self._chain_rows)]

    def chain_view(self, chain: ChainId) -> TxView:
        """Snapshot view of one chain's rows at the current frame length.

        The column buffers are shared (never copied); only the per-chain
        row-index list is snapshotted, so later appends to the frame never
        change what an existing view covers — the same semantics a ``range``
        view of a single-chain frame has.
        """
        code = _CHAIN_CODES[chain]
        rows = self._chain_rows.get(code)
        if rows is None:
            return TxView(self, range(0))
        if len(rows) == len(self):
            # Single-chain frame: a plain range iterates faster than an array.
            return TxView(self, range(len(self)))
        return TxView(self, rows[:])

    def chain_bounds(self, chain: ChainId) -> Optional[Tuple[float, float]]:
        """(min, max) timestamp of one chain's rows, tracked at append time."""
        return self._chain_bounds.get(_CHAIN_CODES[chain])

    def chain_duration(self, chain: ChainId) -> float:
        bounds = self.chain_bounds(chain)
        if bounds is None:
            return 0.0
        return bounds[1] - bounds[0]

    def min_timestamp(self) -> Optional[float]:
        if not self._chain_bounds:
            return None
        return min(low for low, _ in self._chain_bounds.values())

    def max_timestamp(self) -> Optional[float]:
        if not self._chain_bounds:
            return None
        return max(high for _, high in self._chain_bounds.values())

    def time_window(
        self,
        start: float,
        end: float,
        rows: Optional[RowIndices] = None,
    ) -> TxView:
        """View of rows with ``start <= timestamp < end``.

        When timestamps are appended in non-decreasing order (the common case
        for generated workloads and height-ordered crawls) the window is
        located by bisection and returned as a ``range`` — zero copies.
        Otherwise rows are filtered into a fresh index array (still sharing
        every column buffer).
        """
        timestamps = self.timestamp
        if rows is None:
            if self._timestamps_sorted:
                lo = bisect_left(timestamps, start)
                hi = bisect_left(timestamps, end, lo=lo)
                return TxView(self, range(lo, hi))
            rows = range(len(self))
        if kernels.use_numpy() and len(rows):
            np = kernels.numpy_module()
            indices = as_index_rows(rows)
            if isinstance(indices, range):
                indices = np.arange(
                    indices.start, indices.stop, indices.step, dtype=np.int64
                )
            block = gather_np(timestamps, indices)
            matched = indices[(block >= start) & (block < end)]
            selected = array("q")
            selected.frombytes(matched.tobytes())
            return TxView(self, selected)
        selected = array("q")
        for index in rows:
            if start <= timestamps[index] < end:
                selected.append(index)
        return TxView(self, selected)

    # -- serialisation -------------------------------------------------------------
    _NUMERIC_COLUMNS = tuple(NUMERIC_TYPECODES)

    def to_payload(
        self, rows: Optional[RowIndices] = None, *, arrays: bool = False
    ) -> Dict[str, Any]:
        """Columnar payload for (a slice of) the frame.

        Used by the collection layer to chunk-compress frames directly: the
        payload keeps the columnar layout (one sequence per column plus the
        string pools), which both compresses better than per-record dicts and
        skips record materialisation entirely.

        With ``arrays=True`` the numeric columns are copied as ``array.array``
        buffers instead of plain lists.  Array payloads are not JSON-
        serialisable, but they pickle as raw machine bytes — the fast
        transport the parallel execution layer uses to ship shards to worker
        processes.  Both forms are accepted by :meth:`from_payload` /
        :meth:`extend_from_payload`.
        """
        contiguous = (
            range(0, len(self))
            if rows is None
            else (rows if isinstance(rows, range) and rows.step == 1 else None)
        )
        if contiguous is not None:
            lo, hi = contiguous.start, contiguous.stop
            columns: Dict[str, Any] = {}
            for name in self._NUMERIC_COLUMNS:
                sliced = getattr(self, name)[lo:hi]
                columns[name] = sliced if arrays else list(sliced)
            transaction_ids = self.transaction_id[lo:hi]
            metadata = [meta if meta else None for meta in self.metadata[lo:hi]]
        elif kernels.use_numpy():
            # Index-array gather: one C fancy-indexing call per column (the
            # shard-shipping path of the parallel execution layer), never a
            # per-element Python copy.
            columns = {}
            for name in self._NUMERIC_COLUMNS:
                column = getattr(self, name)
                gathered = gather_np(column, rows)
                if arrays:
                    sliced = array(column.typecode)
                    sliced.frombytes(gathered.tobytes())
                    columns[name] = sliced
                else:
                    columns[name] = gathered.tolist()
            transaction_ids = list(map(self.transaction_id.__getitem__, rows))
            metadata = list(map(self.metadata.__getitem__, rows))
        else:
            columns = {}
            for name in self._NUMERIC_COLUMNS:
                column = getattr(self, name)
                gathered = [column[i] for i in rows]
                columns[name] = (
                    array(column.typecode, gathered) if arrays else gathered
                )
            transaction_ids = [self.transaction_id[i] for i in rows]
            metadata = [self.metadata[i] for i in rows]
        return {
            "columns": columns,
            "transaction_id": transaction_ids,
            "metadata": metadata,
            "pools": {
                "types": self.types.values,
                "accounts": self.accounts.values,
                "currencies": self.currencies.values,
                "errors": self.errors.values,
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TxFrame":
        """Rebuild a frame from :meth:`to_payload` output.

        Rebuilding into a *fresh* frame re-interns the payload's pools in
        order, so every code maps to itself; that makes a bulk column load
        possible (one C-level ``array.extend`` per column instead of a
        per-row Python loop) and — crucially for the parallel execution
        layer — guarantees the rebuilt frame's string pools are
        code-compatible with the frame the payload was taken from.
        """
        frame = cls()
        frame._load_payload_bulk(payload)
        return frame

    @staticmethod
    def _column_bytes(data: Any, typecode: str) -> Optional[bytes]:
        """Raw machine bytes of a payload column, or ``None`` when the data
        needs the generic ``array.extend`` element path."""
        np = kernels.numpy_module()
        if np is None or not isinstance(data, np.ndarray):
            return None
        return data.astype(np.dtype(typecode), copy=False).tobytes()

    def _load_payload_bulk(self, payload: Mapping[str, Any]) -> None:
        """Bulk-load a payload into this (empty) frame; codes pass through."""
        for pool, values in (
            (self.types, payload["pools"]["types"]),
            (self.accounts, payload["pools"]["accounts"]),
            (self.currencies, payload["pools"]["currencies"]),
            (self.errors, payload["pools"]["errors"]),
        ):
            for value in values:
                pool.intern(value)
        columns = payload["columns"]
        for name in self._NUMERIC_COLUMNS:
            target = getattr(self, name)
            # ndarray-native payloads load as raw machine bytes.
            raw = self._column_bytes(columns[name], target.typecode)
            if raw is not None:
                target.frombytes(raw)
            else:
                target.extend(columns[name])
        self.transaction_id.extend(payload["transaction_id"])
        self._extend_metadata(payload["metadata"])
        # Rebuild the append-time bookkeeping (sortedness, per-chain row
        # indexes and timestamp bounds) from the loaded columns.
        timestamps = self.timestamp
        if kernels.use_numpy() and len(timestamps):
            self._rebuild_bookkeeping_np()
            return
        sorted_flag = True
        previous = None
        for value in timestamps:
            if previous is not None and value < previous:
                sorted_flag = False
                break
            previous = value
        self._timestamps_sorted = sorted_flag
        chain_codes = self.chain_code
        distinct = set(chain_codes)
        if len(distinct) == 1:
            code = distinct.pop()
            self._chain_rows[code] = array("q", range(len(self)))
            self._chain_bounds[code] = (min(timestamps), max(timestamps))
        else:
            for row, (code, timestamp) in enumerate(zip(chain_codes, timestamps)):
                rows = self._chain_rows.get(code)
                if rows is None:
                    rows = self._chain_rows[code] = array("q")
                rows.append(row)
                bounds = self._chain_bounds.get(code)
                if bounds is None:
                    self._chain_bounds[code] = (timestamp, timestamp)
                else:
                    low, high = bounds
                    if timestamp < low or timestamp > high:
                        self._chain_bounds[code] = (
                            min(low, timestamp),
                            max(high, timestamp),
                        )

    def _rebuild_bookkeeping_np(self) -> None:
        """Vectorized rebuild of sortedness + per-chain rows and bounds."""
        np = kernels.numpy_module()
        timestamps = as_ndarray(self.timestamp)
        self._timestamps_sorted = bool(
            len(timestamps) < 2 or np.all(timestamps[1:] >= timestamps[:-1])
        )
        chain_codes = as_ndarray(self.chain_code)
        for code in np.unique(chain_codes).tolist():
            code = int(code)
            mask = chain_codes == code
            rows = array("q")
            rows.frombytes(np.nonzero(mask)[0].astype(np.int64).tobytes())
            self._chain_rows[code] = rows
            chain_ts = timestamps[mask]
            self._chain_bounds[code] = (float(chain_ts.min()), float(chain_ts.max()))

    def extend_from_payload(self, payload: Mapping[str, Any]) -> int:
        """Append a payload's rows, remapping pool codes into this frame."""
        pools = payload["pools"]
        columns = payload["columns"]
        type_map = [self.types.intern(value) for value in pools["types"]]
        account_map = [self.accounts.intern(value) for value in pools["accounts"]]
        currency_map = [self.currencies.intern(value) for value in pools["currencies"]]
        error_map = [self.errors.intern(value) for value in pools["errors"]]
        count = len(payload["transaction_id"])
        if count and kernels.use_numpy():
            return self._extend_from_payload_np(
                payload, type_map, account_map, currency_map, error_map
            )
        chain_codes = columns["chain_code"]
        timestamps = columns["timestamp"]
        for i in range(count):
            chain_code = chain_codes[i]
            timestamp = float(timestamps[i])
            self._register_row(chain_code, timestamp, len(self.timestamp))
            self.chain_code.append(chain_code)
            self.transaction_id.append(payload["transaction_id"][i])
            self.block_height.append(int(columns["block_height"][i]))
            self.timestamp.append(timestamp)
            self.type_code.append(type_map[columns["type_code"][i]])
            self.sender_code.append(account_map[columns["sender_code"][i]])
            self.receiver_code.append(account_map[columns["receiver_code"][i]])
            self.contract_code.append(account_map[columns["contract_code"][i]])
            self.amount.append(float(columns["amount"][i]))
            self.currency_code.append(currency_map[columns["currency_code"][i]])
            self.issuer_code.append(account_map[columns["issuer_code"][i]])
            self.fee.append(float(columns["fee"][i]))
            self.success.append(columns["success"][i])
            self.error_code.append(error_map[columns["error_code"][i]])
        self._extend_metadata(payload["metadata"])
        return count

    def _extend_from_payload_np(
        self,
        payload: Mapping[str, Any],
        type_map: List[int],
        account_map: List[int],
        currency_map: List[int],
        error_map: List[int],
    ) -> int:
        """Vectorized :meth:`extend_from_payload`: bulk column appends with
        C-level code remapping, then incremental bookkeeping — no per-row
        Python loop over the numeric columns."""
        np = kernels.numpy_module()
        columns = payload["columns"]
        count = len(payload["transaction_id"])
        offset = len(self)
        previous_last = self.timestamp[-1] if offset else None

        def column_nd(name: str):
            data = columns[name]
            typecode = getattr(self, name).typecode
            dtype = np.dtype(typecode)
            if isinstance(data, np.ndarray):
                return data.astype(dtype, copy=False)
            if isinstance(data, array) and data.typecode == typecode:
                return as_ndarray(data)
            return np.asarray(data, dtype=dtype)

        def append_nd(name: str, values) -> None:
            column = getattr(self, name)
            column.frombytes(
                values.astype(np.dtype(column.typecode), copy=False).tobytes()
            )

        def remap(name: str, mapping: List[int]):
            table = np.asarray(mapping, dtype=np.int64)
            return table[column_nd(name)]

        chain_codes = column_nd("chain_code")
        timestamps = column_nd("timestamp")
        append_nd("chain_code", chain_codes)
        append_nd("block_height", column_nd("block_height"))
        append_nd("timestamp", timestamps)
        append_nd("type_code", remap("type_code", type_map))
        append_nd("sender_code", remap("sender_code", account_map))
        append_nd("receiver_code", remap("receiver_code", account_map))
        append_nd("contract_code", remap("contract_code", account_map))
        append_nd("amount", column_nd("amount"))
        append_nd("currency_code", remap("currency_code", currency_map))
        append_nd("issuer_code", remap("issuer_code", account_map))
        append_nd("fee", column_nd("fee"))
        append_nd("success", column_nd("success"))
        append_nd("error_code", remap("error_code", error_map))
        self.transaction_id.extend(payload["transaction_id"])
        self._extend_metadata(payload["metadata"])
        # Incremental bookkeeping for the appended suffix only.
        if self._timestamps_sorted:
            batch_sorted = count < 2 or bool(
                np.all(timestamps[1:] >= timestamps[:-1])
            )
            joins_sorted = previous_last is None or timestamps[0] >= previous_last
            self._timestamps_sorted = batch_sorted and joins_sorted
        for code in np.unique(chain_codes).tolist():
            code = int(code)
            mask = chain_codes == code
            indices = np.nonzero(mask)[0].astype(np.int64)
            if offset:
                indices = indices + offset
            rows = self._chain_rows.get(code)
            if rows is None:
                rows = self._chain_rows[code] = array("q")
            rows.frombytes(indices.tobytes())
            chain_ts = timestamps[mask]
            low, high = float(chain_ts.min()), float(chain_ts.max())
            bounds = self._chain_bounds.get(code)
            if bounds is not None:
                low, high = min(bounds[0], low), max(bounds[1], high)
            self._chain_bounds[code] = (low, high)
        return count


FrameLike = Union[TxFrame, TxView]


def as_frame(records: Union[FrameLike, Iterable[TransactionRecord]]) -> FrameLike:
    """Coerce any record source into a frame or view.

    Frames and views pass through untouched (the zero-copy fast path);
    iterables of canonical records are ingested into a fresh frame, which is
    the backward-compatibility path for the legacy analysis signatures.
    """
    if isinstance(records, (TxFrame, TxView)):
        return records
    return TxFrame.from_records(records)


def view_of(source: FrameLike) -> TxView:
    """Normalise a frame-or-view into a view over its rows."""
    if isinstance(source, TxFrame):
        return source.all_rows()
    return source
