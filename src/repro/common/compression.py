"""Gzip size accounting for the block store.

Figure 2 of the paper characterises each dataset by the storage its gzip
compressed blocks occupy (121 GB for EOS, 0.56 GB for Tezos, 76.4 GB for
XRP).  The block store keeps the same books: every chunk it writes is gzip
compressed, and the store can report compressed and raw byte totals so the
dataset characterisation can reproduce the table's storage column.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from typing import Any, Iterable, List, Mapping

GIGABYTE = 1_000_000_000


@dataclass(frozen=True)
class CompressionStats:
    """Byte accounting for a set of compressed chunks."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    chunk_count: int = 0

    @property
    def ratio(self) -> float:
        """Compression ratio (compressed / raw); 0 when nothing was written."""
        if self.raw_bytes == 0:
            return 0.0
        return self.compressed_bytes / self.raw_bytes

    @property
    def compressed_gigabytes(self) -> float:
        return self.compressed_bytes / GIGABYTE

    def merge(self, other: "CompressionStats") -> "CompressionStats":
        return CompressionStats(
            raw_bytes=self.raw_bytes + other.raw_bytes,
            compressed_bytes=self.compressed_bytes + other.compressed_bytes,
            chunk_count=self.chunk_count + other.chunk_count,
        )


def compress_json(payload: Any, level: int = 6) -> bytes:
    """Serialise ``payload`` as JSON and gzip it.

    ``mtime=0`` pins the gzip header timestamp so equal payloads compress
    to equal bytes — sharded dataset generation relies on this to make its
    output byte-for-byte independent of worker count.
    """
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return gzip.compress(raw, compresslevel=level, mtime=0)


def compress_json_measured(payload: Any, level: int = 6) -> "tuple[bytes, int]":
    """``(gzip blob, raw serialized byte count)`` — one serialisation.

    The store's byte accounting needs both the compressed size and the raw
    payload size; serialising once and measuring the bytes already in hand
    replaces the old trick of gzip-compressing the payload a *second* time
    at level 0 just to read off its length.
    """
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return gzip.compress(raw, compresslevel=level, mtime=0), len(raw)


def decompress_json(blob: bytes) -> Any:
    """Inverse of :func:`compress_json`."""
    return json.loads(gzip.decompress(blob).decode("utf-8"))


def compress_records(records: Iterable[Mapping[str, Any]], level: int = 6) -> bytes:
    """Compress a list of JSON-compatible mappings as a single chunk."""
    return compress_json(list(records), level=level)


def measure_chunk(payload: Any, level: int = 6) -> CompressionStats:
    """Return byte accounting for ``payload`` without keeping the blob."""
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    blob = gzip.compress(raw, compresslevel=level)
    return CompressionStats(raw_bytes=len(raw), compressed_bytes=len(blob), chunk_count=1)


def accumulate(stats: Iterable[CompressionStats]) -> CompressionStats:
    """Merge an iterable of chunk statistics into one total."""
    total = CompressionStats()
    for item in stats:
        total = total.merge(item)
    return total


def estimate_storage_gb(stats: CompressionStats, scale_factor: float = 1.0) -> float:
    """Extrapolate compressed storage to the paper's full scale.

    The simulators run at a configurable fraction of the paper's real block
    counts; multiplying by the inverse of that fraction yields the estimate
    printed in the Figure 2 reproduction.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    return stats.compressed_gigabytes / scale_factor


def split_into_chunks(items: List[Any], chunk_size: int) -> List[List[Any]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]
