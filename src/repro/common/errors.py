"""Exception hierarchy shared across the library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A scenario, workload or component was configured inconsistently."""


class ChainError(ReproError):
    """A chain simulator rejected an operation (invalid block, bad account...)."""


class TransactionRejected(ChainError):
    """A transaction failed validation and was not applied to chain state.

    The simulators mirror the real chains' behaviour: some chains (XRP)
    record rejected transactions on-ledger with an error code, while others
    simply drop them.  ``code`` carries the chain-specific error identifier.
    """

    def __init__(self, code: str, message: str = ""):
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code


class RpcError(ReproError):
    """An RPC endpoint returned an error response."""

    def __init__(self, code: int, message: str):
        super().__init__(f"RPC error {code}: {message}")
        self.code = code
        self.message = message


class RateLimitExceeded(RpcError):
    """The endpoint's rate limit was hit; the caller should back off."""

    def __init__(self, retry_after: float = 0.0):
        super().__init__(429, "rate limit exceeded")
        self.retry_after = retry_after


class EndpointUnavailable(RpcError):
    """The endpoint is temporarily unreachable (simulated outage)."""

    def __init__(self, message: str = "endpoint unavailable"):
        super().__init__(503, message)


class BlockNotFound(RpcError):
    """The requested block height does not exist on the serving node."""

    def __init__(self, height: int):
        super().__init__(404, f"block {height} not found")
        self.height = height


class CollectionError(ReproError):
    """The crawler failed to make progress (all endpoints exhausted, ...)."""


class AnalysisError(ReproError):
    """An analysis stage was asked to process inconsistent data."""
