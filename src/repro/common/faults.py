"""Deterministic fault injection for the durability and I/O boundaries.

The paper's dataset was collected over weeks against flaky, rate-limited
public endpoints; this repro has grown the matching durability machinery
(retry budgets, atomic manifests, checksum-gated chunks, checkpoints that
degrade to rescans) piece by piece.  This module is what *adversarially
exercises* all of it: a registry of named **faultpoints** compiled into the
durability-critical code paths, driven by a :class:`FaultPlan` parsed from a
compact spec string (the ``--faults`` flag / ``REPRO_FAULTS`` environment
variable).

Everything is deterministic.  Triggers are counters (``nth``/``every``),
seeded coin flips (``p``) or simulated-time windows (``window``); the RNG
behind probabilistic rules is seeded from the plan seed and the rule's
identity through a process-stable mix (no Python ``hash()``, which is
randomised per process).  Running the same program under the same spec
therefore fires the same faults at the same operations and produces a
byte-identical event log — a failure schedule is a value, not an accident.

Spec grammar::

    plan  := rule ( ';' rule )*
    rule  := 'seed=N' | point ( ':' field )+
    field := key '=' value
    point := a name from FAULTPOINTS

Trigger keys (at least one per rule; combined with AND semantics):

* ``nth=N`` — fire on the N-th time the faultpoint is hit (1-based; once).
* ``every=N`` — fire on every N-th hit.
* ``p=F`` — fire with probability F per hit, under the seeded RNG.
* ``window=A..B`` — only fire while the caller's simulated time ``now`` is
  in ``[A, B)``; faultpoints that carry no clock never match a window rule.
* ``times=N`` — stop firing after N fires (default: 1 for ``nth``,
  unlimited otherwise).

Action keys: ``mode=...`` selects what happens (see the per-point mode
lists in :data:`FAULTPOINTS`); remaining keys are mode parameters (e.g.
``retry_after=40`` for ``mode=rate_limit``).

Example::

    seed=99;crawler.fetch:p=0.05:mode=rate_limit:retry_after=40;\
    store.chunk_write:nth=3:mode=torn;checkpoint.save:nth=2:mode=bitflip

Activation: :func:`use_plan` scopes a plan to a ``with`` block (tests, the
soak harness); :func:`install` sets it process-wide; with neither, the
first :func:`check` parses ``REPRO_FAULTS`` if set — which is how worker
processes (spawned pools) inherit the fault schedule.

An injected *crash* raises :class:`InjectedCrash`: the simulated equivalent
of the process dying at that exact instruction.  Consumers (the soak
driver) catch it, discard all in-memory state, and reopen from disk —
exercising precisely the recovery path a real crash would.
"""

from __future__ import annotations

import os
import random
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import (
    ConfigurationError,
    EndpointUnavailable,
    RateLimitExceeded,
    ReproError,
    RpcError,
)

#: Environment variable a fault plan is picked up from when none is
#: installed explicitly — the cross-process activation channel.
FAULTS_ENV = "REPRO_FAULTS"

#: Crash-style modes: the faultpoint simulates the process dying there.
MODE_CRASH = "crash"
MODE_KILL = "kill"

#: Corruption modes for byte blobs on their way to (or from) disk.
MODE_TORN = "torn"
MODE_BITFLIP = "bitflip"
MODE_TRUNCATE = "truncate"

#: Endpoint-failure modes for the crawler-facing faultpoints.
MODE_RATE_LIMIT = "rate_limit"
MODE_UNAVAILABLE = "unavailable"
MODE_TIMEOUT = "timeout"
MODE_GARBAGE = "garbage"

_ENDPOINT_MODES = (
    MODE_RATE_LIMIT,
    MODE_UNAVAILABLE,
    MODE_TIMEOUT,
    MODE_GARBAGE,
    MODE_CRASH,
)

#: The faultpoint catalog: every instrumented durability / I-O boundary,
#: with the modes its call site understands.  ``FaultPlan.parse`` rejects
#: unknown points and modes so a typo in a spec fails loudly instead of
#: silently testing nothing.
FAULTPOINTS: Dict[str, Tuple[str, ...]] = {
    # FrameStore chunk write: ``torn`` writes half the blob but commits the
    # manifest with the full size and then crashes (power loss tearing a
    # committed page); ``truncate`` writes half and crashes *before* the
    # manifest (uncommitted partial); ``bitflip`` silently corrupts the
    # blob on disk (detected by checksums on the next read / fsck);
    # ``crash`` dies between the chunk file write and the manifest commit.
    "store.chunk_write": (MODE_TORN, MODE_BITFLIP, MODE_TRUNCATE, MODE_CRASH),
    # The manifest rename itself: crash after the temp write, before the
    # atomic replace — the previous manifest must survive untouched.
    "store.manifest_commit": (MODE_CRASH,),
    # Between chunk-file moves of FrameStore.assemble: a crashed assembly
    # must leave a target store that refuses to open, never a silently
    # partial one.
    "store.assemble": (MODE_CRASH,),
    # Chunk-state cache entry read: corrupt the bytes before the decode —
    # the entry's checksum must catch it and the consumer degrades to a
    # plain rescan of that chunk, never an error or a wrong figure.
    "store.cache_read": (MODE_BITFLIP, MODE_TRUNCATE),
    # Chunk-state cache entry write: ``bitflip``/``torn``/``truncate``
    # silently corrupt the entry on disk (the next read degrades to a
    # rescan); ``crash`` dies between the temp write and the atomic
    # rename, leaving a ``.tmp`` leftover that fsck flags as orphaned.
    "store.cache_write": (MODE_BITFLIP, MODE_TORN, MODE_TRUNCATE, MODE_CRASH),
    # Checkpoint persistence: crash before the atomic rename, or flip a
    # byte in the committed snapshot (load then degrades to a rescan).
    "checkpoint.save": (MODE_CRASH, MODE_BITFLIP),
    # Snapshot file read: corrupt the bytes before the statecodec decode.
    "checkpoint.load": (MODE_BITFLIP,),
    # One chain's state blob inside a structurally intact snapshot: the
    # per-chain checksum must catch it and rescan only that chain.
    "checkpoint.decode": (MODE_BITFLIP,),
    # Endpoint fetches, as the crawler sees them.
    "crawler.head": _ENDPOINT_MODES,
    "crawler.fetch": _ENDPOINT_MODES,
    # A live-tail batch boundary (also the soak driver's cycle boundary).
    "live.batch": (MODE_CRASH,),
    # Entry into an incremental update.
    "pipeline.update": (MODE_CRASH,),
    # Chunk-task / shard workers: ``kill`` is a hard ``os._exit`` in the
    # worker process — the parent's pool watchdog must fail fast, and the
    # consumer degrades to a serial scan.
    "worker.chunk_task": (MODE_KILL,),
}


class InjectedCrash(ReproError):
    """A fault plan simulated the process dying at a faultpoint."""


def _stable_hash(*parts: object) -> int:
    """A process-stable 32-bit hash (``hash()`` is randomised per process)."""
    digest = 0
    for part in parts:
        digest = zlib.crc32(repr(part).encode("utf-8"), digest)
    return digest & 0xFFFF_FFFF


@dataclass
class FaultRule:
    """One parsed spec rule: a faultpoint, a trigger, and an action."""

    point: str
    mode: str
    nth: Optional[int] = None
    every: Optional[int] = None
    probability: Optional[float] = None
    window: Optional[Tuple[float, float]] = None
    times: Optional[int] = None
    params: Dict[str, str] = field(default_factory=dict)
    # -- runtime state (reset by FaultPlan.reset) --------------------------------
    hits: int = 0
    fires: int = 0
    _rng: Optional[random.Random] = None

    def bind(self, seed: int, index: int) -> None:
        """Seed the rule's private RNG from the plan seed and rule identity."""
        self._rng = random.Random(
            _stable_hash(seed, index, self.point, self.mode)
        )

    def rng(self) -> random.Random:
        if self._rng is None:  # pragma: no cover - bind() always runs first
            self.bind(0, 0)
        return self._rng

    @property
    def remaining(self) -> Optional[int]:
        limit = self.times if self.times is not None else (
            1 if self.nth is not None else None
        )
        if limit is None:
            return None
        return max(0, limit - self.fires)

    def evaluate(self, now: Optional[float]) -> bool:
        """Count one hit; return whether the rule fires on it."""
        self.hits += 1
        if self.remaining == 0:
            return False
        if self.window is not None:
            if now is None or not (self.window[0] <= now < self.window[1]):
                return False
        if self.nth is not None and self.hits != self.nth:
            return False
        if self.every is not None and self.hits % self.every != 0:
            return False
        if self.probability is not None and not (
            self.rng().random() < self.probability
        ):
            return False
        self.fires += 1
        return True


@dataclass
class FaultAction:
    """What a fired faultpoint should do, interpreted by the call site."""

    point: str
    mode: str
    params: Dict[str, str]
    rule: FaultRule

    def param_float(self, key: str, default: float) -> float:
        value = self.params.get(key)
        return float(value) if value is not None else default

    def corrupt(self, blob: bytes) -> bytes:
        """Apply this action's corruption mode to ``blob`` deterministically."""
        if not blob:
            return blob
        if self.mode in (MODE_TORN, MODE_TRUNCATE):
            return blob[: max(1, len(blob) // 2)]
        if self.mode == MODE_BITFLIP:
            offset = self.rule.rng().randrange(len(blob))
            mutated = bytearray(blob)
            mutated[offset] ^= 0xFF
            return bytes(mutated)
        raise ConfigurationError(
            f"fault mode {self.mode!r} does not corrupt byte blobs"
        )

    def endpoint_error(self) -> RpcError:
        """The RPC exception an endpoint-fault mode simulates."""
        if self.mode == MODE_RATE_LIMIT:
            return RateLimitExceeded(retry_after=self.param_float("retry_after", 30.0))
        if self.mode == MODE_UNAVAILABLE:
            return EndpointUnavailable("injected outage")
        if self.mode == MODE_TIMEOUT:
            return RpcError(408, "injected timeout")
        if self.mode == MODE_GARBAGE:
            return RpcError(502, "injected unparseable response")
        raise ConfigurationError(
            f"fault mode {self.mode!r} is not an endpoint failure"
        )


class FaultPlan:
    """A parsed, seeded fault schedule with a deterministic event log."""

    def __init__(self, rules: List[FaultRule], seed: int = 0, spec: str = ""):
        self.rules = list(rules)
        self.seed = seed
        self.spec = spec
        #: One line per fired fault, in firing order.  Contains only
        #: deterministic fields, so two runs of the same program under the
        #: same spec produce byte-identical logs.
        self.events: List[str] = []
        self.reset()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--faults`` / ``REPRO_FAULTS`` spec string."""
        seed = 0
        rules: List[FaultRule] = []
        for raw_rule in spec.replace("\n", ";").split(";"):
            raw_rule = raw_rule.strip()
            if not raw_rule:
                continue
            if raw_rule.startswith("seed="):
                seed = int(raw_rule[len("seed="):])
                continue
            fields = raw_rule.split(":")
            point = fields[0].strip()
            if point not in FAULTPOINTS:
                raise ConfigurationError(
                    f"unknown faultpoint {point!r}; known: "
                    f"{', '.join(sorted(FAULTPOINTS))}"
                )
            rule = FaultRule(point=point, mode="")
            for part in fields[1:]:
                part = part.strip()
                if "=" not in part:
                    raise ConfigurationError(
                        f"malformed fault field {part!r} in rule {raw_rule!r} "
                        "(expected key=value)"
                    )
                key, value = part.split("=", 1)
                key, value = key.strip(), value.strip()
                if key == "nth":
                    rule.nth = int(value)
                elif key == "every":
                    rule.every = int(value)
                elif key == "p":
                    rule.probability = float(value)
                    if not 0.0 <= rule.probability <= 1.0:
                        raise ConfigurationError(
                            f"fault probability {value!r} outside [0, 1]"
                        )
                elif key == "window":
                    start, _, end = value.partition("..")
                    rule.window = (float(start), float(end))
                elif key == "times":
                    rule.times = int(value)
                elif key == "mode":
                    rule.mode = value
                else:
                    rule.params[key] = value
            if not rule.mode:
                raise ConfigurationError(
                    f"fault rule {raw_rule!r} has no mode= field"
                )
            if rule.mode not in FAULTPOINTS[point]:
                raise ConfigurationError(
                    f"faultpoint {point!r} does not support mode "
                    f"{rule.mode!r} (supported: {', '.join(FAULTPOINTS[point])})"
                )
            rules.append(rule)
        return cls(rules, seed=seed, spec=spec)

    def reset(self) -> None:
        """Rewind every counter and RNG to the start of the schedule."""
        self.events = []
        for index, rule in enumerate(self.rules):
            rule.hits = 0
            rule.fires = 0
            rule.bind(self.seed, index)

    def check(self, point: str, now: Optional[float] = None) -> Optional[FaultAction]:
        """Count one hit on ``point``; return the fired action, if any.

        Every rule matching the point counts the hit; the first rule that
        fires wins (later matching rules still count the hit, keeping their
        schedules independent of one another).
        """
        fired: Optional[FaultAction] = None
        for rule in self.rules:
            if rule.point != point:
                continue
            if rule.evaluate(now) and fired is None:
                fired = FaultAction(
                    point=point, mode=rule.mode, params=rule.params, rule=rule
                )
                self.events.append(
                    f"{len(self.events):05d} {point} mode={rule.mode} "
                    f"hit={rule.hits} fire={rule.fires}"
                    + (f" t={now!r}" if now is not None else "")
                )
        return fired

    def note(self, message: str) -> None:
        """Append a consumer-side line (recoveries, invariant marks) to the log."""
        self.events.append(f"{len(self.events):05d} {message}")

    def event_log(self) -> str:
        """The event log as one newline-terminated text blob."""
        return "".join(line + "\n" for line in self.events)

    @property
    def total_fires(self) -> int:
        return sum(rule.fires for rule in self.rules)


# -- process-wide registry ------------------------------------------------------------
_active: Optional[FaultPlan] = None
_env_loaded = False


def install(plan: Optional[FaultPlan]) -> None:
    """Set (or with ``None`` clear) the process-wide active plan."""
    global _active, _env_loaded
    _active = plan
    # An explicit install decision overrides any future env pickup.
    _env_loaded = True


@contextmanager
def use_plan(plan: Optional[FaultPlan]):
    """Scope ``plan`` (or fault-free ``None``) to a ``with`` block."""
    global _active, _env_loaded
    previous, previous_loaded = _active, _env_loaded
    _active, _env_loaded = plan, True
    try:
        yield plan
    finally:
        _active, _env_loaded = previous, previous_loaded


def active_plan() -> Optional[FaultPlan]:
    """The active plan: installed explicitly, or parsed once from the env."""
    global _active, _env_loaded
    if _active is None and not _env_loaded:
        _env_loaded = True
        spec = os.environ.get(FAULTS_ENV)
        if spec:
            _active = FaultPlan.parse(spec)
    return _active


def check(point: str, now: Optional[float] = None) -> Optional[FaultAction]:
    """Hit ``point`` against the active plan (no-op without one)."""
    plan = active_plan()
    if plan is None:
        return None
    if point not in FAULTPOINTS:
        raise ConfigurationError(f"unregistered faultpoint {point!r}")
    return plan.check(point, now)


def maybe_crash(point: str, now: Optional[float] = None) -> None:
    """Hit a crash-only faultpoint; raise :class:`InjectedCrash` if it fires."""
    action = check(point, now)
    if action is not None and action.mode == MODE_CRASH:
        raise InjectedCrash(f"injected crash at {point}")


def raise_endpoint_fault(point: str, now: Optional[float] = None) -> None:
    """Hit an endpoint faultpoint; raise the simulated RPC failure if fired."""
    action = check(point, now)
    if action is None:
        return
    if action.mode == MODE_CRASH:
        raise InjectedCrash(f"injected crash at {point}")
    raise action.endpoint_error()
