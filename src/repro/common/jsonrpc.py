"""Minimal JSON-RPC 2.0 framing used by the simulated RPC endpoints.

The real data collection in the paper talks to heterogeneous APIs (EOS REST
RPC, Tezos node RPC, the XRP websocket API).  The simulators normalise all of
them behind a small JSON-RPC-style dispatch layer: a request names a method
and carries params; the endpoint returns a result payload or an error object.
Keeping the framing explicit lets the crawler tests exercise malformed
responses, rate-limit errors and endpoint fail-over exactly as the real
crawler had to.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.common.errors import RpcError

JSONRPC_VERSION = "2.0"

# Standard JSON-RPC error codes plus the HTTP-ish ones the simulators use.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603


@dataclass(frozen=True)
class RpcRequest:
    """A single JSON-RPC request."""

    method: str
    params: Mapping[str, Any] = field(default_factory=dict)
    request_id: int = 1

    def to_json(self) -> str:
        return json.dumps(
            {
                "jsonrpc": JSONRPC_VERSION,
                "id": self.request_id,
                "method": self.method,
                "params": dict(self.params),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "RpcRequest":
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise RpcError(PARSE_ERROR, f"invalid JSON: {exc}") from exc
        if not isinstance(decoded, dict) or "method" not in decoded:
            raise RpcError(INVALID_REQUEST, "missing method")
        return cls(
            method=str(decoded["method"]),
            params=dict(decoded.get("params", {})),
            request_id=int(decoded.get("id", 1)),
        )


@dataclass(frozen=True)
class RpcResponse:
    """A single JSON-RPC response (either ``result`` or ``error`` is set)."""

    request_id: int
    result: Optional[Any] = None
    error: Optional[Mapping[str, Any]] = None

    @property
    def is_error(self) -> bool:
        return self.error is not None

    def raise_for_error(self) -> Any:
        """Return the result, raising :class:`RpcError` on error responses."""
        if self.error is not None:
            raise RpcError(
                int(self.error.get("code", INTERNAL_ERROR)),
                str(self.error.get("message", "unknown error")),
            )
        return self.result

    def to_json(self) -> str:
        body: Dict[str, Any] = {"jsonrpc": JSONRPC_VERSION, "id": self.request_id}
        if self.error is not None:
            body["error"] = dict(self.error)
        else:
            body["result"] = self.result
        return json.dumps(body, sort_keys=True)

    @classmethod
    def success(cls, request_id: int, result: Any) -> "RpcResponse":
        return cls(request_id=request_id, result=result)

    @classmethod
    def failure(cls, request_id: int, code: int, message: str) -> "RpcResponse":
        return cls(request_id=request_id, error={"code": code, "message": message})

    @classmethod
    def from_json(cls, payload: str) -> "RpcResponse":
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise RpcError(PARSE_ERROR, f"invalid JSON: {exc}") from exc
        return cls(
            request_id=int(decoded.get("id", 0)),
            result=decoded.get("result"),
            error=decoded.get("error"),
        )


Handler = Callable[[Mapping[str, Any]], Any]


class RpcDispatcher:
    """Routes :class:`RpcRequest` objects to registered method handlers.

    Handlers receive the request params and return a JSON-compatible result.
    Exceptions deriving from :class:`RpcError` are converted to error
    responses with their code preserved; any other exception becomes an
    ``INTERNAL_ERROR`` so that an endpoint never leaks a traceback to the
    crawler (mirroring how the real public endpoints behave).
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, Handler] = {}

    def register(self, method: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` (overwrites silently)."""
        self._handlers[method] = handler

    def methods(self) -> list:
        """Names of all registered methods, sorted."""
        return sorted(self._handlers)

    def dispatch(self, request: RpcRequest) -> RpcResponse:
        """Execute the handler for ``request`` and wrap the outcome."""
        handler = self._handlers.get(request.method)
        if handler is None:
            return RpcResponse.failure(
                request.request_id, METHOD_NOT_FOUND, f"unknown method {request.method!r}"
            )
        try:
            result = handler(request.params)
        except RpcError as exc:
            return RpcResponse.failure(request.request_id, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 - endpoints must not leak tracebacks
            return RpcResponse.failure(request.request_id, INTERNAL_ERROR, str(exc))
        return RpcResponse.success(request.request_id, result)

    def dispatch_json(self, payload: str) -> str:
        """Wire-level entry point: JSON string in, JSON string out."""
        try:
            request = RpcRequest.from_json(payload)
        except RpcError as exc:
            return RpcResponse.failure(0, exc.code, exc.message).to_json()
        return self.dispatch(request).to_json()
