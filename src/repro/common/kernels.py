"""Kernel backend selection: pure-Python reference vs vectorized NumPy.

The analysis layer ships every hot ``bind_batch`` in two implementations:

* the **python** backend — the original per-block Python kernels (bulk
  ``Counter.update`` over zipped column slices, bisection, per-row loops).
  It depends on nothing outside the standard library and is the reference
  implementation every other backend is differentially tested against;
* the **numpy** backend — vectorized array kernels over zero-copy ndarray
  views of the columnar frame (``np.bincount``-style packed-code counting,
  vectorized bin indexing, boolean-mask reductions).  It is selected by
  default whenever NumPy imports.

Both backends are **result-identical**, figure for figure — including the
bit-for-bit float sums of the serial Figure 12 path — because the numpy
kernels replay the reference kernels' insertion order and per-row float
accumulation order (see ``docs/architecture.md``).

Selection order:

1. an in-process override installed with :func:`set_backend` /
   :func:`use_backend` (what the differential tests use);
2. the ``REPRO_KERNELS`` environment variable (``python`` or ``numpy``) —
   the operational escape hatch;
3. ``numpy`` when NumPy is importable, ``python`` otherwise.

The resolution is re-evaluated at every accumulator bind, so flipping the
backend between engine passes is safe; flipping it *during* a pass is not
(an accumulator's consume callable is built for one backend).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.common.errors import ReproError

#: Canonical backend names.
PYTHON = "python"
NUMPY = "numpy"

_BACKENDS = (PYTHON, NUMPY)

#: Environment variable selecting the backend (``python`` or ``numpy``).
ENV_VAR = "REPRO_KERNELS"

try:  # NumPy is optional: its absence simply pins the python backend.
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via the env escape hatch
    _numpy = None

#: In-process override; takes precedence over the environment variable.
_override: Optional[str] = None


def numpy_available() -> bool:
    """Whether NumPy imported successfully in this process."""
    return _numpy is not None


def numpy_module():
    """The imported ``numpy`` module, or ``None`` when unavailable."""
    return _numpy


def _validated(name: str, source: str) -> str:
    value = name.strip().lower()
    if value not in _BACKENDS:
        raise ReproError(
            f"unknown kernel backend {name!r} from {source}; "
            f"expected one of {', '.join(_BACKENDS)}"
        )
    if value == NUMPY and _numpy is None:
        raise ReproError(
            f"kernel backend 'numpy' requested via {source}, "
            "but numpy is not importable in this environment"
        )
    return value


def active_backend() -> str:
    """The backend name the next accumulator bind will use."""
    if _override is not None:
        return _override
    env = os.environ.get(ENV_VAR)
    if env:
        return _validated(env, f"${ENV_VAR}")
    return NUMPY if _numpy is not None else PYTHON


def use_numpy() -> bool:
    """Whether the vectorized NumPy kernels are active."""
    return active_backend() == NUMPY


def set_backend(name: Optional[str]) -> Optional[str]:
    """Install (or with ``None`` clear) the in-process backend override.

    Returns the previous override so callers can restore it; prefer the
    :func:`use_backend` context manager.
    """
    global _override
    previous = _override
    _override = None if name is None else _validated(name, "set_backend()")
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Context manager pinning the kernel backend for a ``with`` block."""
    previous = set_backend(name)
    try:
        yield active_backend()
    finally:
        global _override
        _override = previous
