"""Token-bucket rate limiting.

The paper shortlists 6 of 32 advertised EOS endpoints because only those had
"a generous rate limit with stable latency and throughput".  The simulated
endpoints therefore carry a configurable token-bucket limiter, and the
crawler has to cope with ``RateLimitExceeded`` responses exactly as the real
one did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import RateLimitExceeded


@dataclass
class TokenBucket:
    """Classic token-bucket limiter driven by an external (virtual) clock.

    Parameters
    ----------
    rate:
        Tokens replenished per second.
    capacity:
        Maximum number of tokens the bucket can hold (burst size).
    """

    rate: float
    capacity: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self._tokens = float(self.capacity)
        self._last_refill = 0.0

    @property
    def tokens(self) -> float:
        """Tokens currently available (as of the last observed time)."""
        return self._tokens

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            # The virtual clock never goes backwards; be defensive anyway.
            self._last_refill = now
            return
        elapsed = now - self._last_refill
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last_refill = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available, returning whether it succeeded."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def acquire_or_raise(self, now: float, tokens: float = 1.0) -> None:
        """Consume ``tokens`` or raise :class:`RateLimitExceeded`.

        The exception's ``retry_after`` tells the caller how long (in virtual
        seconds) until enough tokens will have accumulated.
        """
        if self.try_acquire(now, tokens):
            return
        deficit = tokens - self._tokens
        raise RateLimitExceeded(retry_after=deficit / self.rate)

    def time_until_available(self, now: float, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` could be acquired (0 if available now)."""
        self._refill(now)
        if self._tokens >= tokens:
            return 0.0
        return (tokens - self._tokens) / self.rate


class SlidingWindowCounter:
    """Count events within a trailing window of virtual time.

    Used by the endpoint health model to expose a requests-per-window view,
    which the crawler's endpoint shortlisting consults when ranking
    endpoints by observed throughput.
    """

    def __init__(self, window_seconds: float):
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = float(window_seconds)
        self._events: list = []

    def record(self, now: float, count: int = 1) -> None:
        """Record ``count`` events at virtual time ``now``."""
        self._events.append((now, count))

    def total(self, now: float) -> int:
        """Events observed in the window ending at ``now``."""
        cutoff = now - self.window_seconds
        self._events = [(when, count) for when, count in self._events if when > cutoff]
        return sum(count for _, count in self._events)

    def rate(self, now: float) -> float:
        """Events per second over the trailing window."""
        return self.total(now) / self.window_seconds
