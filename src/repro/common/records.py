"""Chain-agnostic block and transaction records.

The three simulators produce chain-specific objects internally, but the data
collection and analysis layers work with a single canonical representation so
that classification, throughput and account statistics can share code.  The
canonical records deliberately mirror the fields the paper's measurement
relies on: a chain identifier, a block height and timestamp, a per-transaction
type/action label, sender, receiver, an optional amount with its currency and
issuer, a success flag and a free-form metadata mapping for chain-specific
extras (destination tags, wash-trade markers, vote choices, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional


class ChainId(str, enum.Enum):
    """Identifier of one of the three studied blockchains."""

    EOS = "eos"
    TEZOS = "tezos"
    XRP = "xrp"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class TransactionRecord:
    """One transaction (EOS action, Tezos operation, XRP transaction).

    The paper counts EOS *actions* when building the type distribution
    (Figure 1) but *transactions* when characterising the dataset (Figure 2);
    ``transaction_id`` groups actions that were carried by the same on-chain
    transaction so that both views can be derived from one stream of records.
    """

    chain: ChainId
    transaction_id: str
    block_height: int
    timestamp: float
    type: str
    sender: str
    receiver: str
    contract: str = ""
    amount: float = 0.0
    currency: str = ""
    issuer: str = ""
    fee: float = 0.0
    success: bool = True
    error_code: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def with_metadata(self, **extra: Any) -> "TransactionRecord":
        """Return a copy with additional metadata entries."""
        merged: Dict[str, Any] = dict(self.metadata)
        merged.update(extra)
        return TransactionRecord(
            chain=self.chain,
            transaction_id=self.transaction_id,
            block_height=self.block_height,
            timestamp=self.timestamp,
            type=self.type,
            sender=self.sender,
            receiver=self.receiver,
            contract=self.contract,
            amount=self.amount,
            currency=self.currency,
            issuer=self.issuer,
            fee=self.fee,
            success=self.success,
            error_code=self.error_code,
            metadata=merged,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "chain": self.chain.value,
            "transaction_id": self.transaction_id,
            "block_height": self.block_height,
            "timestamp": self.timestamp,
            "type": self.type,
            "sender": self.sender,
            "receiver": self.receiver,
            "contract": self.contract,
            "amount": self.amount,
            "currency": self.currency,
            "issuer": self.issuer,
            "fee": self.fee,
            "success": self.success,
            "error_code": self.error_code,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TransactionRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            chain=ChainId(payload["chain"]),
            transaction_id=str(payload["transaction_id"]),
            block_height=int(payload["block_height"]),
            timestamp=float(payload["timestamp"]),
            type=str(payload["type"]),
            sender=str(payload["sender"]),
            receiver=str(payload["receiver"]),
            contract=str(payload.get("contract", "")),
            amount=float(payload.get("amount", 0.0)),
            currency=str(payload.get("currency", "")),
            issuer=str(payload.get("issuer", "")),
            fee=float(payload.get("fee", 0.0)),
            success=bool(payload.get("success", True)),
            error_code=str(payload.get("error_code", "")),
            metadata=dict(payload.get("metadata", {})),
        )


@dataclass(frozen=True)
class BlockRecord:
    """One block (EOS block, Tezos block, XRP ledger version)."""

    chain: ChainId
    height: int
    timestamp: float
    producer: str
    transactions: tuple
    block_id: str = ""
    previous_id: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalise list inputs so blocks are hashable / immutable in tests.
        if not isinstance(self.transactions, tuple):
            object.__setattr__(self, "transactions", tuple(self.transactions))

    @property
    def transaction_count(self) -> int:
        """Number of top-level transactions in the block.

        EOS actions sharing a ``transaction_id`` count once, mirroring the
        distinction between Figure 1 (actions) and Figure 2 (transactions).
        """
        seen = {record.transaction_id for record in self.transactions}
        return len(seen)

    @property
    def action_count(self) -> int:
        """Number of actions/operations carried by the block."""
        return len(self.transactions)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "chain": self.chain.value,
            "height": self.height,
            "timestamp": self.timestamp,
            "producer": self.producer,
            "block_id": self.block_id,
            "previous_id": self.previous_id,
            "metadata": dict(self.metadata),
            "transactions": [record.to_dict() for record in self.transactions],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BlockRecord":
        """Rebuild a block from :meth:`to_dict` output."""
        return cls(
            chain=ChainId(payload["chain"]),
            height=int(payload["height"]),
            timestamp=float(payload["timestamp"]),
            producer=str(payload["producer"]),
            block_id=str(payload.get("block_id", "")),
            previous_id=str(payload.get("previous_id", "")),
            metadata=dict(payload.get("metadata", {})),
            transactions=tuple(
                TransactionRecord.from_dict(item)
                for item in payload.get("transactions", [])
            ),
        )


def iter_transactions(blocks: Iterable[BlockRecord]) -> Iterable[TransactionRecord]:
    """Flatten an iterable of blocks into a stream of transaction records."""
    for block in blocks:
        for record in block.transactions:
            yield record


def count_transactions(blocks: Iterable[BlockRecord]) -> int:
    """Total number of top-level transactions across ``blocks``."""
    return sum(block.transaction_count for block in blocks)


def count_actions(blocks: Iterable[BlockRecord]) -> int:
    """Total number of actions/operations across ``blocks``."""
    return sum(block.action_count for block in blocks)


def sort_blocks(blocks: Iterable[BlockRecord]) -> List[BlockRecord]:
    """Return blocks sorted by ascending height (the crawler fetches in reverse)."""
    return sorted(blocks, key=lambda block: block.height)
