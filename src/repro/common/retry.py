"""Retry and backoff policies for the data-collection crawler.

The crawler in the paper ran for weeks against rate-limited public
endpoints; transient failures and throttling responses were routine.  The
policy objects here are deliberately free of real ``time.sleep`` calls — the
crawler advances a :class:`~repro.common.clock.SimulationClock` by the delay
the policy returns, keeping everything deterministic and fast under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


def _jitter_unit(seed: int, attempt: int) -> float:
    """A deterministic value in ``[0, 1)`` mixed from ``(seed, attempt)``.

    SplitMix64-style finalizer: cheap, stateless, and stable across
    processes (unlike ``hash()``), so two crawlers with different
    ``jitter_seed`` values decorrelate while each one's schedule is
    byte-reproducible.
    """
    mixed = (seed * 0x9E3779B97F4A7C15 + attempt + 1) & 0xFFFFFFFFFFFFFFFF
    mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 31
    return mixed / 2.0 ** 64


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with an upper bound.

    ``delay(attempt)`` returns the pause before retry number ``attempt``
    (0-based).  Jitter is per-attempt and seeded — each attempt's delay is
    stretched by a different fraction in ``[0, jitter_fraction]`` derived
    deterministically from ``(jitter_seed, attempt)`` — so concurrent
    fetches with distinct seeds decorrelate their retries instead of
    hammering an endpoint in lockstep, while any one schedule stays
    byte-reproducible.
    """

    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter_fraction: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be within [0, 1]")

    def delay(self, attempt: int) -> float:
        """Delay in seconds before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        raw = self.base_delay * (self.multiplier ** attempt)
        bounded = min(raw, self.max_delay)
        if self.jitter_fraction == 0.0:
            return bounded
        unit = _jitter_unit(self.jitter_seed, attempt)
        return bounded * (1.0 + self.jitter_fraction * unit)

    def delays(self, max_attempts: int) -> Iterator[float]:
        """Yield the delay schedule for ``max_attempts`` retries."""
        for attempt in range(max_attempts):
            yield self.delay(attempt)


@dataclass
class RetryBudget:
    """Tracks how many retries a single fetch may still consume.

    The crawler gives each block fetch a bounded budget; when it is spent the
    fetch is abandoned on the current endpoint and handed to the next one.
    """

    max_attempts: int = 5
    attempts_used: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")

    @property
    def exhausted(self) -> bool:
        return self.attempts_used >= self.max_attempts

    @property
    def remaining(self) -> int:
        return max(0, self.max_attempts - self.attempts_used)

    def consume(self) -> int:
        """Record one attempt; returns the attempt index just consumed."""
        if self.exhausted:
            raise RuntimeError("retry budget exhausted")
        index = self.attempts_used
        self.attempts_used += 1
        return index

    def reset(self) -> None:
        self.attempts_used = 0


def compute_retry_schedule(
    policy: BackoffPolicy,
    max_attempts: int,
    retry_after_hint: Optional[float] = None,
) -> list:
    """Full delay schedule, honouring an endpoint's ``Retry-After`` hint.

    When an endpoint tells the crawler how long to wait (HTTP 429 semantics),
    the first delay is raised to at least that hint; subsequent delays follow
    the exponential policy.
    """
    schedule = list(policy.delays(max_attempts))
    if retry_after_hint is not None and schedule:
        schedule[0] = max(schedule[0], float(retry_after_hint))
    return schedule
