"""Seeded random helpers used by the workload generators.

The workload generators reproduce the *statistical shape* of the traffic the
paper observed — heavily skewed account activity, categorical transaction
mixes, bursty spam waves.  This module wraps :class:`random.Random` with the
distributions those generators need, so that every scenario is reproducible
from a single integer seed.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with the distributions the workloads need."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream identified by ``label``.

        Forking lets each chain workload own its own stream so that changing
        one chain's parameters does not perturb another chain's draws.
        """
        child_seed = hash((self.seed, label)) & 0x7FFF_FFFF
        return DeterministicRng(child_seed)

    # -- primitive draws -------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        return self._random.sample(items, k)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    # -- distributions ---------------------------------------------------
    def categorical(self, weights: Dict[T, float]) -> T:
        """Draw a key from ``weights`` proportionally to its weight."""
        if not weights:
            raise ValueError("categorical draw requires at least one outcome")
        total = float(sum(weights.values()))
        if total <= 0:
            raise ValueError("categorical weights must sum to a positive value")
        point = self._random.random() * total
        cumulative = 0.0
        last_key = None
        for key, weight in weights.items():
            cumulative += weight
            last_key = key
            if point < cumulative:
                return key
        # Floating point slack: return the final key.
        return last_key  # type: ignore[return-value]

    def zipf_index(self, population: int, exponent: float = 1.1) -> int:
        """Draw an index in ``[0, population)`` following a Zipf-like law.

        Account activity on all three chains is extremely skewed (the 18 most
        active XRP accounts produce half the traffic); a truncated Zipf is the
        standard model for that shape.
        """
        if population <= 0:
            raise ValueError("population must be positive")
        if population == 1:
            return 0
        weights = [1.0 / math.pow(rank + 1, exponent) for rank in range(population)]
        total = sum(weights)
        point = self._random.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if point < cumulative:
                return index
        return population - 1

    def lognormal(self, mean: float, sigma: float) -> float:
        """Draw from a log-normal distribution (used for payment amounts)."""
        return self._random.lognormvariate(mean, sigma)

    def exponential(self, rate: float) -> float:
        """Draw an exponential inter-arrival time with the given rate."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return self._random.expovariate(rate)

    def poisson(self, mean: float) -> int:
        """Draw a Poisson-distributed count (Knuth's algorithm, small means)."""
        if mean < 0:
            raise ValueError("mean must be non-negative")
        if mean == 0:
            return 0
        if mean > 500:
            # Normal approximation keeps the draw O(1) for the large per-block
            # action counts that the EIDOS spike produces.
            value = self._random.gauss(mean, math.sqrt(mean))
            return max(0, int(round(value)))
        limit = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > limit:
            count += 1
            product *= self._random.random()
        return count

    def pareto_amount(self, scale: float, alpha: float = 1.5) -> float:
        """Draw a heavy-tailed positive amount (Pareto), scaled by ``scale``."""
        return scale * self._random.paretovariate(alpha)

    def pick_weighted_pairs(
        self, weights: Dict[T, float], count: int
    ) -> List[Tuple[T, T]]:
        """Draw ``count`` ordered (sender, receiver) pairs from one population."""
        pairs: List[Tuple[T, T]] = []
        for _ in range(count):
            sender = self.categorical(weights)
            receiver = self.categorical(weights)
            pairs.append((sender, receiver))
        return pairs

    def hex_string(self, length: int = 64) -> str:
        """Produce a deterministic pseudo-hash hex string of ``length`` chars."""
        return "".join(self._random.choice("0123456789abcdef") for _ in range(length))
