"""Bounded-memory streaming sketches for the ``REPRO_STATS=sketch`` mode.

Three mergeable summaries replace the accumulator layer's O(distinct)
exact state when sketch mode is active (:mod:`repro.common.statsmode`):

* :class:`HyperLogLog` — distinct transaction-id counts (Figure 2).
  2\\ :sup:`14` one-byte registers (~16 KB) give a ~0.81 % standard error;
  an exact *sparse* phase (a deduplicated hash buffer) keeps small
  cardinalities exact and converts to the dense registers only past
  :data:`HLL_SPARSE_LIMIT` distinct hashes.
* :class:`SpaceSaving` — top-account heavy hitters (Figures 4/5/6/8).
  A capacity-bounded tally with per-key over-count tracking: every
  estimate satisfies ``true <= estimate <= true + error``, and the tracked
  error is O(total / capacity).  Below capacity the summary *is* the exact
  tally.
* :class:`QuantileSketch` — payment-value distributions (§4.3).
  DDSketch-style logarithmic buckets with relative accuracy ``alpha``;
  merging adds bucket counts, so — like the HyperLogLog — the merged state
  is exactly independent of merge order.

All three share the contracts the accumulator layer needs: ``merge`` folds
another summary (process sharding, out-of-core chunk folding), and
``export_state`` / ``restore_state`` round-trip through
:mod:`repro.common.statecodec` payloads (checkpoints).  State payloads are
canonical — equal summaries export byte-identical payloads regardless of
the insertion or merge order that built them (the space-saving summary
canonicalises only once compaction has made the order unobservable).

Hashing
-------

Sketches must agree across processes, checkpoint restarts and kernel
backends, so the 64-bit string hash is deterministic (built-in ``hash`` is
salted per process) and ships in two bit-identical implementations:
:func:`hash64` (pure Python, the reference) and :func:`hash64_batch`
(vectorized: one NUL-joined buffer per slice, a precomputed power table
and a prefix-sum — no per-string Python work).  The
:meth:`~repro.common.columns.TxFrame.transaction_id_hashes` column caches
the batch hash per frame, so repeated sketch passes over the same frame
hash each id once.
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common import kernels
from repro.common.errors import ReproError
from repro.common.statecodec import CodecError

__all__ = [
    "DEFAULT_HEAVY_HITTERS",
    "DEFAULT_QUANTILE_ALPHA",
    "HLL_P",
    "HLL_SPARSE_LIMIT",
    "HyperLogLog",
    "QuantileSketch",
    "SpaceSaving",
    "hash64",
    "hash64_batch",
]

_MASK64 = (1 << 64) - 1

#: Polynomial base of the rolling hash (the FNV-1a 64-bit prime; odd, so it
#: is invertible modulo 2**64 and the vectorized prefix-sum factorisation
#: below is exact).
_BASE = 0x00000100000001B3
#: Modular inverse of the base — the pure-Python Horner fold multiplies by
#: this so it matches the vectorized forward factorisation bit for bit.
_INV_BASE = pow(_BASE, -1, 1 << 64)
#: Length salt folded in before the finalizer so prefixes of equal bytes
#: with different lengths cannot collide trivially.
_LEN_SALT = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: diffuses the polynomial fold into all 64 bits."""
    value ^= value >> 30
    value = (value * _MIX_1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX_2) & _MASK64
    value ^= value >> 31
    return value


def hash64(value: str) -> int:
    """Deterministic 64-bit hash of a string (pure-Python reference).

    A polynomial fold of the UTF-8 bytes modulo 2**64 (Horner, multiplier
    :data:`_INV_BASE`) followed by a SplitMix64 finalizer.  Stable across
    processes and Python versions — unlike built-in ``hash``, whose
    per-process salt would make persisted sketches unmergeable.
    """
    data = value.encode("utf-8")
    fold = 0
    for byte in data:
        fold = (fold * _INV_BASE + byte) & _MASK64
    return _mix64(fold ^ ((len(data) * _LEN_SALT) & _MASK64))


#: Ids per vectorized hashing slice; bounds the power-table size.
_HASH_SLICE = 16_384

#: Lazily grown (powers, inverse powers) tables for the vectorized hash.
_POWER_TABLES: Optional[Tuple[Any, Any]] = None


def _power_tables(size: int) -> Tuple[Any, Any]:
    global _POWER_TABLES
    tables = _POWER_TABLES
    if tables is not None and len(tables[0]) >= size:
        return tables
    np = kernels.numpy_module()
    grown = max(size, 1 << 16)
    powers = np.full(grown, _BASE, dtype=np.uint64)
    powers[0] = 1
    np.cumprod(powers, out=powers)
    inverse = np.full(grown, _INV_BASE, dtype=np.uint64)
    inverse[0] = 1
    np.cumprod(inverse, out=inverse)
    _POWER_TABLES = (powers, inverse)
    return _POWER_TABLES


def _hash64_batch_np(values: Sequence[str], out, start: int) -> None:
    """Vectorized batch hash of ``values`` into ``out[start:]``.

    One NUL-joined UTF-8 buffer per slice; per-string hashes fall out of a
    prefix sum of ``byte[i] * BASE**i`` — the segment sum times the inverse
    power of its end position equals the reference Horner fold exactly,
    because the base is odd and therefore invertible modulo 2**64.
    """
    np = kernels.numpy_module()
    uint64 = np.uint64
    for offset in range(0, len(values), _HASH_SLICE):
        chunk = values[offset : offset + _HASH_SLICE]
        joined = "\x00".join(chunk)
        data = joined.encode("utf-8")
        if joined.count("\x00") != len(chunk) - 1:
            # An id embeds NUL: fall back to the reference loop, which has
            # no separator to corrupt.
            position = start + offset
            for index, value in enumerate(chunk):
                out[position + index] = hash64(value)
            continue
        buffer = np.frombuffer(data, dtype=np.uint8)
        powers, inverse = _power_tables(len(buffer) + 1)
        prefix = np.zeros(len(buffer) + 1, dtype=uint64)
        np.cumsum(
            buffer.astype(uint64) * powers[: len(buffer)],
            out=prefix[1:],
            dtype=uint64,
        )
        separators = np.flatnonzero(buffer == 0)
        starts = np.empty(len(chunk), dtype=np.int64)
        ends = np.empty(len(chunk), dtype=np.int64)
        starts[0] = 0
        starts[1:] = separators + 1
        ends[:-1] = separators
        ends[-1] = len(buffer)
        # Segment fold: (prefix[b] - prefix[a]) * BASE**-(b-1); empty
        # strings (a == b) fold to zero, matching the reference loop.
        folds = (prefix[ends] - prefix[starts]) * inverse[
            np.maximum(ends, 1) - 1
        ]
        lengths = (ends - starts).astype(uint64)
        mixed = folds ^ (lengths * uint64(_LEN_SALT))
        mixed ^= mixed >> uint64(30)
        mixed *= uint64(_MIX_1)
        mixed ^= mixed >> uint64(27)
        mixed *= uint64(_MIX_2)
        mixed ^= mixed >> uint64(31)
        out[start + offset : start + offset + len(chunk)] = mixed


def hash64_batch(values: Sequence[str]) -> array:
    """Hash a string sequence into a ``uint64`` column (``array('Q')``).

    Uses the vectorized slice hasher when NumPy is importable and the pure
    reference loop otherwise; both produce identical values.
    """
    if kernels.numpy_available():
        np = kernels.numpy_module()
        column = array("Q", bytes(8 * len(values)))
        out = np.frombuffer(column, dtype=np.uint64)
        _hash64_batch_np(values, out, 0)
        return column
    return array("Q", map(hash64, values))


# -- HyperLogLog -----------------------------------------------------------------------

#: Register-index bits: 2**14 = 16384 registers, ~0.81 % standard error.
HLL_P = 14

#: Distinct hashes kept exactly before converting to dense registers.  The
#: sparse phase makes small workloads exact in sketch mode (and therefore
#: byte-identical to exact mode), while the bound keeps memory O(1).
HLL_SPARSE_LIMIT = 65_536


def _hll_sigma(x: float) -> float:
    """Ertl's ``sigma``: expected zero-register mass under x = C[0]/m."""
    if x == 1.0:
        return math.inf
    y = 1.0
    z = x
    while True:
        x *= x
        previous = z
        z += x * y
        y += y
        if z == previous:
            return z


def _hll_tau(x: float) -> float:
    """Ertl's ``tau``: saturated-register mass under x = (m - C[q+1])/m."""
    if x == 0.0 or x == 1.0:
        return 0.0
    y = 1.0
    z = 1.0 - x
    while True:
        x = math.sqrt(x)
        previous = z
        y *= 0.5
        z -= (1.0 - x) ** 2 * y
        if z == previous:
            return z / 3.0


#: ``1 / (2 ln 2)`` — the asymptotic constant of Ertl's raw estimator.
_HLL_ALPHA_INF = 0.5 / math.log(2.0)


class HyperLogLog:
    """Mergeable distinct counter over 64-bit hashes.

    The register for a hash is its low ``p`` bits; the rank is one plus the
    number of trailing zeros of the remaining bits (so the rank is exact in
    integer arithmetic on both backends — no float log2 of a full-width
    word).  Merging takes the element-wise register maximum, which makes
    the dense state — and the estimate — exactly independent of insertion
    and merge order.

    The sparse phase buffers raw hashes in an ``array('Q')`` and
    deduplicates with a periodic compaction, so small cardinalities count
    exactly at memcpy speed; once the distinct count exceeds
    ``sparse_limit`` the buffer folds into the dense registers.  Both
    representations are pure functions of the hash *set*, so any merge
    order yields the same state.
    """

    __slots__ = ("p", "m", "sparse_limit", "_registers", "_sparse", "_sorted")

    def __init__(self, p: int = HLL_P, sparse_limit: int = HLL_SPARSE_LIMIT):
        if not 4 <= p <= 18:
            raise ReproError(f"HyperLogLog precision must be in [4, 18], got {p}")
        self.p = p
        self.m = 1 << p
        self.sparse_limit = sparse_limit
        #: Dense registers, or ``None`` while sparse.
        self._registers: Optional[array] = None
        #: Sparse hash buffer (may contain duplicates until compaction).
        self._sparse: Optional[array] = array("Q")
        #: Whether the sparse buffer is currently deduplicated and sorted.
        self._sorted = True

    # -- adding ------------------------------------------------------------------
    def add_hash(self, value: int) -> None:
        sparse = self._sparse
        if sparse is not None:
            sparse.append(value)
            self._sorted = False
            if len(sparse) > self.sparse_limit:
                self._compact()
            return
        self._add_dense(value)

    def add(self, value: str) -> None:
        self.add_hash(hash64(value))

    def update(self, hashes: Iterable[int]) -> None:
        sparse = self._sparse
        if sparse is not None:
            sparse.extend(hashes)
            self._sorted = False
            if len(sparse) > self.sparse_limit:
                self._compact()
            return
        for value in hashes:
            self._add_dense(value)

    def update_np(self, hashes) -> None:
        """Fold a ``uint64`` ndarray of hashes in (vectorized)."""
        np = kernels.numpy_module()
        sparse = self._sparse
        if sparse is not None:
            sparse.frombytes(np.ascontiguousarray(hashes, dtype=np.uint64).tobytes())
            self._sorted = False
            if len(sparse) > self.sparse_limit:
                self._compact()
            return
        registers = np.frombuffer(self._registers, dtype=np.uint8)
        uint64 = np.uint64
        hashes = np.ascontiguousarray(hashes, dtype=np.uint64)
        indices = (hashes & uint64(self.m - 1)).astype(np.int64)
        tail = hashes >> uint64(self.p)
        # Rank = trailing zeros + 1 of the tail: isolate the lowest set bit
        # (exactly representable as a float64 power of two) and read its
        # exponent; a zero tail saturates at the maximum rank.
        lowest = tail & (~tail + uint64(1))
        ranks = np.ones(len(hashes), dtype=np.uint8)
        nonzero = lowest != 0
        ranks[nonzero] += np.log2(lowest[nonzero].astype(np.float64)).astype(np.uint8)
        ranks[~nonzero] = 64 - self.p + 1
        np.maximum.at(registers, indices, ranks)

    def _add_dense(self, value: int) -> None:
        index = value & (self.m - 1)
        tail = value >> self.p
        if tail:
            rank = (tail & -tail).bit_length()
        else:
            rank = 64 - self.p + 1
        registers = self._registers
        if rank > registers[index]:
            registers[index] = rank

    # -- representation management -------------------------------------------------
    def _compact(self) -> None:
        """Deduplicate the sparse buffer; convert to dense past the limit."""
        sparse = self._sparse
        if sparse is None:
            return
        if not self._sorted:
            if kernels.numpy_available() and len(sparse) > 1024:
                np = kernels.numpy_module()
                unique = np.unique(np.frombuffer(sparse, dtype=np.uint64))
                compacted = array("Q")
                compacted.frombytes(unique.tobytes())
            else:
                compacted = array("Q", sorted(set(sparse)))
            self._sparse = sparse = compacted
            self._sorted = True
        if len(sparse) > self.sparse_limit:
            self._registers = array("B", bytes(self.m))
            self._sparse = None
            if kernels.numpy_available():
                np = kernels.numpy_module()
                self.update_np(np.frombuffer(sparse, dtype=np.uint64))
            else:
                for value in sparse:
                    self._add_dense(value)

    # -- reading -----------------------------------------------------------------
    def count(self) -> int:
        """Estimated distinct count (exact while sparse).

        The dense estimate is Ertl's improved raw estimator (*New
        cardinality estimation algorithms for HyperLogLog sketches*, 2017):
        the register histogram's zero and saturated masses are replaced by
        their expected continuous contributions (``sigma`` / ``tau``),
        which removes the classic raw estimator's bias bump in the
        linear-counting crossover region without empirical correction
        tables.  Pure python floats, so the estimate is bit-identical on
        both kernel backends.
        """
        self._compact()
        sparse = self._sparse
        if sparse is not None:
            return len(sparse)
        q = 64 - self.p  # ranks run 1..q+1; 0 marks an untouched register
        histogram = [0] * (q + 2)
        for rank in self._registers:
            histogram[rank] += 1
        m = self.m
        z = m * _hll_tau((m - histogram[q + 1]) / m)
        for k in range(q, 0, -1):
            z = 0.5 * (z + histogram[k])
        z += m * _hll_sigma(histogram[0] / m)
        return int(round(_HLL_ALPHA_INF * m * m / z))

    @property
    def is_sparse(self) -> bool:
        return self._sparse is not None

    # -- merging / state -----------------------------------------------------------
    def merge(self, other: "HyperLogLog") -> None:
        if self.p != other.p:
            raise ReproError(
                f"cannot merge HyperLogLog(p={other.p}) into HyperLogLog(p={self.p})"
            )
        other._compact()
        if other._sparse is not None:
            self.update(other._sparse)
            self._compact()
            return
        if self._registers is None:
            sparse = self._sparse
            self._registers = array("B", other._registers)
            self._sparse = None
            if sparse is not None:
                for value in sparse:
                    self._add_dense(value)
            return
        mine = self._registers
        for index, rank in enumerate(other._registers):
            if rank > mine[index]:
                mine[index] = rank

    def export_state(self) -> Dict[str, Any]:
        """Canonical payload: equal hash sets export equal payloads."""
        self._compact()
        if self._sparse is not None:
            return {"p": self.p, "sparse": self._sparse, "regs": None}
        return {"p": self.p, "sparse": None, "regs": self._registers}

    def restore_state(self, payload: Dict[str, Any]) -> None:
        try:
            p = payload["p"]
            sparse = payload["sparse"]
            registers = payload["regs"]
        except (TypeError, KeyError):
            raise CodecError("HyperLogLog payload is malformed") from None
        if p != self.p:
            raise CodecError(
                f"HyperLogLog payload has precision {p}, expected {self.p}"
            )
        if sparse is not None:
            if not isinstance(sparse, array) or sparse.typecode != "Q":
                raise CodecError("HyperLogLog sparse payload is malformed")
            self.update(sparse)
            self._compact()
            return
        if not isinstance(registers, array) or registers.typecode != "B":
            raise CodecError("HyperLogLog register payload is malformed")
        if len(registers) != self.m:
            raise CodecError(
                f"HyperLogLog payload has {len(registers)} registers, expected {self.m}"
            )
        other = HyperLogLog(self.p, self.sparse_limit)
        other._registers = registers
        other._sparse = None
        self.merge(other)


# -- Space-saving heavy hitters --------------------------------------------------------

#: Default heavy-hitter capacity: comfortably above the paper workloads'
#: distinct key counts (so the summary is exact there) while bounding the
#: entry count — and therefore memory — at any scale.
DEFAULT_HEAVY_HITTERS = 8_192


class SpaceSaving:
    """Capacity-bounded weighted tally with per-key over-count tracking.

    A batch-eviction variant of the space-saving summary (Metwally et al.)
    formulated as a tally plus a *floor*: the floor is the largest count
    ever evicted, new keys enter at ``floor + weight`` with tracked error
    ``floor``, and when the entry count exceeds twice the capacity the
    smallest entries are evicted in one pass.  Invariants, for every key:

    * ``true <= estimate`` (no key is ever under-counted), and
    * ``estimate - error(key) <= true`` — the tracked per-key error is a
      certificate of the over-count, so a caller can always bound the truth
      to ``[estimate - error, estimate]``.

    The floor (and hence every error) is O(``total / capacity``).  Below
    capacity nothing is ever evicted, the floor stays zero, and the summary
    is the exact tally — which is what keeps sketch mode byte-identical to
    exact mode on the paper-scale workloads.

    Merging sums counts and errors for shared keys; a key present on one
    side only absorbs the other side's floor (its occurrences there, if
    any, were below that floor).  The result keeps both invariants, but —
    unlike the HyperLogLog and quantile sketches — the retained key *set*
    may depend on merge order once eviction has occurred; the figure-level
    guarantee is the error envelope, not state identity.
    """

    __slots__ = ("capacity", "total", "floor", "_counts", "_errors")

    def __init__(self, capacity: int = DEFAULT_HEAVY_HITTERS):
        if capacity < 1:
            raise ReproError(f"SpaceSaving capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.total = 0
        self.floor = 0
        self._counts: Dict[Any, int] = {}
        self._errors: Dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._counts)

    def add(self, key, count: int = 1) -> None:
        self.total += count
        counts = self._counts
        present = counts.get(key)
        if present is not None:
            counts[key] = present + count
            return
        floor = self.floor
        counts[key] = floor + count
        if floor:
            self._errors[key] = floor
        if len(counts) > 2 * self.capacity:
            self._evict()

    def update_counts(self, tally: Dict[Any, int]) -> None:
        """Fold a block-local exact tally in (the batch kernels' entry)."""
        for key, count in tally.items():
            self.add(key, count)

    def _evict(self) -> None:
        """One-pass batch eviction down to ``capacity`` entries.

        Ties at the boundary break on the key, so the surviving set — and
        the canonical export order — never depend on dict insertion order
        once compaction has occurred.
        """
        ranked = sorted(self._counts.items(), key=lambda item: (-item[1], item[0]))
        kept = ranked[: self.capacity]
        self.floor = max(self.floor, ranked[self.capacity][1])
        errors = self._errors
        self._counts = dict(kept)
        self._errors = {
            key: errors[key] for key, _ in kept if key in errors
        }

    def error(self, key) -> int:
        """Tracked over-count bound of one key's estimate."""
        return self._errors.get(key, 0)

    def items(self) -> List[Tuple[Any, int, int]]:
        """``(key, estimate, error)`` rows, largest estimates first."""
        errors = self._errors
        return sorted(
            (
                (key, count, errors.get(key, 0))
                for key, count in self._counts.items()
            ),
            key=lambda row: (-row[1], row[0]),
        )

    def counts(self) -> Dict[Any, int]:
        """The live estimates, in first-seen order while below capacity."""
        return self._counts

    @property
    def is_exact(self) -> bool:
        """Whether the summary still holds the exact tally (no evictions)."""
        return self.floor == 0

    def merge(self, other: "SpaceSaving") -> None:
        if self.capacity != other.capacity:
            raise ReproError(
                f"cannot merge SpaceSaving(capacity={other.capacity}) into "
                f"SpaceSaving(capacity={self.capacity})"
            )
        self._merge_parts(
            other._counts, other._errors, other.floor, other.total
        )

    def _merge_parts(
        self,
        other_counts: Dict[Any, int],
        other_errors: Dict[Any, int],
        other_floor: int,
        other_total: int,
    ) -> None:
        counts = self._counts
        errors = self._errors
        my_floor = self.floor
        for key, count in other_counts.items():
            present = counts.get(key)
            error = other_errors.get(key, 0)
            if present is None:
                # Unseen here: its occurrences on this side were below the
                # local floor, which becomes part of the estimate and of
                # the tracked error.
                counts[key] = count + my_floor
                error += my_floor
            else:
                counts[key] = present + count
                error += errors.get(key, 0)
            if error:
                errors[key] = error
        if other_floor:
            for key, present in counts.items():
                if key not in other_counts:
                    counts[key] = present + other_floor
                    errors[key] = errors.get(key, 0) + other_floor
        self.total += other_total
        self.floor = my_floor + other_floor
        if len(counts) > 2 * self.capacity:
            self._evict()

    def export_state(self) -> Dict[str, Any]:
        """Canonical packed payload (count-descending, key tie-break)."""
        rows = self.items() if self.floor else list(
            (key, count, self._errors.get(key, 0))
            for key, count in self._counts.items()
        )
        first = next(iter(self._counts), None)
        width = len(first) if isinstance(first, tuple) else 1
        if width == 1:
            keys = [array("q", (row[0] for row in rows))]
        else:
            keys = [
                array("q", (row[0][column] for row in rows))
                for column in range(width)
            ]
        return {
            "cap": self.capacity,
            "total": self.total,
            "floor": self.floor,
            "w": width,
            "keys": keys,
            "counts": array("q", (row[1] for row in rows)),
            "errors": array("q", (row[2] for row in rows)),
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        try:
            capacity = payload["cap"]
            total = payload["total"]
            floor = payload["floor"]
            width = payload["w"]
            keys = payload["keys"]
            counts = payload["counts"]
            errors = payload["errors"]
        except (TypeError, KeyError):
            raise CodecError("SpaceSaving payload is malformed") from None
        if capacity != self.capacity:
            raise CodecError(
                f"SpaceSaving payload has capacity {capacity}, "
                f"expected {self.capacity}"
            )
        if width != len(keys) or any(
            len(column) != len(counts) for column in keys
        ) or len(errors) != len(counts):
            raise CodecError("SpaceSaving payload is inconsistent")
        if width == 1:
            key_iter = iter(keys[0])
        else:
            key_iter = iter(zip(*keys))
        other_counts = dict(zip(key_iter, counts))
        other_errors = {
            key: error
            for key, error in zip(
                keys[0] if width == 1 else zip(*keys), errors
            )
            if error
        }
        self._merge_parts(other_counts, other_errors, floor, total)


# -- DDSketch-style quantiles ----------------------------------------------------------

#: Default relative accuracy of the quantile sketch (1 %).
DEFAULT_QUANTILE_ALPHA = 0.01

#: Bucket-index clamp: with ``alpha = 0.01`` this covers values from about
#: 1e-17 to 1e17; values outside collapse into the edge buckets (bounding
#: the bucket count at any scale, at the price of unbounded relative error
#: beyond the clamp).
_QUANTILE_INDEX_BOUND = 2_048


class QuantileSketch:
    """Mergeable log-bucket quantile sketch with relative accuracy ``alpha``.

    DDSketch-style: a non-negative value lands in bucket
    ``ceil(log(x) / log(gamma))`` with ``gamma = (1 + alpha)/(1 - alpha)``,
    and the bucket's representative value is off by at most ``alpha``
    relative error.  Zero values count separately (exactly).  Merging adds
    bucket counts, so the state is exactly independent of insertion and
    merge order, and bucket indices are computed with ``math.log`` on both
    kernel backends so the binning is bit-identical everywhere.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "_buckets", "_zeros", "total")

    def __init__(self, alpha: float = DEFAULT_QUANTILE_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ReproError(f"quantile alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zeros = 0
        self.total = 0

    def _index(self, value: float) -> int:
        index = math.ceil(math.log(value) / self._log_gamma)
        if index < -_QUANTILE_INDEX_BOUND:
            return -_QUANTILE_INDEX_BOUND
        if index > _QUANTILE_INDEX_BOUND:
            return _QUANTILE_INDEX_BOUND
        return index

    def _value(self, index: int) -> float:
        # Midpoint of the bucket's value range (gamma**(i-1), gamma**i].
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def add(self, value: float, count: int = 1) -> None:
        if value < 0.0:
            raise ReproError(
                f"QuantileSketch accepts non-negative values, got {value!r}"
            )
        self.total += count
        if value == 0.0:
            self._zeros += count
            return
        index = self._index(value)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + count

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (lower nearest-rank convention)."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if not self.total:
            return 0.0
        rank = int(q * (self.total - 1))
        if rank < self._zeros:
            return 0.0
        cumulative = self._zeros
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative > rank:
                return self._value(index)
        return self._value(max(self._buckets)) if self._buckets else 0.0

    def sum(self) -> float:
        """Approximate sum of the inserted values (within ``alpha`` relative).

        Deterministic regardless of insertion or merge order: the buckets
        are summed in index order with exact float summation.
        """
        return math.fsum(
            self._buckets[index] * self._value(index)
            for index in sorted(self._buckets)
        )

    def min_value(self) -> float:
        """Approximate minimum (0.0 exactly when any zero was inserted)."""
        if self._zeros:
            return 0.0
        if not self._buckets:
            return 0.0
        return self._value(min(self._buckets))

    def max_value(self) -> float:
        """Approximate maximum of the inserted values."""
        if not self._buckets:
            return 0.0
        return self._value(max(self._buckets))

    def merge(self, other: "QuantileSketch") -> None:
        if self.alpha != other.alpha:
            raise ReproError(
                f"cannot merge QuantileSketch(alpha={other.alpha}) into "
                f"QuantileSketch(alpha={self.alpha})"
            )
        buckets = self._buckets
        for index, count in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + count
        self._zeros += other._zeros
        self.total += other.total

    def export_state(self) -> Dict[str, Any]:
        """Canonical payload: buckets sorted by index."""
        indices = sorted(self._buckets)
        return {
            "alpha": self.alpha,
            "zeros": self._zeros,
            "total": self.total,
            "idx": array("q", indices),
            "counts": array("q", (self._buckets[index] for index in indices)),
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        try:
            alpha = payload["alpha"]
            zeros = payload["zeros"]
            total = payload["total"]
            indices = payload["idx"]
            counts = payload["counts"]
        except (TypeError, KeyError):
            raise CodecError("QuantileSketch payload is malformed") from None
        if alpha != self.alpha:
            raise CodecError(
                f"QuantileSketch payload has alpha {alpha}, expected {self.alpha}"
            )
        if len(indices) != len(counts):
            raise CodecError("QuantileSketch payload is inconsistent")
        buckets = self._buckets
        for index, count in zip(indices, counts):
            buckets[index] = buckets.get(index, 0) + count
        self._zeros += zeros
        self.total += total
