"""Restricted binary codec for accumulator state snapshots.

Checkpoints used to persist accumulator state with :mod:`pickle`, which has
two costs: unpickling executes an open-ended instruction stream (anything on
disk at the checkpoint path gets to construct arbitrary objects), and big
Python collections — the transaction-id set, account/pair tallies — pay a
per-element serialisation price both ways.  This module replaces that with a
closed, versioned value codec:

* only **data** round-trips — ``None``, ``bool``, ``int``, ``float``,
  ``str``, ``bytes``, ``list``, ``tuple``, ``dict`` and ``array.array``.
  There is no class instantiation, no imports, no code: decoding untrusted
  bytes can produce garbage values but never execute behaviour;
* big collections are expected to arrive **packed** (the helpers below turn
  string collections into one joined blob and integer/float tables into
  ``array('q')``/``array('d')`` columns), so encode/decode cost scales with
  the number of *columns*, not the number of elements;
* every frame is strict: an unknown tag, a truncated buffer or trailing
  bytes raise :class:`CodecError`, which the checkpoint layer maps to "no
  usable snapshot → full rescan".

Scalars are encoded little-endian.  ``array`` payloads carry raw machine
bytes for speed; the header records the writing host's byte order and the
decoder byte-swaps when reading a snapshot produced on the other endianness.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Any, Dict, Iterable, Iterator, List, Mapping, MutableMapping, Tuple

__all__ = [
    "CodecError",
    "decode",
    "encode",
    "iter_code_table",
    "pack_code_table",
    "pack_str_table",
    "pack_strings",
    "restore_code_table",
    "restore_str_table",
    "unpack_strings",
]


class CodecError(ValueError):
    """A snapshot buffer cannot be decoded (corrupt, truncated, or foreign)."""


#: Format magic + codec version; bump the trailing byte on layout changes.
MAGIC = b"RSC\x01"

#: Byte-order markers following the magic.
_LITTLE = b"<"
_BIG = b">"

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT64 = b"i"
_TAG_BIGINT = b"I"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_ARRAY = b"a"

_INT64 = struct.Struct("<q")
_FLOAT64 = struct.Struct("<d")
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _write_varint(parts: List[bytes], value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            parts.append(bytes((byte | 0x80,)))
        else:
            parts.append(bytes((byte,)))
            return


def _encode_value(parts: List[bytes], value: Any) -> None:
    # ``bool`` first: it subclasses ``int``.
    if value is None:
        parts.append(_TAG_NONE)
    elif value is True:
        parts.append(_TAG_TRUE)
    elif value is False:
        parts.append(_TAG_FALSE)
    elif type(value) is int or isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            parts.append(_TAG_INT64)
            parts.append(_INT64.pack(value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "little", signed=True)
            parts.append(_TAG_BIGINT)
            _write_varint(parts, len(raw))
            parts.append(raw)
    elif isinstance(value, float):
        parts.append(_TAG_FLOAT)
        parts.append(_FLOAT64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        parts.append(_TAG_STR)
        _write_varint(parts, len(raw))
        parts.append(raw)
    elif isinstance(value, (bytes, bytearray)):
        parts.append(_TAG_BYTES)
        _write_varint(parts, len(value))
        parts.append(bytes(value))
    elif isinstance(value, array):
        raw = value.tobytes()
        parts.append(_TAG_ARRAY)
        parts.append(value.typecode.encode("ascii"))
        _write_varint(parts, len(raw))
        parts.append(raw)
    elif isinstance(value, list):
        parts.append(_TAG_LIST)
        _write_varint(parts, len(value))
        for item in value:
            _encode_value(parts, item)
    elif isinstance(value, tuple):
        parts.append(_TAG_TUPLE)
        _write_varint(parts, len(value))
        for item in value:
            _encode_value(parts, item)
    elif isinstance(value, dict):
        parts.append(_TAG_DICT)
        _write_varint(parts, len(value))
        for key, item in value.items():
            _encode_value(parts, key)
            _encode_value(parts, item)
    else:
        raise CodecError(
            f"state codec cannot encode {type(value).__name__!r}; snapshot "
            "payloads must be built from data values and packed arrays"
        )


def encode_parts(value: Any) -> List[bytes]:
    """The snapshot buffer as its raw segment list (header first).

    Lets writers stream a large snapshot straight to a file
    (``handle.writelines``) without first re-joining multi-megabyte chain
    blobs into one intermediate ``bytes``.
    """
    parts: List[bytes] = [
        MAGIC,
        _LITTLE if sys.byteorder == "little" else _BIG,
    ]
    _encode_value(parts, value)
    return parts


def encode(value: Any) -> bytes:
    """Serialise ``value`` into a self-contained snapshot buffer."""
    return b"".join(encode_parts(value))


class _Reader:
    __slots__ = ("buffer", "position", "swap")

    def __init__(self, buffer: bytes, swap: bool):
        self.buffer = buffer
        self.position = 0
        self.swap = swap

    def take(self, count: int) -> bytes:
        end = self.position + count
        if end > len(self.buffer):
            raise CodecError("snapshot buffer is truncated")
        chunk = self.buffer[self.position : end]
        self.position = end
        return chunk

    def varint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise CodecError("snapshot varint overflows")


def _decode_value(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT64:
        return _INT64.unpack(reader.take(8))[0]
    if tag == _TAG_BIGINT:
        raw = reader.take(reader.varint())
        return int.from_bytes(raw, "little", signed=True)
    if tag == _TAG_FLOAT:
        return _FLOAT64.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        raw = reader.take(reader.varint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise CodecError(f"snapshot string is not valid UTF-8: {error}") from None
    if tag == _TAG_BYTES:
        return reader.take(reader.varint())
    if tag == _TAG_ARRAY:
        typecode = reader.take(1).decode("ascii", errors="replace")
        raw = reader.take(reader.varint())
        try:
            column = array(typecode)
        except ValueError:
            raise CodecError(f"snapshot array has unknown typecode {typecode!r}") from None
        if len(raw) % column.itemsize:
            raise CodecError(
                f"snapshot array of typecode {typecode!r} has a torn payload "
                f"({len(raw)} bytes, itemsize {column.itemsize})"
            )
        column.frombytes(raw)
        if reader.swap and column.itemsize > 1:
            column.byteswap()
        return column
    if tag == _TAG_LIST:
        return [_decode_value(reader) for _ in range(reader.varint())]
    if tag == _TAG_TUPLE:
        return tuple(_decode_value(reader) for _ in range(reader.varint()))
    if tag == _TAG_DICT:
        return {
            _decode_value(reader): _decode_value(reader)
            for _ in range(reader.varint())
        }
    raise CodecError(f"snapshot buffer has unknown tag {tag!r}")


def decode(buffer: bytes) -> Any:
    """Deserialise a buffer produced by :func:`encode` (strict)."""
    if not isinstance(buffer, (bytes, bytearray, memoryview)):
        raise CodecError(f"snapshot buffer must be bytes, not {type(buffer).__name__}")
    buffer = bytes(buffer)
    if len(buffer) < len(MAGIC) + 1 or not buffer.startswith(MAGIC):
        raise CodecError("snapshot buffer has no codec header")
    order = buffer[len(MAGIC) : len(MAGIC) + 1]
    if order not in (_LITTLE, _BIG):
        raise CodecError(f"snapshot buffer has unknown byte-order marker {order!r}")
    native = _LITTLE if sys.byteorder == "little" else _BIG
    reader = _Reader(buffer, swap=order != native)
    reader.position = len(MAGIC) + 1
    try:
        value = _decode_value(reader)
    except CodecError:
        raise
    except (TypeError, RecursionError, MemoryError, OverflowError) as error:
        # Corruption can also surface as an unhashable decoded dict key, a
        # pathologically deep nesting, or an absurd length prefix — all of
        # them are "this buffer is not a snapshot", not crashes.
        raise CodecError(f"snapshot buffer is malformed: {error!r}") from None
    if reader.position != len(buffer):
        raise CodecError(
            f"snapshot buffer has {len(buffer) - reader.position} trailing bytes"
        )
    return value


# -- packing helpers -------------------------------------------------------------------
#: Separator used by the fast string-column packing.  NUL never occurs in the
#: chain-derived strings (transaction ids, accounts, currencies, categories);
#: when a value does contain it, the packer falls back to a length-prefixed
#: layout instead of corrupting the column.
_SEP = "\x00"


def pack_strings(values: Iterable[str]) -> Dict[str, Any]:
    """Pack a string collection into one UTF-8 blob (order-preserving).

    The hot path is two C calls — ``str.join`` and one ``encode`` — instead
    of a per-string loop, which is what lets the transaction-id set snapshot
    in O(bytes) rather than O(strings).
    """
    items = values if isinstance(values, list) else list(values)
    count = len(items)
    if not count:
        return {"n": 0, "blob": b""}
    joined = _SEP.join(items)
    if joined.count(_SEP) != count - 1:
        encoded = [item.encode("utf-8") for item in items]
        return {
            "n": count,
            "blob": b"".join(encoded),
            "lengths": array("q", map(len, encoded)),
        }
    return {"n": count, "blob": joined.encode("utf-8")}


def unpack_strings(payload: Mapping[str, Any]) -> List[str]:
    """Invert :func:`pack_strings`; validates the element count."""
    try:
        count = payload["n"]
        blob = payload["blob"]
    except (TypeError, KeyError):
        raise CodecError("string column payload is malformed") from None
    if not count:
        return []
    try:
        lengths = payload.get("lengths")
        if lengths is not None:
            items: List[str] = []
            position = 0
            for length in lengths:
                items.append(blob[position : position + length].decode("utf-8"))
                position += length
            if len(items) != count or position != len(blob):
                raise CodecError("string column payload is inconsistent")
            return items
        items = blob.decode("utf-8").split(_SEP)
    except (UnicodeDecodeError, AttributeError, TypeError) as error:
        raise CodecError(f"string column payload is malformed: {error!r}") from None
    if len(items) != count:
        raise CodecError("string column payload is inconsistent")
    return items


def pack_code_table(table: Mapping, width: int) -> Dict[str, Any]:
    """Pack an integer-keyed tally into ``width`` int64 key columns + counts.

    Keys are plain ints (``width == 1``) or ``width``-tuples of ints; the
    column order preserves the mapping's insertion order, which several
    figures depend on (``Counter.most_common`` tie-breaks replay first-seen
    order).
    """
    if width == 1:
        keys = [array("q", table.keys())]
    elif table:
        keys = [array("q", column) for column in zip(*table.keys())]
    else:
        keys = [array("q") for _ in range(width)]
    return {"w": width, "keys": keys, "counts": array("q", table.values())}


def iter_code_table(payload: Mapping[str, Any]) -> Iterator[Tuple[Any, int]]:
    """Iterate a packed tally as ``(key, count)`` pairs in stored order."""
    try:
        width = payload["w"]
        keys = payload["keys"]
        counts = payload["counts"]
    except (TypeError, KeyError):
        raise CodecError("code table payload is malformed") from None
    if width != len(keys) or any(len(column) != len(counts) for column in keys):
        raise CodecError("code table payload is inconsistent")
    if width == 1:
        return zip(keys[0], counts)
    return zip(zip(*keys), counts)


def restore_code_table(target: MutableMapping, payload: Mapping[str, Any]) -> None:
    """Fold a packed tally into ``target`` (adds counts; preserves order)."""
    pairs = iter_code_table(payload)
    if not target:
        # Fresh target (the checkpoint-restore hot path): one C-level build.
        target.update(dict(pairs))
        return
    get = target.get
    for key, count in pairs:
        target[key] = get(key, 0) + count


def pack_str_table(table: Mapping[str, int]) -> Dict[str, Any]:
    """Pack a string-keyed integer tally (order-preserving)."""
    return {"keys": pack_strings(table.keys()), "counts": array("q", table.values())}


def restore_str_table(target: MutableMapping, payload: Mapping[str, Any]) -> None:
    """Fold a packed string-keyed tally into ``target``."""
    try:
        keys = unpack_strings(payload["keys"])
        counts = payload["counts"]
    except (TypeError, KeyError):
        raise CodecError("string table payload is malformed") from None
    if len(keys) != len(counts):
        raise CodecError("string table payload is inconsistent")
    if not target:
        target.update(dict(zip(keys, counts)))
        return
    get = target.get
    for key, count in zip(keys, counts):
        target[key] = get(key, 0) + count
