"""Statistics mode selection: exact accumulators vs bounded-memory sketches.

The analysis layer computes the paper's distinct-count, top-k and
distribution statistics with exact per-key state by default: a Python
``set`` of transaction ids, full ``(account, type)`` tallies, every
successful payment value.  That state is O(distinct keys), which is the
measured floor on the ``tx_stats`` kernel and the single-process scale
ceiling the ROADMAP names.

``REPRO_STATS=sketch`` switches the affected accumulators to bounded-memory
streaming sketches (:mod:`repro.common.sketches`):

* **exact** (default) — the reference behaviour; every figure is computed
  from complete per-key state and results are exact;
* **sketch** — distinct transaction counts come from a HyperLogLog,
  top-account tables from space-saving heavy-hitter summaries, and the
  value distribution from a relative-error quantile sketch.  Accumulator
  state is O(1) in the row count; results carry the documented error
  bounds (see ``docs/architecture.md``).  Every sketch stays *exact* below
  its capacity, so small workloads produce identical figures in both
  modes.

Selection order mirrors :mod:`repro.common.kernels`:

1. an in-process override installed with :func:`set_mode` /
   :func:`use_mode` (what the differential tests use);
2. the ``REPRO_STATS`` environment variable (``exact`` or ``sketch``);
3. ``exact``.

Accumulators resolve the mode **at construction** and carry it in their
:meth:`~repro.analysis.engine.Accumulator.config_signature`, so a
checkpoint written in one mode can never be silently merged into a pass
running in the other — the signature mismatch forces a full rescan.
Factories that ship accumulator construction to worker processes
(:mod:`repro.analysis.parallel`) pin the parent's resolved mode into the
factory arguments, so an in-process override survives the process hop.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.common.errors import ReproError

#: Canonical mode names.
EXACT = "exact"
SKETCH = "sketch"

_MODES = (EXACT, SKETCH)

#: Environment variable selecting the mode (``exact`` or ``sketch``).
ENV_VAR = "REPRO_STATS"

#: In-process override; takes precedence over the environment variable.
_override: Optional[str] = None


def _validated(name: str, source: str) -> str:
    value = name.strip().lower()
    if value not in _MODES:
        raise ReproError(
            f"unknown stats mode {name!r} from {source}; "
            f"expected one of {', '.join(_MODES)}"
        )
    return value


def active_mode() -> str:
    """The mode the next accumulator construction will resolve."""
    if _override is not None:
        return _override
    env = os.environ.get(ENV_VAR)
    if env:
        return _validated(env, f"${ENV_VAR}")
    return EXACT


def resolve(mode: Optional[str]) -> str:
    """Validate an explicit mode, or resolve the active one for ``None``.

    This is the constructor-side entry point: accumulators call it with
    their ``stats`` argument so an explicitly pinned mode (a factory shipped
    to a worker process) wins over the worker's own environment.
    """
    if mode is None:
        return active_mode()
    return _validated(mode, "stats argument")


def use_sketches() -> bool:
    """Whether newly constructed accumulators will use sketch state."""
    return active_mode() == SKETCH


def set_mode(name: Optional[str]) -> Optional[str]:
    """Install (or with ``None`` clear) the in-process mode override.

    Returns the previous override so callers can restore it; prefer the
    :func:`use_mode` context manager.
    """
    global _override
    previous = _override
    _override = None if name is None else _validated(name, "set_mode()")
    return previous


@contextmanager
def use_mode(name: str) -> Iterator[str]:
    """Context manager pinning the stats mode for a ``with`` block."""
    previous = set_mode(name)
    try:
        yield active_mode()
    finally:
        global _override
        _override = previous
