"""EOS substrate: DPoS chain simulator, contracts, resources, RPC and workload.

The paper's EOS measurement relies on the following chain behaviours, all of
which are implemented here:

* **DPoS block production** — 21 active block producers, 0.5 s block
  interval, production in rounds of 126 blocks (:mod:`repro.eos.chain`).
* **Accounts and contracts** — 12-character base-32 account names, system
  accounts (``eosio``, ``eosio.token``, ...) with standard actions, and
  user contracts with arbitrary action names (:mod:`repro.eos.accounts`,
  :mod:`repro.eos.contracts`).
* **Resource model** — CPU/NET staking, RAM purchase, and the network-wide
  congestion mode that the EIDOS airdrop triggered in November 2019
  (:mod:`repro.eos.resources`).
* **RPC endpoints** — ``get_info`` / ``get_block`` with per-endpoint rate
  limits (:mod:`repro.eos.rpc`).
* **Calibrated workload** — regenerates the traffic mix of Figures 1, 3a,
  4 and 5, including the WhaleEx wash trading and the EIDOS boomerang
  transactions (:mod:`repro.eos.workload`).
"""

from repro.eos.accounts import EosAccount, EosAccountRegistry, is_valid_eos_name
from repro.eos.chain import EosChain, EosChainConfig
from repro.eos.resources import EosResourceMarket, ResourceUsage
from repro.eos.rpc import EosRpcEndpoint
from repro.eos.workload import EosWorkloadConfig, EosWorkloadGenerator

__all__ = [
    "EosAccount",
    "EosAccountRegistry",
    "EosChain",
    "EosChainConfig",
    "EosResourceMarket",
    "EosRpcEndpoint",
    "EosWorkloadConfig",
    "EosWorkloadGenerator",
    "ResourceUsage",
    "is_valid_eos_name",
]
