"""EOS account model.

EOS account names are at most 12 characters drawn from ``a-z``, ``1-5`` and
``.``; dots are only allowed inside system-account suffixes.  The paper's
classification distinguishes *system* accounts (created at chain
instantiation and managed by the active block producers) from *regular*
accounts (user-created, free to deploy arbitrary contracts), and further
splits system accounts into privileged and unprivileged ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.errors import ChainError

EOS_NAME_ALPHABET = set("abcdefghijklmnopqrstuvwxyz12345.")
EOS_NAME_MAX_LENGTH = 12

#: Privileged system accounts can bypass authorisation checks (§2.3.1).
PRIVILEGED_SYSTEM_ACCOUNTS = ("eosio", "eosio.msig", "eosio.wrap")

#: Unprivileged system accounts holding the standard system contracts.
UNPRIVILEGED_SYSTEM_ACCOUNTS = (
    "eosio.token",
    "eosio.ram",
    "eosio.ramfee",
    "eosio.stake",
    "eosio.names",
    "eosio.saving",
    "eosio.bpay",
    "eosio.vpay",
    "eosio.rex",
)


class EosAccountKind(str, enum.Enum):
    """Whether an account was created at genesis or by a user."""

    SYSTEM_PRIVILEGED = "system_privileged"
    SYSTEM = "system"
    REGULAR = "regular"


def is_valid_eos_name(name: str) -> bool:
    """Return whether ``name`` is a syntactically valid EOS account name."""
    if not name or len(name) > EOS_NAME_MAX_LENGTH:
        return False
    if any(char not in EOS_NAME_ALPHABET for char in name):
        return False
    if name.startswith(".") or name.endswith("."):
        return False
    return True


@dataclass
class EosAccount:
    """One EOS account with its balances and resource stakes."""

    name: str
    kind: EosAccountKind = EosAccountKind.REGULAR
    created_at: float = 0.0
    creator: str = ""
    eos_balance: float = 0.0
    token_balances: Dict[str, float] = field(default_factory=dict)
    cpu_staked: float = 0.0
    net_staked: float = 0.0
    ram_bytes: int = 0
    is_contract: bool = False
    contract_name: str = ""

    def __post_init__(self) -> None:
        if not is_valid_eos_name(self.name):
            raise ChainError(f"invalid EOS account name: {self.name!r}")

    @property
    def is_system(self) -> bool:
        return self.kind in (EosAccountKind.SYSTEM, EosAccountKind.SYSTEM_PRIVILEGED)

    @property
    def is_privileged(self) -> bool:
        return self.kind is EosAccountKind.SYSTEM_PRIVILEGED

    # -- balances ---------------------------------------------------------
    def credit(self, amount: float, symbol: str = "EOS") -> None:
        """Add ``amount`` of ``symbol`` to this account."""
        if amount < 0:
            raise ChainError("credit amount must be non-negative")
        if symbol == "EOS":
            self.eos_balance += amount
        else:
            self.token_balances[symbol] = self.token_balances.get(symbol, 0.0) + amount

    def debit(self, amount: float, symbol: str = "EOS") -> None:
        """Remove ``amount`` of ``symbol``, raising if the balance is short."""
        if amount < 0:
            raise ChainError("debit amount must be non-negative")
        balance = self.balance(symbol)
        if balance + 1e-9 < amount:
            raise ChainError(
                f"insufficient {symbol} balance on {self.name}: {balance} < {amount}"
            )
        if symbol == "EOS":
            self.eos_balance -= amount
        else:
            self.token_balances[symbol] = balance - amount

    def balance(self, symbol: str = "EOS") -> float:
        """Current balance of ``symbol``."""
        if symbol == "EOS":
            return self.eos_balance
        return self.token_balances.get(symbol, 0.0)


class EosAccountRegistry:
    """All accounts known to the chain, indexed by name."""

    def __init__(self) -> None:
        self._accounts: Dict[str, EosAccount] = {}
        self._bootstrap_system_accounts()

    def _bootstrap_system_accounts(self) -> None:
        for name in PRIVILEGED_SYSTEM_ACCOUNTS:
            self._accounts[name] = EosAccount(
                name=name, kind=EosAccountKind.SYSTEM_PRIVILEGED, is_contract=True
            )
        for name in UNPRIVILEGED_SYSTEM_ACCOUNTS:
            self._accounts[name] = EosAccount(
                name=name, kind=EosAccountKind.SYSTEM, is_contract=True
            )

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, name: str) -> bool:
        return name in self._accounts

    def get(self, name: str) -> EosAccount:
        """Fetch an account, raising :class:`ChainError` if it is unknown."""
        account = self._accounts.get(name)
        if account is None:
            raise ChainError(f"unknown EOS account: {name!r}")
        return account

    def maybe_get(self, name: str) -> Optional[EosAccount]:
        return self._accounts.get(name)

    def create(
        self,
        name: str,
        creator: str = "eosio",
        created_at: float = 0.0,
        initial_balance: float = 0.0,
        is_contract: bool = False,
    ) -> EosAccount:
        """Create a new regular account (the ``newaccount`` system action)."""
        if name in self._accounts:
            raise ChainError(f"EOS account already exists: {name!r}")
        if creator not in self._accounts:
            raise ChainError(f"creator account does not exist: {creator!r}")
        account = EosAccount(
            name=name,
            kind=EosAccountKind.REGULAR,
            created_at=created_at,
            creator=creator,
            eos_balance=initial_balance,
            is_contract=is_contract,
        )
        self._accounts[name] = account
        return account

    def names(self) -> List[str]:
        """All account names, sorted."""
        return sorted(self._accounts)

    def accounts(self) -> Iterable[EosAccount]:
        return self._accounts.values()

    def system_accounts(self) -> List[EosAccount]:
        return [account for account in self._accounts.values() if account.is_system]

    def regular_accounts(self) -> List[EosAccount]:
        return [account for account in self._accounts.values() if not account.is_system]

    def contracts(self) -> List[EosAccount]:
        """Accounts that have a contract deployed (system or user)."""
        return [account for account in self._accounts.values() if account.is_contract]

    def total_supply(self, symbol: str = "EOS") -> float:
        """Sum of all balances for ``symbol`` — conserved by transfers."""
        return sum(account.balance(symbol) for account in self._accounts.values())
