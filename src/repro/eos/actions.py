"""EOS action vocabulary and categorisation.

On EOS, a transaction carries one or more *actions*; each action names the
contract account it targets and the contract-specific action name.  System
contract actions have well-known semantics (``transfer``, ``newaccount``,
``delegatebw``, ...), while regular contracts define arbitrary action names —
which is precisely what makes EOS traffic hard to classify and why the paper
labels the top contracts manually (§3.2).

This module defines the action record the simulator emits plus the canonical
system-action catalogue with the paper's Figure 1 grouping (P2P transaction /
account actions / other actions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping


class SystemActionGroup(str, enum.Enum):
    """Figure 1 grouping for system-contract actions."""

    P2P_TRANSACTION = "p2p_transaction"
    ACCOUNT_ACTION = "account_action"
    OTHER_ACTION = "other_action"
    USER_DEFINED = "user_defined"


#: System actions listed in Figure 1 with their group.  The "Others" row of
#: Figure 1 covers user-defined actions from non-system contracts.
SYSTEM_ACTION_GROUPS: Dict[str, SystemActionGroup] = {
    # P2P transaction
    "transfer": SystemActionGroup.P2P_TRANSACTION,
    # Account actions
    "bidname": SystemActionGroup.ACCOUNT_ACTION,
    "deposit": SystemActionGroup.ACCOUNT_ACTION,
    "newaccount": SystemActionGroup.ACCOUNT_ACTION,
    "updateauth": SystemActionGroup.ACCOUNT_ACTION,
    "linkauth": SystemActionGroup.ACCOUNT_ACTION,
    # Other actions
    "delegatebw": SystemActionGroup.OTHER_ACTION,
    "buyrambytes": SystemActionGroup.OTHER_ACTION,
    "undelegatebw": SystemActionGroup.OTHER_ACTION,
    "rentcpu": SystemActionGroup.OTHER_ACTION,
    "voteproducer": SystemActionGroup.OTHER_ACTION,
    "buyram": SystemActionGroup.OTHER_ACTION,
    "open": SystemActionGroup.OTHER_ACTION,
}

#: Contracts whose actions follow the standard token interface; the paper
#: includes token contracts in the "known" set because the interface is
#: standardised even though the contracts are user-deployed.
TOKEN_INTERFACE_ACTIONS = ("transfer", "issue", "create", "open", "close", "retire")


def classify_system_action(action_name: str, contract: str) -> SystemActionGroup:
    """Figure 1 group for an action, given the contract that defines it.

    Actions on system contracts (and ``transfer``/``open`` on token-interface
    contracts) map to their known group; everything else is user-defined and
    lands in the "Others" row.
    """
    if contract.startswith("eosio"):
        return SYSTEM_ACTION_GROUPS.get(action_name, SystemActionGroup.OTHER_ACTION)
    if action_name in ("transfer", "open") and action_name in TOKEN_INTERFACE_ACTIONS:
        return SYSTEM_ACTION_GROUPS.get(action_name, SystemActionGroup.USER_DEFINED)
    return SystemActionGroup.USER_DEFINED


@dataclass(frozen=True)
class EosAction:
    """One action within an EOS transaction."""

    contract: str
    name: str
    actor: str
    receiver: str
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def is_system(self) -> bool:
        return self.contract.startswith("eosio")

    @property
    def group(self) -> SystemActionGroup:
        return classify_system_action(self.name, self.contract)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "contract": self.contract,
            "name": self.name,
            "actor": self.actor,
            "receiver": self.receiver,
            "data": dict(self.data),
        }


def make_transfer(
    token_contract: str,
    sender: str,
    receiver: str,
    amount: float,
    symbol: str,
    memo: str = "",
) -> EosAction:
    """Build a standard token-interface ``transfer`` action.

    The action is delivered to the token contract (its ``receiver`` scope);
    the recipient of the funds travels in the action data, mirroring how EOS
    notifies contracts and how the paper attributes "received transactions"
    to ``eosio.token`` in Figure 4.
    """
    return EosAction(
        contract=token_contract,
        name="transfer",
        actor=sender,
        receiver=token_contract,
        data={"from": sender, "to": receiver, "quantity": amount, "symbol": symbol, "memo": memo},
    )


def make_newaccount(creator: str, new_name: str) -> EosAction:
    """Build the system ``newaccount`` action."""
    return EosAction(
        contract="eosio",
        name="newaccount",
        actor=creator,
        receiver="eosio",
        data={"creator": creator, "name": new_name},
    )


def make_delegatebw(staker: str, receiver: str, cpu: float, net: float) -> EosAction:
    """Build the system ``delegatebw`` (stake CPU/NET) action."""
    return EosAction(
        contract="eosio",
        name="delegatebw",
        actor=staker,
        receiver="eosio",
        data={"from": staker, "receiver": receiver, "stake_cpu": cpu, "stake_net": net},
    )


def make_buyram(payer: str, receiver: str, bytes_purchased: int) -> EosAction:
    """Build the system ``buyrambytes`` action."""
    return EosAction(
        contract="eosio",
        name="buyrambytes",
        actor=payer,
        receiver="eosio",
        data={"payer": payer, "receiver": receiver, "bytes": bytes_purchased},
    )


def make_voteproducer(voter: str, producers: tuple) -> EosAction:
    """Build the system ``voteproducer`` action."""
    return EosAction(
        contract="eosio",
        name="voteproducer",
        actor=voter,
        receiver="eosio",
        data={"voter": voter, "producers": list(producers)},
    )
