"""EOS chain simulator: DPoS production schedule and block assembly.

EOS produces one block every 0.5 seconds.  The 21 block producers with the
highest stake take turns in rounds of 126 blocks (6 consecutive blocks per
producer); the schedule for a round is fixed before the round starts
(§2.2).  The simulator reproduces that schedule, applies submitted
transactions through the contract registry and the resource market, and
emits canonical :class:`~repro.common.records.BlockRecord` objects that the
collection and analysis layers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.clock import SimulationClock
from repro.common.errors import ChainError
from repro.common.records import BlockRecord, ChainId, TransactionRecord
from repro.common.rng import DeterministicRng
from repro.eos.accounts import EosAccountRegistry
from repro.eos.actions import EosAction
from repro.eos.contracts import ContractRegistry, ContractResult, EosContract
from repro.eos.resources import EosResourceMarket

BLOCK_INTERVAL_SECONDS = 0.5
BLOCKS_PER_PRODUCER_TURN = 6
ACTIVE_PRODUCER_COUNT = 21
BLOCKS_PER_ROUND = BLOCKS_PER_PRODUCER_TURN * ACTIVE_PRODUCER_COUNT
SCHEDULE_APPROVAL_QUORUM = 15


@dataclass(frozen=True)
class EosTransaction:
    """A submitted EOS transaction: an ordered list of actions."""

    transaction_id: str
    actions: Tuple[EosAction, ...]
    cpu_us: float = 200.0
    net_bytes: float = 100.0

    def __post_init__(self) -> None:
        if not self.actions:
            raise ChainError("an EOS transaction must carry at least one action")


@dataclass
class EosChainConfig:
    """Static parameters of the simulated EOS chain."""

    chain_start: float = 0.0
    start_height: int = 1
    producers: Sequence[str] = field(
        default_factory=lambda: tuple(f"producer{index + 1:02d}a" for index in range(ACTIVE_PRODUCER_COUNT))
    )
    block_interval: float = BLOCK_INTERVAL_SECONDS

    def __post_init__(self) -> None:
        if len(self.producers) < ACTIVE_PRODUCER_COUNT:
            raise ChainError(
                f"EOS requires {ACTIVE_PRODUCER_COUNT} active producers, got {len(self.producers)}"
            )


class EosChain:
    """The simulated EOS blockchain."""

    def __init__(
        self,
        config: Optional[EosChainConfig] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.config = config or EosChainConfig()
        self.rng = rng or DeterministicRng(0)
        self.clock = SimulationClock(self.config.chain_start)
        self.accounts = EosAccountRegistry()
        self.contracts = ContractRegistry()
        self.resources = EosResourceMarket()
        self.blocks: List[BlockRecord] = []
        self._height = self.config.start_height - 1
        self._producer_votes: Dict[str, float] = {
            name: 0.0 for name in self.config.producers
        }
        self._schedule: List[str] = list(self.config.producers[:ACTIVE_PRODUCER_COUNT])
        self._rejected_count = 0

    # -- producer schedule ---------------------------------------------------
    def vote_producer(self, producer: str, stake: float) -> None:
        """Add voting stake to ``producer`` (affects the next schedule)."""
        self._producer_votes[producer] = self._producer_votes.get(producer, 0.0) + stake

    def compute_schedule(self) -> List[str]:
        """The 21 producers with the highest stake, ties broken by name."""
        ranked = sorted(
            self._producer_votes.items(), key=lambda item: (-item[1], item[0])
        )
        return [name for name, _ in ranked[:ACTIVE_PRODUCER_COUNT]]

    def rotate_schedule(self, approvals: int = SCHEDULE_APPROVAL_QUORUM) -> List[str]:
        """Adopt a new schedule if at least 15 producers approve it (§2.2)."""
        if approvals < SCHEDULE_APPROVAL_QUORUM:
            raise ChainError(
                f"schedule change requires {SCHEDULE_APPROVAL_QUORUM} approvals, got {approvals}"
            )
        self._schedule = self.compute_schedule()
        return list(self._schedule)

    def producer_for_height(self, height: int) -> str:
        """Scheduled producer for ``height`` under the round-robin DPoS order."""
        offset = (height - self.config.start_height) % BLOCKS_PER_ROUND
        slot = offset // BLOCKS_PER_PRODUCER_TURN
        return self._schedule[slot]

    # -- chain state -----------------------------------------------------------
    @property
    def head_height(self) -> int:
        return self._height

    @property
    def rejected_transactions(self) -> int:
        """Transactions dropped for lack of CPU (congestion-mode rejections)."""
        return self._rejected_count

    def deploy_contract(self, contract: EosContract) -> None:
        """Deploy a contract and mark its account as a contract account."""
        self.contracts.deploy(contract)
        account = self.accounts.maybe_get(contract.account)
        if account is None:
            account = self.accounts.create(contract.account, created_at=self.clock.now)
        account.is_contract = True
        account.contract_name = type(contract).__name__

    def _apply_action(
        self, action: EosAction, timestamp: float
    ) -> Tuple[ContractResult, List[EosAction]]:
        contract = self.contracts.get(action.contract)
        if contract is None or not contract.handles(action.name):
            # Unknown contracts still record the action (the chain stores it);
            # there is simply no state transition beyond the record itself.
            return ContractResult(applied=True, notes={"unhandled": True}), []
        result = contract.apply(action, self.accounts, timestamp)
        return result, list(result.inline_actions)

    def _record_for_action(
        self,
        transaction: EosTransaction,
        action: EosAction,
        height: int,
        timestamp: float,
        result: ContractResult,
        inline: bool,
    ) -> TransactionRecord:
        amount = float(action.data.get("quantity", action.data.get("amount", 0.0)) or 0.0)
        symbol = str(action.data.get("symbol", ""))
        metadata = dict(result.notes)
        if inline:
            metadata["inline"] = True
        transfer_to = action.data.get("to")
        if transfer_to is not None:
            # The canonical "receiver" for EOS is the account the action is
            # delivered to (the contract), matching the paper's Figure 4/5
            # accounting; the token recipient is preserved in metadata.
            metadata["transfer_to"] = str(transfer_to)
        return TransactionRecord(
            chain=ChainId.EOS,
            transaction_id=transaction.transaction_id,
            block_height=height,
            timestamp=timestamp,
            type=action.name,
            sender=action.actor,
            receiver=action.receiver,
            contract=action.contract,
            amount=amount,
            currency=symbol,
            fee=0.0,
            success=result.applied,
            metadata=metadata,
        )

    def produce_block(self, transactions: Iterable[EosTransaction]) -> BlockRecord:
        """Assemble, apply and append one block containing ``transactions``."""
        height = self._height + 1
        timestamp = self.clock.now
        producer = self.producer_for_height(height)
        records: List[TransactionRecord] = []
        for transaction in transactions:
            payer = transaction.actions[0].actor
            if not self.resources.charge(payer, transaction.cpu_us, transaction.net_bytes):
                self._rejected_count += 1
                continue
            pending: List[Tuple[EosAction, bool]] = [
                (action, False) for action in transaction.actions
            ]
            while pending:
                action, is_inline = pending.pop(0)
                try:
                    result, inline_actions = self._apply_action(action, timestamp)
                except ChainError as exc:
                    result = ContractResult(applied=False, notes={"error": str(exc)})
                    inline_actions = []
                records.append(
                    self._record_for_action(
                        transaction, action, height, timestamp, result, is_inline
                    )
                )
                pending.extend((inline, True) for inline in inline_actions)
        block = BlockRecord(
            chain=ChainId.EOS,
            height=height,
            timestamp=timestamp,
            producer=producer,
            transactions=tuple(records),
            block_id=self.rng.hex_string(64),
            previous_id=self.blocks[-1].block_id if self.blocks else "",
            metadata={
                "congested": self.resources.congested,
                "cpu_utilization": self.resources.utilization(),
            },
        )
        self.resources.end_block(timestamp)
        self.blocks.append(block)
        self._height = height
        self.clock.advance(self.config.block_interval)
        return block

    def block_at(self, height: int) -> BlockRecord:
        """Fetch a produced block by height."""
        index = height - self.config.start_height
        if index < 0 or index >= len(self.blocks):
            raise ChainError(f"EOS block {height} has not been produced")
        return self.blocks[index]

    def head(self) -> Optional[BlockRecord]:
        return self.blocks[-1] if self.blocks else None
