"""EOS smart-contract framework and the contracts the paper's traffic exercises.

Regular EOS accounts can deploy arbitrary contracts with arbitrary action
names.  The simulator models a contract as a Python object that receives an
action and mutates chain state (balances), optionally emitting *inline
actions* — actions triggered by the contract itself, which is how the EIDOS
airdrop produces its "boomerang": the user's transfer to the contract is
answered by a transfer back plus an EIDOS token grant inside the same
transaction.

Implemented contracts, mirroring the paper's top applications (Figure 4):

* :class:`TokenContract` — the standard ``eosio.token`` interface, also used
  for every user-issued token (EIDOS, USDT, LYNX, ...).
* :class:`EidosContract` — the airdrop contract behind the November 2019
  traffic explosion (§4.1, "Boomerang Transactions in EOS").
* :class:`BettingContract` — a ``betdice``-style gambling app whose traffic
  is ~80 % bookkeeping actions.
* :class:`DexContract` — a WhaleEx-style DEX whose ``verifytrade2`` action
  settles trades on-chain; it does not forbid self-trades, which is what the
  wash-trading case study measures.
* :class:`ContentPaymentContract` — a ``pornhashbaby``-style site that uses
  the chain as a payment/bookkeeping backend.
* :class:`GameContract` — an ``eossanguoone``-style role-playing game using
  the chain as game-state storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ChainError
from repro.eos.accounts import EosAccountRegistry
from repro.eos.actions import EosAction


@dataclass
class ContractResult:
    """Outcome of applying one action to a contract."""

    applied: bool = True
    inline_actions: List[EosAction] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)


class EosContract:
    """Base class for simulated EOS contracts."""

    #: Action names the contract accepts; subclasses override.
    action_names: tuple = ()

    def __init__(self, account: str):
        self.account = account

    def handles(self, action_name: str) -> bool:
        return not self.action_names or action_name in self.action_names

    def apply(
        self, action: EosAction, registry: EosAccountRegistry, timestamp: float
    ) -> ContractResult:
        """Apply ``action``; subclasses implement the contract semantics."""
        raise NotImplementedError


class TokenContract(EosContract):
    """Standard token-interface contract (``eosio.token`` and user tokens)."""

    action_names = ("create", "issue", "transfer", "open", "close", "retire")

    def __init__(self, account: str, symbol: str, max_supply: float = 1e12):
        super().__init__(account)
        self.symbol = symbol
        self.max_supply = max_supply
        self.issued = 0.0

    def apply(
        self, action: EosAction, registry: EosAccountRegistry, timestamp: float
    ) -> ContractResult:
        if action.name == "transfer":
            return self._apply_transfer(action, registry)
        if action.name == "issue":
            return self._apply_issue(action, registry)
        # create/open/close/retire only touch bookkeeping the analysis ignores.
        return ContractResult(applied=True)

    def _apply_issue(
        self, action: EosAction, registry: EosAccountRegistry
    ) -> ContractResult:
        amount = float(action.data.get("quantity", 0.0))
        recipient = str(action.data.get("to", action.actor))
        if self.issued + amount > self.max_supply:
            raise ChainError(f"{self.symbol} issuance exceeds max supply")
        registry.get(recipient).credit(amount, self.symbol)
        self.issued += amount
        return ContractResult(applied=True, notes={"issued": amount})

    def _apply_transfer(
        self, action: EosAction, registry: EosAccountRegistry
    ) -> ContractResult:
        sender = str(action.data.get("from", action.actor))
        receiver = str(action.data.get("to", action.receiver))
        amount = float(action.data.get("quantity", 0.0))
        symbol = str(action.data.get("symbol", self.symbol))
        if amount < 0:
            raise ChainError("transfer amount must be non-negative")
        registry.get(sender).debit(amount, symbol)
        registry.get(receiver).credit(amount, symbol)
        return ContractResult(applied=True, notes={"amount": amount, "symbol": symbol})


class EidosContract(EosContract):
    """The EIDOS airdrop contract (§4.1).

    Any EOS transfer to the contract is answered, inside the same
    transaction, by (1) a transfer of the same EOS amount back to the sender
    and (2) a grant of 0.01 % of the contract's remaining EIDOS balance.
    Because EOS has no per-transaction fee, the scheme turns idle CPU stake
    into free tokens and flooded the network with boomerang transactions.
    """

    action_names = ("transfer",)
    PAYOUT_FRACTION = 0.0001  # 0.01 % of the remaining pool per claim

    def __init__(self, account: str = "eidosonecoin", initial_pool: float = 1_000_000_000.0):
        super().__init__(account)
        self.symbol = "EIDOS"
        self.pool = initial_pool
        self.claims = 0

    def apply(
        self, action: EosAction, registry: EosAccountRegistry, timestamp: float
    ) -> ContractResult:
        sender = str(action.data.get("from", action.actor))
        if sender == self.account:
            # Inline grant issued by the contract itself: move EIDOS to the
            # recipient and stop (no further boomerang).
            recipient = str(action.data.get("to", action.receiver))
            amount = float(action.data.get("quantity", 0.0))
            registry.get(recipient).credit(amount, self.symbol)
            return ContractResult(applied=True, notes={"grant": amount})
        amount = float(action.data.get("quantity", 0.0))
        payout = self.pool * self.PAYOUT_FRACTION
        self.pool -= payout
        self.claims += 1
        inline = [
            # The boomerang: the EOS comes straight back to the sender.  The
            # actions are delivered to the token contracts (their receiver
            # scope), exactly like user-submitted transfers.
            EosAction(
                contract="eosio.token",
                name="transfer",
                actor=self.account,
                receiver="eosio.token",
                data={
                    "from": self.account,
                    "to": sender,
                    "quantity": amount,
                    "symbol": "EOS",
                    "memo": "refund",
                },
            ),
            EosAction(
                contract=self.account,
                name="transfer",
                actor=self.account,
                receiver=self.account,
                data={
                    "from": self.account,
                    "to": sender,
                    "quantity": payout,
                    "symbol": self.symbol,
                    "memo": "mining",
                },
            ),
        ]
        return ContractResult(
            applied=True,
            inline_actions=inline,
            notes={"payout": payout, "boomerang": True},
        )


class BettingContract(EosContract):
    """A ``betdice``-style betting application.

    Roughly 80 % of the contract's actions are bookkeeping (``removetask``,
    ``log``); actual bets (``betrecord``) are a small share — the mix the
    workload generator reproduces for Figure 4.
    """

    action_names = (
        "removetask",
        "log",
        "sendhouse",
        "betrecord",
        "betpayrecord",
        "transfer",
    )

    def __init__(self, account: str, house_edge: float = 0.02):
        super().__init__(account)
        self.house_edge = house_edge
        self.total_wagered = 0.0
        self.total_paid_out = 0.0

    def apply(
        self, action: EosAction, registry: EosAccountRegistry, timestamp: float
    ) -> ContractResult:
        if action.name == "betrecord":
            wager = float(action.data.get("wager", 0.0))
            self.total_wagered += wager
            return ContractResult(applied=True, notes={"wager": wager})
        if action.name == "betpayrecord":
            payout = float(action.data.get("payout", 0.0))
            self.total_paid_out += payout
            return ContractResult(applied=True, notes={"payout": payout})
        # Bookkeeping actions have no balance effect.
        return ContractResult(applied=True, notes={"bookkeeping": True})


@dataclass
class DexTrade:
    """One settled trade on the DEX (a ``verifytrade2`` call)."""

    buyer: str
    seller: str
    symbol: str
    amount: float
    price: float
    timestamp: float

    @property
    def is_self_trade(self) -> bool:
        return self.buyer == self.seller


class DexContract(EosContract):
    """A WhaleEx-style decentralised exchange settling trades on-chain.

    ``verifytrade2`` settles a matched buy/sell pair.  Nothing prevents the
    buyer and the seller from being the same account and the trading fee is
    zero — the two properties that make wash trading free (§4.1).
    """

    action_names = (
        "verifytrade2",
        "clearing",
        "clearsettres",
        "verifyad",
        "cancelorder",
    )

    def __init__(self, account: str):
        super().__init__(account)
        self.trades: List[DexTrade] = []

    def apply(
        self, action: EosAction, registry: EosAccountRegistry, timestamp: float
    ) -> ContractResult:
        if action.name != "verifytrade2":
            return ContractResult(applied=True, notes={"bookkeeping": True})
        buyer = str(action.data.get("buyer", action.actor))
        seller = str(action.data.get("seller", action.actor))
        symbol = str(action.data.get("symbol", "EOS"))
        amount = float(action.data.get("amount", 0.0))
        price = float(action.data.get("price", 0.0))
        trade = DexTrade(
            buyer=buyer,
            seller=seller,
            symbol=symbol,
            amount=amount,
            price=price,
            timestamp=timestamp,
        )
        self.trades.append(trade)
        notes = {
            "buyer": buyer,
            "seller": seller,
            "symbol": symbol,
            "self_trade": trade.is_self_trade,
            "amount": amount,
            "price": price,
        }
        if not trade.is_self_trade and amount > 0:
            # Genuine trades move the traded token from seller to buyer.
            seller_account = registry.maybe_get(seller)
            buyer_account = registry.maybe_get(buyer)
            if seller_account is not None and buyer_account is not None:
                if seller_account.balance(symbol) >= amount:
                    seller_account.debit(amount, symbol)
                    buyer_account.credit(amount, symbol)
        return ContractResult(applied=True, notes=notes)

    def self_trade_fraction(self) -> float:
        """Fraction of settled trades where buyer == seller."""
        if not self.trades:
            return 0.0
        return sum(1 for trade in self.trades if trade.is_self_trade) / len(self.trades)


class ContentPaymentContract(EosContract):
    """A ``pornhashbaby``-style site using EOS for payments and bookkeeping."""

    action_names = ("record", "login", "transfer")

    def __init__(self, account: str):
        super().__init__(account)
        self.records = 0
        self.logins = 0

    def apply(
        self, action: EosAction, registry: EosAccountRegistry, timestamp: float
    ) -> ContractResult:
        if action.name == "record":
            self.records += 1
        elif action.name == "login":
            self.logins += 1
        return ContractResult(applied=True)


class GameContract(EosContract):
    """An ``eossanguoone``-style role-playing game storing game state on-chain."""

    action_names = ("reveal2", "combat", "deletemat", "sellmat", "makeitem")

    def __init__(self, account: str):
        super().__init__(account)
        self.events: Dict[str, int] = {}

    def apply(
        self, action: EosAction, registry: EosAccountRegistry, timestamp: float
    ) -> ContractResult:
        self.events[action.name] = self.events.get(action.name, 0) + 1
        return ContractResult(applied=True)


class ContractRegistry:
    """Contracts deployed on the chain, indexed by account name."""

    def __init__(self) -> None:
        self._contracts: Dict[str, EosContract] = {}

    def deploy(self, contract: EosContract) -> None:
        self._contracts[contract.account] = contract

    def get(self, account: str) -> Optional[EosContract]:
        return self._contracts.get(account)

    def __contains__(self, account: str) -> bool:
        return account in self._contracts

    def accounts(self) -> List[str]:
        return sorted(self._contracts)
