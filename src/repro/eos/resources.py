"""EOS resource model: CPU/NET staking, RAM market and congestion mode.

EOS has no per-transaction fee.  Instead, accounts stake EOS for CPU and NET
bandwidth and buy RAM from a bonding-curve market.  In normal operation an
account may consume *more* CPU than its stake entitles it to (the surplus is
lent from idle capacity); when total utilisation crosses a threshold the
network enters **congestion mode** and every account is limited to its
staked share.  The EIDOS airdrop pushed the network into congestion mode and
the market price of CPU rose by orders of magnitude (§4.1) — the effect that
forced casual users (who stake little) off the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class ResourceUsage:
    """CPU/NET consumption of one account inside the current window."""

    cpu_us: float = 0.0
    net_bytes: float = 0.0


@dataclass(frozen=True)
class CongestionSample:
    """Utilisation snapshot taken once per block."""

    timestamp: float
    utilization: float
    congested: bool
    cpu_price: float


class EosResourceMarket:
    """Network-wide CPU accounting with congestion-mode semantics.

    Parameters
    ----------
    total_cpu_us_per_block:
        CPU microseconds available per block (the block CPU limit).
    congestion_threshold:
        Fraction of the block CPU limit above which the network switches to
        congestion mode.
    leniency_multiplier:
        In normal mode an account may use up to ``leniency_multiplier`` times
        its staked share of the block CPU.
    base_cpu_price:
        Reference price (EOS per ms of CPU) in an idle network; the observed
        price scales super-linearly with utilisation, reproducing the
        10,000 % spike the paper reports after the EIDOS launch.
    """

    def __init__(
        self,
        total_cpu_us_per_block: float = 200_000.0,
        congestion_threshold: float = 0.9,
        leniency_multiplier: float = 100.0,
        base_cpu_price: float = 0.0001,
    ) -> None:
        if total_cpu_us_per_block <= 0:
            raise ValueError("total_cpu_us_per_block must be positive")
        if not 0.0 < congestion_threshold <= 1.0:
            raise ValueError("congestion_threshold must be within (0, 1]")
        self.total_cpu_us_per_block = total_cpu_us_per_block
        self.congestion_threshold = congestion_threshold
        self.leniency_multiplier = leniency_multiplier
        self.base_cpu_price = base_cpu_price
        self._stakes: Dict[str, float] = {}
        self._usage: Dict[str, ResourceUsage] = {}
        self._block_cpu_used = 0.0
        self._congested = False
        self._history: List[CongestionSample] = []

    # -- staking -----------------------------------------------------------
    def stake_cpu(self, account: str, amount: float) -> None:
        """Stake ``amount`` EOS towards CPU for ``account``."""
        if amount < 0:
            raise ValueError("stake must be non-negative")
        self._stakes[account] = self._stakes.get(account, 0.0) + amount

    def unstake_cpu(self, account: str, amount: float) -> None:
        """Remove up to ``amount`` of CPU stake from ``account``."""
        current = self._stakes.get(account, 0.0)
        self._stakes[account] = max(0.0, current - amount)

    def staked(self, account: str) -> float:
        return self._stakes.get(account, 0.0)

    def total_staked(self) -> float:
        return sum(self._stakes.values())

    # -- per-block accounting ------------------------------------------------
    def cpu_entitlement_us(self, account: str) -> float:
        """CPU microseconds ``account`` may use in the current block."""
        total = self.total_staked()
        if total <= 0:
            return 0.0
        share = self._stakes.get(account, 0.0) / total
        entitlement = share * self.total_cpu_us_per_block
        if not self._congested:
            entitlement *= self.leniency_multiplier
        return entitlement

    def can_execute(self, account: str, cpu_us: float) -> bool:
        """Whether ``account`` has CPU headroom for an action costing ``cpu_us``."""
        used = self._usage.get(account, ResourceUsage()).cpu_us
        return used + cpu_us <= self.cpu_entitlement_us(account) + 1e-9

    def charge(self, account: str, cpu_us: float, net_bytes: float = 0.0) -> bool:
        """Charge an execution against ``account``; returns False if rejected."""
        if not self.can_execute(account, cpu_us):
            return False
        usage = self._usage.setdefault(account, ResourceUsage())
        usage.cpu_us += cpu_us
        usage.net_bytes += net_bytes
        self._block_cpu_used += cpu_us
        return True

    def end_block(self, timestamp: float) -> CongestionSample:
        """Close the current block window and update congestion state."""
        utilization = min(1.0, self._block_cpu_used / self.total_cpu_us_per_block)
        self._congested = utilization >= self.congestion_threshold
        sample = CongestionSample(
            timestamp=timestamp,
            utilization=utilization,
            congested=self._congested,
            cpu_price=self.cpu_price(),
        )
        self._history.append(sample)
        self._usage = {}
        self._block_cpu_used = 0.0
        return sample

    # -- observability -------------------------------------------------------
    @property
    def congested(self) -> bool:
        return self._congested

    def utilization(self) -> float:
        """Utilisation of the block currently being filled."""
        return min(1.0, self._block_cpu_used / self.total_cpu_us_per_block)

    def cpu_price(self) -> float:
        """Effective price of CPU given current utilisation.

        Price grows super-linearly as utilisation approaches 1, reproducing
        the >100x increase observed after the EIDOS launch.
        """
        utilization = self.utilization()
        # A convex response: near-idle ~ base price, saturated ~ 10^4x base.
        multiplier = 1.0 + (10_000.0 - 1.0) * utilization ** 4
        return self.base_cpu_price * multiplier

    def history(self) -> List[CongestionSample]:
        return list(self._history)

    def congestion_periods(self) -> List[Tuple[float, float]]:
        """(start, end) timestamp pairs during which the network was congested."""
        periods: List[Tuple[float, float]] = []
        start: float = 0.0
        in_period = False
        for sample in self._history:
            if sample.congested and not in_period:
                start = sample.timestamp
                in_period = True
            elif not sample.congested and in_period:
                periods.append((start, sample.timestamp))
                in_period = False
        if in_period and self._history:
            periods.append((start, self._history[-1].timestamp))
        return periods
