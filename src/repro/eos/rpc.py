"""Simulated EOS RPC endpoints.

EOS block producers expose a public HTTP RPC; the two calls the paper's
crawler uses are ``get_info`` (head block number) and ``get_block`` (full
block content by height).  The simulated endpoint wraps an
:class:`~repro.eos.chain.EosChain`, enforces a per-endpoint token-bucket
rate limit, models latency and transient outages, and serialises blocks in
the same dictionary shape the crawler stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.common.errors import BlockNotFound, EndpointUnavailable
from repro.common.jsonrpc import RpcDispatcher, RpcRequest, RpcResponse
from repro.common.ratelimit import TokenBucket
from repro.common.records import BlockRecord
from repro.common.rng import DeterministicRng
from repro.eos.chain import EosChain


@dataclass
class EndpointProfile:
    """Operational characteristics of one public endpoint.

    The paper shortlists 6 of 32 advertised EOS endpoints based on rate
    limits, latency and stability; these three knobs are what the crawler's
    endpoint-selection logic ranks on.
    """

    name: str
    requests_per_second: float = 10.0
    burst: float = 20.0
    base_latency: float = 0.05
    failure_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be within [0, 1)")


class EosRpcEndpoint:
    """One simulated EOS public RPC endpoint backed by a chain instance."""

    chain_name = "eos"

    def __init__(
        self,
        chain: EosChain,
        profile: Optional[EndpointProfile] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.chain = chain
        self.profile = profile or EndpointProfile(name="eos-endpoint")
        self.rng = rng or DeterministicRng(0)
        self._bucket = TokenBucket(
            rate=self.profile.requests_per_second, capacity=self.profile.burst
        )
        self._dispatcher = RpcDispatcher()
        self._dispatcher.register("get_info", self._handle_get_info)
        self._dispatcher.register("get_block", self._handle_get_block)
        self.requests_served = 0
        self.requests_rejected = 0

    @property
    def name(self) -> str:
        return self.profile.name

    # -- protocol used by the crawler -----------------------------------------
    def head_height(self, now: float) -> int:
        """Current head block number (the crawler's starting point)."""
        result = self.call("get_info", {}, now)
        return int(result["head_block_num"])

    def fetch_block(self, height: int, now: float) -> BlockRecord:
        """Fetch one block and decode it into the canonical record."""
        result = self.call("get_block", {"block_num_or_id": height}, now)
        return BlockRecord.from_dict(result)

    def latency(self) -> float:
        """Simulated round-trip latency for one request."""
        return self.profile.base_latency * (1.0 + 0.2 * self.rng.random())

    # -- RPC plumbing ------------------------------------------------------------
    def call(self, method: str, params: Mapping[str, Any], now: float) -> Any:
        """Issue one RPC call, enforcing rate limits and simulated outages."""
        self._bucket.acquire_or_raise(now)
        if self.profile.failure_rate and self.rng.bernoulli(self.profile.failure_rate):
            self.requests_rejected += 1
            raise EndpointUnavailable(f"{self.name} transient failure")
        request = RpcRequest(method=method, params=params)
        response: RpcResponse = self._dispatcher.dispatch(request)
        self.requests_served += 1
        return response.raise_for_error()

    def _handle_get_info(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        head = self.chain.head()
        return {
            "chain_id": "eos-mainnet-sim",
            "head_block_num": head.height if head else self.chain.config.start_height - 1,
            "head_block_producer": head.producer if head else "",
            "head_block_time": head.timestamp if head else self.chain.clock.now,
        }

    def _handle_get_block(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        height = int(params.get("block_num_or_id", -1))
        try:
            block = self.chain.block_at(height)
        except Exception as exc:
            raise BlockNotFound(height) from exc
        return block.to_dict()
