"""Calibrated EOS workload generator.

The generator regenerates the *shape* of the EOS traffic the paper observed
between 2019-10-01 and 2019-12-31:

* before 2019-11-01 the traffic is dominated by betting applications, with
  games, pornography payments, token transfers and DEX activity making up
  the rest (Figure 3a);
* on 2019-11-01 the EIDOS airdrop launches; every claim is a "boomerang"
  transaction (EOS out and straight back, plus an EIDOS grant), the number
  of transactions grows by more than an order of magnitude and ~95 % of all
  actions become token transfers (Figure 1, §4.1);
* the WhaleEx DEX settles trades where the buyer and seller are usually the
  same account — wash trading (§4.1);
* the named top applications and sender/receiver pairs of Figures 4 and 5
  (``eosio.token``, ``pornhashbaby``, ``betdicetasks``, ``whaleextrust``,
  ``eossanguoone``; ``betdicegroup``, ``mykeypostman``, ``bluebet*``).

Counts are scaled by ``transactions_per_day`` so tests run in milliseconds
while benchmarks can turn the dial up; the *proportions* are what the
analysis verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.clock import SECONDS_PER_DAY, timestamp_from_iso
from repro.common.records import BlockRecord, TransactionRecord
from repro.common.rng import DeterministicRng
from repro.eos.accounts import EosAccountKind
from repro.eos.actions import EosAction, make_transfer
from repro.eos.chain import EosChain, EosChainConfig, EosTransaction
from repro.eos.contracts import (
    BettingContract,
    ContentPaymentContract,
    DexContract,
    EidosContract,
    GameContract,
    TokenContract,
)

#: Category labels used by Figure 3a.
CATEGORY_EXCHANGE = "Exchange"
CATEGORY_BETTING = "Betting"
CATEGORY_GAMES = "Games"
CATEGORY_PORNOGRAPHY = "Pornography"
CATEGORY_TOKENS = "Tokens"
CATEGORY_OTHERS = "Others"

#: Well-known application accounts and their category (the paper labels the
#: top-100 contracts by hand; this is the equivalent label table).
APPLICATION_CATEGORIES: Dict[str, str] = {
    "eosio.token": CATEGORY_TOKENS,
    "eidosonecoin": CATEGORY_TOKENS,
    "pornhashbaby": CATEGORY_PORNOGRAPHY,
    "betdicetasks": CATEGORY_BETTING,
    "betdicegroup": CATEGORY_BETTING,
    "betdicebacca": CATEGORY_BETTING,
    "betdicesicbo": CATEGORY_BETTING,
    "betdiceadmin": CATEGORY_BETTING,
    "bluebetproxy": CATEGORY_BETTING,
    "bluebettexas": CATEGORY_BETTING,
    "bluebetjacks": CATEGORY_BETTING,
    "bluebetbcrat": CATEGORY_BETTING,
    "bluebet2user": CATEGORY_BETTING,
    "whaleextrust": CATEGORY_EXCHANGE,
    "eossanguoone": CATEGORY_GAMES,
    "mykeypostman": CATEGORY_OTHERS,
    "mykeylogica1": CATEGORY_OTHERS,
    "lynxtoken123": CATEGORY_TOKENS,
}

#: Per-category share of daily actions before the EIDOS launch (Figure 3a).
PRE_EIDOS_CATEGORY_MIX: Dict[str, float] = {
    CATEGORY_BETTING: 0.50,
    CATEGORY_GAMES: 0.13,
    CATEGORY_PORNOGRAPHY: 0.14,
    CATEGORY_EXCHANGE: 0.09,
    CATEGORY_TOKENS: 0.10,
    CATEGORY_OTHERS: 0.04,
}

#: Action-name mix inside the betting contract (Figure 4, betdicetasks row).
BETTING_ACTION_MIX: Dict[str, float] = {
    "removetask": 0.68,
    "log": 0.12,
    "sendhouse": 0.07,
    "betrecord": 0.04,
    "betpayrecord": 0.04,
    "transfer": 0.05,
}

#: Action-name mix inside the DEX contract (Figure 4, whaleextrust row).
DEX_ACTION_MIX: Dict[str, float] = {
    "verifytrade2": 0.43,
    "clearing": 0.18,
    "clearsettres": 0.14,
    "verifyad": 0.14,
    "cancelorder": 0.11,
}

#: Action-name mix inside the game contract (Figure 4, eossanguoone row).
GAME_ACTION_MIX: Dict[str, float] = {
    "reveal2": 0.40,
    "combat": 0.25,
    "deletemat": 0.15,
    "sellmat": 0.10,
    "makeitem": 0.10,
}

#: Action-name mix for the content site (Figure 4, pornhashbaby row).
CONTENT_ACTION_MIX: Dict[str, float] = {"record": 0.9986, "login": 0.0014}


@dataclass
class EosWorkloadConfig:
    """Knobs of the calibrated EOS workload."""

    start_date: str = "2019-10-01"
    end_date: str = "2020-01-01"
    eidos_launch_date: str = "2019-11-01"
    #: Actions per day before the EIDOS launch (scaled-down from ~2M real).
    transactions_per_day: int = 2_000
    #: Multiplier applied to daily volume once EIDOS launches (>10x, §4.1).
    eidos_traffic_multiplier: float = 12.0
    #: Share of post-launch actions that are EIDOS boomerang claims.
    eidos_share: float = 0.90
    #: Virtual blocks produced per day (each aggregates a slice of traffic).
    blocks_per_day: int = 24
    #: Number of ordinary user accounts driving the traffic.
    user_account_count: int = 200
    #: Share of DEX trades that are self-trades for the top wash traders.
    wash_trade_self_fraction: float = 0.88
    #: Height of the first generated block (the paper window's real start).
    #: Window-sharded generation continues a previous shard's height range.
    start_height: int = 82_024_737
    #: Starting value of the transaction-id counter.  Window shards carve
    #: disjoint id ranges so concatenated shards never collide on ids.
    transaction_id_offset: int = 0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.transactions_per_day <= 0:
            raise ValueError("transactions_per_day must be positive")
        if self.blocks_per_day <= 0:
            raise ValueError("blocks_per_day must be positive")
        if not 0.0 <= self.eidos_share <= 1.0:
            raise ValueError("eidos_share must be within [0, 1]")
        if timestamp_from_iso(self.end_date) <= timestamp_from_iso(self.start_date):
            raise ValueError("end_date must be after start_date")

    @property
    def start_timestamp(self) -> float:
        return timestamp_from_iso(self.start_date)

    @property
    def end_timestamp(self) -> float:
        return timestamp_from_iso(self.end_date)

    @property
    def eidos_launch_timestamp(self) -> float:
        return timestamp_from_iso(self.eidos_launch_date)

    @property
    def total_days(self) -> float:
        return (self.end_timestamp - self.start_timestamp) / SECONDS_PER_DAY


class EosWorkloadGenerator:
    """Drives an :class:`EosChain` with the calibrated traffic mix."""

    WASH_TRADER_COUNT = 5

    def __init__(self, config: Optional[EosWorkloadConfig] = None):
        self.config = config or EosWorkloadConfig()
        self.rng = DeterministicRng(self.config.seed)
        self.chain = self._build_chain()
        self._tx_counter = self.config.transaction_id_offset
        self._users = [self._user_name(index) for index in range(self.config.user_account_count)]
        self._wash_traders = [f"whaletrader{index + 1}" for index in range(self.WASH_TRADER_COUNT)]
        self._bootstrap_accounts()

    # -- setup -----------------------------------------------------------------
    @staticmethod
    def _user_name(index: int) -> str:
        """Deterministic, collision-free EOS account name for user ``index``."""
        letters = "abcdefghijklmnopqrstuvwxy"  # 25 letters keeps names short
        suffix = ""
        value = index
        for _ in range(4):
            suffix = letters[value % len(letters)] + suffix
            value //= len(letters)
        return f"eosuser{suffix}"

    def _build_chain(self) -> EosChain:
        chain_config = EosChainConfig(
            chain_start=self.config.start_timestamp,
            start_height=self.config.start_height,
            block_interval=SECONDS_PER_DAY / self.config.blocks_per_day,
        )
        chain = EosChain(config=chain_config, rng=self.rng.fork("chain"))
        chain.resources = self._build_resource_market()
        return chain

    def _build_resource_market(self):
        """Size the CPU market so the EIDOS launch pushes it into congestion.

        The block CPU limit is set to ~1.3x the expected post-launch demand:
        before the launch the network idles well below the congestion
        threshold, afterwards utilisation sits around 75-80 % which crosses
        the (lowered) threshold and makes the CPU price spike — the §4.1
        congestion-mode narrative at the simulator's reduced scale.
        """
        from repro.eos.resources import EosResourceMarket

        config = self.config
        post_actions_per_block = (
            config.transactions_per_day * config.eidos_traffic_multiplier / config.blocks_per_day
        )
        mean_cpu_us = 400.0 * config.eidos_share + 200.0 * (1.0 - config.eidos_share)
        # Twice the expected post-launch demand: post-launch utilisation sits
        # around 50% (above the lowered threshold, so the network is formally
        # congested and the CPU price spikes) while staked accounts keep
        # enough entitlement to continue operating, as on the real chain.
        block_cpu_limit = max(1_000.0, post_actions_per_block * mean_cpu_us * 2.0)
        return EosResourceMarket(
            total_cpu_us_per_block=block_cpu_limit,
            congestion_threshold=0.45,
            leniency_multiplier=100.0,
        )

    def _bootstrap_accounts(self) -> None:
        chain = self.chain
        now = self.config.start_timestamp
        # Application accounts and their contracts.
        chain.deploy_contract(TokenContract("eosio.token", symbol="EOS"))
        chain.deploy_contract(EidosContract("eidosonecoin"))
        chain.deploy_contract(BettingContract("betdicetasks"))
        chain.deploy_contract(DexContract("whaleextrust"))
        chain.deploy_contract(ContentPaymentContract("pornhashbaby"))
        chain.deploy_contract(GameContract("eossanguoone"))
        chain.deploy_contract(TokenContract("lynxtoken123", symbol="LYNX"))
        for name in APPLICATION_CATEGORIES:
            if name not in chain.accounts:
                chain.accounts.create(name, created_at=now, initial_balance=100_000.0)
            else:
                chain.accounts.get(name).credit(100_000.0)
            chain.resources.stake_cpu(name, 3_500.0)
        # Ordinary users: EIDOS claimers hold most of the CPU stake, so their
        # per-account entitlement in congestion mode still covers their claim
        # rate (the paper notes claimers are precisely the accounts with idle
        # staked CPU, while low-stake casual users get squeezed out).
        for name in self._users:
            if name not in chain.accounts:
                chain.accounts.create(name, created_at=now, initial_balance=1_000.0)
            chain.resources.stake_cpu(name, 2_000.0)
        # Wash-trading accounts hold inventory in several symbols.
        for name in self._wash_traders:
            if name not in chain.accounts:
                account = chain.accounts.create(name, created_at=now, initial_balance=50_000.0)
            else:
                account = chain.accounts.get(name)
            for symbol in ("USDT", "WAL", "KEY", "PGL"):
                account.credit(100_000.0, symbol)
            chain.resources.stake_cpu(name, 3_500.0)

    # -- transaction builders -----------------------------------------------------
    def _next_tx_id(self) -> str:
        self._tx_counter += 1
        return f"eostx{self._tx_counter:012d}"

    def _random_user(self) -> str:
        return self._users[self.rng.zipf_index(len(self._users), exponent=1.2)]

    def _betting_transaction(self) -> EosTransaction:
        action_name = self.rng.categorical(BETTING_ACTION_MIX)
        if action_name == "transfer":
            user = self._random_user()
            action = make_transfer(
                "eosio.token", user, "betdicetasks", round(self.rng.lognormal(0.0, 1.0), 4), "EOS", memo="bet"
            )
        else:
            data: Dict[str, object] = {}
            if action_name == "betrecord":
                data = {"wager": round(self.rng.lognormal(0.0, 1.0), 4)}
            elif action_name == "betpayrecord":
                data = {"payout": round(self.rng.lognormal(0.0, 1.0), 4)}
            action = EosAction(
                contract="betdicetasks",
                name=action_name,
                actor="betdicegroup",
                receiver="betdicetasks",
                data=data,
            )
        return EosTransaction(transaction_id=self._next_tx_id(), actions=(action,))

    def _dex_transaction(self) -> EosTransaction:
        action_name = self.rng.categorical(DEX_ACTION_MIX)
        if action_name != "verifytrade2":
            action = EosAction(
                contract="whaleextrust",
                name=action_name,
                actor=self.rng.choice(self._wash_traders),
                receiver="whaleextrust",
                data={},
            )
            return EosTransaction(transaction_id=self._next_tx_id(), actions=(action,))
        # verifytrade2: mostly the top wash traders, mostly self-trades.
        if self.rng.bernoulli(0.75):
            trader = self.rng.choice(self._wash_traders)
            if self.rng.bernoulli(self.config.wash_trade_self_fraction):
                buyer, seller = trader, trader
            else:
                buyer, seller = trader, self.rng.choice(self._wash_traders)
        else:
            buyer, seller = self._random_user(), self._random_user()
        symbol = self.rng.choice(("USDT", "WAL", "KEY", "PGL"))
        action = EosAction(
            contract="whaleextrust",
            name="verifytrade2",
            actor=buyer,
            receiver="whaleextrust",
            data={
                "buyer": buyer,
                "seller": seller,
                "symbol": symbol,
                "amount": round(self.rng.lognormal(1.0, 1.0), 4),
                "price": round(self.rng.lognormal(0.0, 0.5), 6),
            },
        )
        return EosTransaction(transaction_id=self._next_tx_id(), actions=(action,))

    def _content_transaction(self) -> EosTransaction:
        action_name = self.rng.categorical(CONTENT_ACTION_MIX)
        action = EosAction(
            contract="pornhashbaby",
            name=action_name,
            actor=self._random_user(),
            receiver="pornhashbaby",
            data={},
        )
        return EosTransaction(transaction_id=self._next_tx_id(), actions=(action,))

    def _game_transaction(self) -> EosTransaction:
        action_name = self.rng.categorical(GAME_ACTION_MIX)
        action = EosAction(
            contract="eossanguoone",
            name=action_name,
            actor=self._random_user(),
            receiver="eossanguoone",
            data={},
        )
        return EosTransaction(transaction_id=self._next_tx_id(), actions=(action,))

    def _token_transaction(self) -> EosTransaction:
        # Figure 5: mykeypostman relays most of its traffic to eosio.token.
        if self.rng.bernoulli(0.35):
            sender = "mykeypostman"
            receiver = "mykeylogica1" if self.rng.bernoulli(0.06) else self._random_user()
        elif self.rng.bernoulli(0.2):
            sender = "bluebet2user"
            receiver = "lynxtoken123"
        else:
            sender, receiver = self._random_user(), self._random_user()
        amount = round(self.rng.lognormal(0.5, 1.2), 4)
        action = make_transfer("eosio.token", sender, receiver, amount, "EOS")
        return EosTransaction(transaction_id=self._next_tx_id(), actions=(action,))

    def _other_transaction(self) -> EosTransaction:
        name = self.rng.categorical(
            {
                "delegatebw": 0.2,
                "buyrambytes": 0.1,
                "undelegatebw": 0.1,
                "rentcpu": 0.1,
                "voteproducer": 0.05,
                "buyram": 0.3,
                "bidname": 0.05,
                "newaccount": 0.05,
                "updateauth": 0.03,
                "linkauth": 0.02,
            }
        )
        action = EosAction(
            contract="eosio",
            name=name,
            actor=self._random_user(),
            receiver="eosio",
            data={},
        )
        return EosTransaction(transaction_id=self._next_tx_id(), actions=(action,))

    def _eidos_transaction(self) -> EosTransaction:
        """One boomerang claim: transfer EOS to the EIDOS contract and back."""
        user = self._random_user()
        amount = 0.0001  # claimers send dust; the amount is irrelevant.
        deposit = make_transfer("eosio.token", user, "eidosonecoin", amount, "EOS", memo="claim")
        notify = EosAction(
            contract="eidosonecoin",
            name="transfer",
            actor=user,
            receiver="eidosonecoin",
            data={"from": user, "to": "eidosonecoin", "quantity": amount, "symbol": "EOS"},
        )
        return EosTransaction(
            transaction_id=self._next_tx_id(), actions=(deposit, notify), cpu_us=400.0
        )

    _CATEGORY_BUILDERS = {
        CATEGORY_BETTING: "_betting_transaction",
        CATEGORY_EXCHANGE: "_dex_transaction",
        CATEGORY_PORNOGRAPHY: "_content_transaction",
        CATEGORY_GAMES: "_game_transaction",
        CATEGORY_TOKENS: "_token_transaction",
        CATEGORY_OTHERS: "_other_transaction",
    }

    def _build_transaction(self, category: str) -> EosTransaction:
        builder = getattr(self, self._CATEGORY_BUILDERS[category])
        return builder()

    # -- block generation -----------------------------------------------------------
    def _transactions_for_block(self, block_timestamp: float) -> List[EosTransaction]:
        config = self.config
        post_eidos = block_timestamp >= config.eidos_launch_timestamp
        daily = config.transactions_per_day
        if post_eidos:
            daily = int(daily * config.eidos_traffic_multiplier)
        per_block_mean = daily / config.blocks_per_day
        count = max(1, self.rng.poisson(per_block_mean))
        transactions: List[EosTransaction] = []
        for _ in range(count):
            if post_eidos and self.rng.bernoulli(config.eidos_share):
                transactions.append(self._eidos_transaction())
            else:
                category = self.rng.categorical(PRE_EIDOS_CATEGORY_MIX)
                transactions.append(self._build_transaction(category))
        return transactions

    def generate_blocks(self) -> Iterator[BlockRecord]:
        """Produce blocks covering the configured observation window."""
        config = self.config
        total_blocks = int(config.total_days * config.blocks_per_day)
        for _ in range(total_blocks):
            timestamp = self.chain.clock.now
            if timestamp >= config.end_timestamp:
                break
            transactions = self._transactions_for_block(timestamp)
            yield self.chain.produce_block(transactions)

    def generate(self) -> List[BlockRecord]:
        """Materialise the full observation window as a list of blocks."""
        return list(self.generate_blocks())

    def stream_records(self) -> Iterator[TransactionRecord]:
        """Stream canonical records without materialising block lists.

        This is the ingest path for the columnar analysis substrate: feed it
        straight into :meth:`repro.common.columns.TxFrame.extend`, and the
        only per-window allocation is the frame's own columns.
        """
        for block in self.generate_blocks():
            yield from block.transactions

    # -- ground truth the tests compare against --------------------------------------
    def expected_category(self, contract: str) -> str:
        return APPLICATION_CATEGORIES.get(contract, CATEGORY_OTHERS)

    def dex_contract(self) -> DexContract:
        contract = self.chain.contracts.get("whaleextrust")
        assert isinstance(contract, DexContract)
        return contract

    def eidos_contract(self) -> EidosContract:
        contract = self.chain.contracts.get("eidosonecoin")
        assert isinstance(contract, EidosContract)
        return contract
