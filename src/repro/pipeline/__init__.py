"""Incremental ingestion pipeline: append-only stores, checkpointed
accumulators, and live figure updates.

Public surface:

* :class:`~repro.pipeline.core.Pipeline` — a durable pipeline directory
  (columnar frame store + checkpoint + analysis config) with append-only
  ingest and incremental :meth:`~repro.pipeline.core.Pipeline.update`;
* :func:`~repro.pipeline.core.incremental_report` — the checkpoint-merge +
  delta-scan reporter (usable on any frame, no directory required);
* :class:`~repro.pipeline.checkpoint.CheckpointStore` /
  :class:`~repro.pipeline.checkpoint.PipelineCheckpoint` — durable
  accumulator state behind a row watermark;
* :class:`~repro.pipeline.live.LiveTailRunner`,
  :func:`~repro.pipeline.live.stream_block_batches`,
  :func:`~repro.pipeline.live.tail_crawl` — the live-tail loop;
* :func:`~repro.pipeline.soak.run_soak` / :func:`~repro.pipeline.fsck.run_fsck`
  — the fault-schedule soak harness and the store/pipeline doctor.
"""

from repro.pipeline.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    PipelineCheckpoint,
)
from repro.pipeline.core import (
    Pipeline,
    UpdateStats,
    incremental_report,
)
from repro.pipeline.fsck import FsckIssue, FsckReport, run_fsck
from repro.pipeline.live import (
    DEFAULT_BATCH_SECONDS,
    LiveTailRunner,
    LiveUpdate,
    frozen_analysis_config,
    pending_batches,
    scenario_generators,
    stream_block_batches,
    tail_crawl,
)
from repro.pipeline.soak import SoakError, SoakResult, run_soak

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "DEFAULT_BATCH_SECONDS",
    "FsckIssue",
    "FsckReport",
    "LiveTailRunner",
    "LiveUpdate",
    "Pipeline",
    "PipelineCheckpoint",
    "SoakError",
    "SoakResult",
    "UpdateStats",
    "frozen_analysis_config",
    "incremental_report",
    "pending_batches",
    "run_fsck",
    "run_soak",
    "scenario_generators",
    "stream_block_batches",
    "tail_crawl",
]
