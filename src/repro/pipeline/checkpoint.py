"""Durable accumulator checkpoints for the incremental pipeline.

A checkpoint freezes the analysis layer's position in the append-only row
stream: for every chain it stores the pickled, **pre-finalize** scanned
state of the full figure accumulator set (the snapshot/restore contract of
:mod:`repro.analysis.engine`) together with the row watermark those states
cover and each accumulator's :meth:`~repro.analysis.engine.Accumulator.
config_signature`.  An incremental update restores the states, merges them
into freshly bound accumulators, scans only the rows past the watermark and
re-finalizes — producing figures identical to a from-scratch batch run.

Persistence is a single pickle written atomically (temp file + rename), so
a crash can never leave a torn checkpoint: either the previous checkpoint
survives intact or the new one is fully committed.  An unreadable or
version-skewed checkpoint degrades to ``None`` — the reporter then falls
back to a full rescan, which is always correct.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import Accumulator

#: Checkpoint schema version; bump when the layout changes.
CHECKPOINT_VERSION = 1

#: File name of the durable checkpoint inside a pipeline directory.
CHECKPOINT_NAME = "checkpoint.pkl"


@dataclass
class PipelineCheckpoint:
    """Scanned accumulator states for every chain, as of a row watermark."""

    #: Number of frame rows the saved states cover (rows ``[0, watermark)``).
    watermark_rows: int
    #: chain value → pickled pre-finalize accumulator list.
    chain_states: Dict[str, bytes] = field(default_factory=dict)
    #: chain value → the saved accumulators' config signatures, stored
    #: separately so compatibility is checked before any state is trusted.
    signatures: Dict[str, List[tuple]] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    @classmethod
    def capture(
        cls, watermark_rows: int, chain_accumulators: Dict[str, Sequence[Accumulator]]
    ) -> "PipelineCheckpoint":
        """Snapshot scanned (pre-finalize!) accumulators per chain.

        Must be called before ``finalize``: several accumulators fold bulk
        state into their counters at finalisation, and a post-finalize
        snapshot would double count when merged later.
        """
        checkpoint = cls(watermark_rows=watermark_rows)
        for chain_value, accumulators in chain_accumulators.items():
            checkpoint.capture_chain(chain_value, accumulators)
        return checkpoint

    def capture_chain(
        self, chain_value: str, accumulators: Sequence[Accumulator]
    ) -> None:
        """Snapshot one chain's scanned, **pre-finalize** accumulators."""
        accumulators = list(accumulators)
        self.chain_states[chain_value] = pickle.dumps(accumulators)
        self.signatures[chain_value] = [
            accumulator.config_signature() for accumulator in accumulators
        ]

    def restore_states(self, chain_value: str) -> Optional[List[Accumulator]]:
        """Unpickle one chain's saved accumulator states (``None`` if absent)."""
        blob = self.chain_states.get(chain_value)
        if blob is None:
            return None
        return pickle.loads(blob)

    def compatible_with(
        self, chain_value: str, accumulators: Sequence[Accumulator]
    ) -> bool:
        """Whether the saved chain state may merge into ``accumulators``.

        Requires the same accumulator sequence with equal config signatures.
        Signature fields that legitimately advance between updates (a
        throughput window's end) are excluded by the accumulators
        themselves; anything else differing — an oracle with new rates, a
        shifted series anchor, a changed top-N limit — makes the saved
        state unusable and forces a full rescan of the chain.
        """
        saved = self.signatures.get(chain_value)
        if saved is None:
            return False
        current = [accumulator.config_signature() for accumulator in accumulators]
        return saved == current


class CheckpointStore:
    """Atomic persistence of one :class:`PipelineCheckpoint` in a directory."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, CHECKPOINT_NAME)

    def save(self, checkpoint: PipelineCheckpoint) -> None:
        """Commit ``checkpoint`` atomically (write-temp + rename)."""
        temp_path = self.path + ".tmp"
        with open(temp_path, "wb") as handle:
            pickle.dump(checkpoint, handle)
        os.replace(temp_path, self.path)

    def load(self) -> Optional[PipelineCheckpoint]:
        """The committed checkpoint, or ``None`` when absent or unreadable.

        Unreadable includes a truncated file or a version mismatch: both
        degrade to a full rescan instead of failing the update.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "rb") as handle:
                checkpoint = pickle.load(handle)
        except Exception:
            return None
        if getattr(checkpoint, "version", None) != CHECKPOINT_VERSION:
            return None
        return checkpoint

    def clear(self) -> None:
        if os.path.exists(self.path):
            os.remove(self.path)
