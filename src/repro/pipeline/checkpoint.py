"""Durable accumulator checkpoints for the incremental pipeline.

A checkpoint freezes the analysis layer's position in the append-only row
stream: for every chain it stores the **pre-finalize** scanned state of the
full figure accumulator set together with the row watermark those states
cover and each accumulator's :meth:`~repro.analysis.engine.Accumulator.
config_signature`.  An incremental update restores the states into freshly
bound accumulators, scans only the rows past the watermark and re-finalizes
— producing figures identical to a from-scratch batch run.

**Snapshot format (version 2).**  Accumulator state is serialised with the
:mod:`repro.common.statecodec` value codec, not pickle: each chain's blob is
the codec encoding of its accumulators' :meth:`~repro.analysis.engine.
Accumulator.export_state` payloads — typed columnar data (packed int64 /
float64 / joined-string columns for the big collections), never code.  That
removes ``pickle.load`` of accumulator state from the checkpoint trust
boundary (decoding a hostile snapshot can yield garbage values, but cannot
instantiate objects or execute anything) and makes the round-trip cost scale
with column bytes instead of Python objects.

**Delta-aware writes.**  Per-chain blobs are immutable byte strings, so a
chain whose watermark did not advance carries its stored blob forward
(:meth:`PipelineCheckpoint.carry_chain`) instead of being re-exported and
re-encoded; saving then just re-writes the file from already-encoded
segments.

Persistence is a single file written atomically (temp file + rename), so a
crash can never leave a torn checkpoint: either the previous checkpoint
survives intact or the new one is fully committed.  An unreadable,
corrupt or version-skewed snapshot degrades to ``None`` — the reporter then
falls back to a full rescan, which is always correct.

**Legacy migration.**  Version-1 checkpoints (``checkpoint.pkl``, a pickle
of per-chain pickled accumulator lists) are migrated on first load: the
pickle is trusted one final time, each chain's accumulators are re-exported
through the codec, the new-format snapshot is written and the old file is
removed.  A corrupt legacy file simply degrades to a full rescan.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import Accumulator
from repro.common import faults, statecodec

#: Checkpoint schema version; bump when the layout changes.
CHECKPOINT_VERSION = 2

#: File name of the durable snapshot inside a pipeline directory.
CHECKPOINT_NAME = "checkpoint.snap"

#: File name of the version-1 pickle checkpoint (migrated on first load).
LEGACY_CHECKPOINT_NAME = "checkpoint.pkl"

#: Top-level format marker inside the snapshot payload.
SNAPSHOT_FORMAT = "repro-checkpoint"


@dataclass
class PipelineCheckpoint:
    """Scanned accumulator states for every chain, as of a row watermark."""

    #: Number of frame rows the saved states cover (rows ``[0, watermark)``).
    watermark_rows: int
    #: chain value → codec-encoded list of per-accumulator state payloads.
    chain_states: Dict[str, bytes] = field(default_factory=dict)
    #: chain value → the saved accumulators' config signatures, stored
    #: separately so compatibility is checked before any state is decoded.
    signatures: Dict[str, List[tuple]] = field(default_factory=dict)
    #: chain value → adler32 of the stored blob.  Restores verify it before
    #: decoding, so bit-rot anywhere in a blob — including inside lazily
    #: stashed columns whose bytes are only consumed much later — degrades
    #: to a chain rescan instead of a late crash or a silently wrong count.
    checksums: Dict[str, int] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    @classmethod
    def capture(
        cls, watermark_rows: int, chain_accumulators: Dict[str, Sequence[Accumulator]]
    ) -> "PipelineCheckpoint":
        """Snapshot scanned (pre-finalize!) accumulators per chain.

        Must be called before ``finalize``: several accumulators fold bulk
        state into their counters at finalisation, and a post-finalize
        snapshot would double count when restored later.
        """
        checkpoint = cls(watermark_rows=watermark_rows)
        for chain_value, accumulators in chain_accumulators.items():
            checkpoint.capture_chain(chain_value, accumulators)
        return checkpoint

    def capture_chain(
        self, chain_value: str, accumulators: Sequence[Accumulator]
    ) -> None:
        """Snapshot one chain's scanned, **pre-finalize** accumulators."""
        accumulators = list(accumulators)
        blob = statecodec.encode(
            [accumulator.export_state() for accumulator in accumulators]
        )
        self.chain_states[chain_value] = blob
        self.checksums[chain_value] = zlib.adler32(blob)
        self.signatures[chain_value] = [
            accumulator.config_signature() for accumulator in accumulators
        ]

    def carry_chain(self, chain_value: str, previous: "PipelineCheckpoint") -> bool:
        """Carry one chain's stored blob forward from ``previous`` unchanged.

        The delta-aware write path: a chain that received no rows since the
        previous checkpoint re-uses its already-encoded state segment — no
        export, no encode.  Returns ``False`` (caller must capture) when
        ``previous`` has nothing stored for the chain.
        """
        blob = previous.chain_states.get(chain_value)
        if blob is None:
            return False
        self.chain_states[chain_value] = blob
        self.signatures[chain_value] = previous.signatures[chain_value]
        checksum = previous.checksums.get(chain_value)
        self.checksums[chain_value] = (
            checksum if checksum is not None else zlib.adler32(blob)
        )
        return True

    def restore_payloads(self, chain_value: str) -> Optional[List[dict]]:
        """Decode one chain's saved state payloads (``None`` if unusable).

        Returns one :meth:`~repro.analysis.engine.Accumulator.export_state`
        payload per saved accumulator, in capture order.  A corrupt or
        truncated blob degrades to ``None`` — the incremental reporter then
        rescans the chain.
        """
        blob = self.chain_states.get(chain_value)
        if blob is None:
            return None
        action = faults.check("checkpoint.decode")
        if action is not None:
            # Corrupt this one chain's blob: the adler32 below must catch
            # it and degrade the chain — and only this chain — to a rescan.
            blob = action.corrupt(blob)
        checksum = self.checksums.get(chain_value)
        if checksum is not None and zlib.adler32(blob) != checksum:
            return None
        try:
            payloads = statecodec.decode(blob)
        except Exception:
            # CodecError is the designed signal, but any failure mode of a
            # corrupt blob must degrade to a rescan, never crash an update.
            return None
        if not isinstance(payloads, list):
            return None
        return payloads

    def compatible_with(
        self, chain_value: str, accumulators: Sequence[Accumulator]
    ) -> bool:
        """Whether the saved chain state may restore into ``accumulators``.

        Requires the same accumulator sequence with equal config signatures.
        Signature fields that legitimately advance between updates (a
        throughput window's end) are excluded by the accumulators
        themselves; anything else differing — an oracle with new rates, a
        shifted series anchor, a changed top-N limit — makes the saved
        state unusable and forces a full rescan of the chain.
        """
        saved = self.signatures.get(chain_value)
        if saved is None:
            return False
        current = [accumulator.config_signature() for accumulator in accumulators]
        return saved == current


class CheckpointStore:
    """Atomic persistence of one :class:`PipelineCheckpoint` in a directory.

    The store exposes its last save/load wall-clock cost
    (:attr:`last_save_seconds` / :attr:`last_load_seconds`) so the pipeline
    can surface checkpoint overhead in update statistics and benchmarks.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.last_save_seconds = 0.0
        self.last_load_seconds = 0.0

    @property
    def path(self) -> str:
        return os.path.join(self.directory, CHECKPOINT_NAME)

    @property
    def legacy_path(self) -> str:
        return os.path.join(self.directory, LEGACY_CHECKPOINT_NAME)

    def save(self, checkpoint: PipelineCheckpoint) -> None:
        """Commit ``checkpoint`` atomically (write-temp + rename).

        Chain blobs are already codec-encoded bytes, so the outer encode is
        a cheap header-plus-memcpy — carried-forward chains cost their
        length, not their element count.
        """
        started = time.perf_counter()
        parts = statecodec.encode_parts(
            {
                "format": SNAPSHOT_FORMAT,
                "version": checkpoint.version,
                "watermark_rows": checkpoint.watermark_rows,
                "chains": checkpoint.chain_states,
                "checksums": dict(checkpoint.checksums),
                "signatures": {
                    chain: list(signatures)
                    for chain, signatures in checkpoint.signatures.items()
                },
            }
        )
        temp_path = self.path + ".tmp"
        action = faults.check("checkpoint.save")
        if action is not None and action.mode == faults.MODE_BITFLIP:
            # Flip a byte inside the committed snapshot: the next load must
            # reject it and degrade to a rescan, never crash.
            joined = b"".join(parts)
            parts = [action.corrupt(joined)]
        with open(temp_path, "wb") as handle:
            # Chain blobs are already single segments; streaming them skips
            # one multi-megabyte intermediate join.
            handle.writelines(parts)
        if action is not None and action.mode == faults.MODE_CRASH:
            # Death before the rename: the previous snapshot stays committed.
            raise faults.InjectedCrash("injected crash at checkpoint.save")
        os.replace(temp_path, self.path)
        self.last_save_seconds = time.perf_counter() - started

    def load(self) -> Optional[PipelineCheckpoint]:
        """The committed checkpoint, or ``None`` when absent or unreadable.

        Unreadable includes a truncated or corrupt file and a version
        mismatch: both degrade to a full rescan instead of failing the
        update.  A version-1 pickle checkpoint found at the legacy path is
        migrated in place (see the module docstring).
        """
        started = time.perf_counter()
        migrated = False
        try:
            if os.path.exists(self.path):
                checkpoint = self._load_snapshot()
            elif os.path.exists(self.legacy_path):
                self.last_save_seconds = 0.0
                checkpoint = self._migrate_legacy()
                migrated = True
            else:
                checkpoint = None
        finally:
            elapsed = time.perf_counter() - started
            if migrated:
                # The one-time migration re-exports everything and commits
                # a snapshot inside this call; keep the embedded save out
                # of the steady-state load figure.
                elapsed = max(0.0, elapsed - self.last_save_seconds)
            self.last_load_seconds = elapsed
        return checkpoint

    def _load_snapshot(self) -> Optional[PipelineCheckpoint]:
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
            action = faults.check("checkpoint.load")
            if action is not None:
                raw = action.corrupt(raw)
            payload = statecodec.decode(raw)
            if (
                not isinstance(payload, dict)
                or payload.get("format") != SNAPSHOT_FORMAT
                or payload.get("version") != CHECKPOINT_VERSION
            ):
                return None
            chains = payload["chains"]
            signatures = payload["signatures"]
            checksums = payload.get("checksums", {})
            watermark = payload["watermark_rows"]
            if not isinstance(chains, dict) or not isinstance(signatures, dict):
                return None
            if not isinstance(checksums, dict):
                return None
            if not isinstance(watermark, int) or watermark < 0:
                return None
            return PipelineCheckpoint(
                watermark_rows=watermark,
                chain_states=chains,
                signatures=signatures,
                checksums=checksums,
                version=CHECKPOINT_VERSION,
            )
        except Exception:
            return None

    def _migrate_legacy(self) -> Optional[PipelineCheckpoint]:
        """Convert a version-1 pickle checkpoint to the snapshot format.

        The legacy pickle (written by this pipeline in an earlier life) is
        loaded one final time; every chain's accumulator list is re-exported
        through the state codec, the new snapshot is committed, and the old
        file is removed so no later load touches pickle again.  Any failure
        — corruption, version skew, an accumulator that cannot re-export —
        degrades to ``None`` (full rescan) and leaves the legacy file to be
        shadowed by the next saved snapshot.
        """
        try:
            with open(self.legacy_path, "rb") as handle:
                legacy = pickle.load(handle)
            if getattr(legacy, "version", None) != 1:
                return None
            migrated = PipelineCheckpoint(watermark_rows=legacy.watermark_rows)
            for chain_value, blob in legacy.chain_states.items():
                accumulators = pickle.loads(blob)
                migrated.capture_chain(chain_value, accumulators)
                # Preserve the signatures the legacy checkpoint recorded:
                # they gate compatibility exactly as they did before.
                migrated.signatures[chain_value] = list(
                    legacy.signatures[chain_value]
                )
            self.save(migrated)
        except Exception:
            return None
        try:
            os.remove(self.legacy_path)
        except OSError:  # pragma: no cover - racing cleanup is harmless
            pass
        return migrated

    def clear(self) -> None:
        for path in (self.path, self.legacy_path):
            if os.path.exists(path):
                os.remove(path)
